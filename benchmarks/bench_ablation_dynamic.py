"""Extension — dynamic index maintenance vs full rebuild.

Measures the cost of keeping the index correct under small edge updates
with the affected-region strategy of :class:`DynamicEquiTruss`, against
rebuilding from scratch, and reports how local the updates actually are
(affected-edge fraction).

Observed finding (recorded in the results): insertions are extremely
local (the new edges' triangles rarely span components), while random
*deletions* on scale-free graphs usually land in the giant
triangle-connected component and trigger a majority recompute — the
component-level soundness bound is tight for insertions but coarse for
deletions, which is exactly why the dynamic-truss literature develops
finer (k-level) bounds.
"""

import time

import numpy as np

from repro.bench import ResultWriter, TextTable, get_workload
from repro.equitruss import build_index
from repro.equitruss.dynamic import DynamicEquiTruss

NETWORK = "youtube"
NUM_UPDATES = 6


def run_ablation():
    writer = ResultWriter("ablation_dynamic")
    w = get_workload(NETWORK)
    dyn = DynamicEquiTruss(w.graph)
    rng = np.random.default_rng(3)

    table = TextTable(
        ["update", "kind", "affected edges", "affected %", "update s", "rebuild s"],
        title=f"Dynamic maintenance vs rebuild ({NETWORK} stand-in)",
    )
    ratios = []
    for i in range(NUM_UPDATES):
        if i % 2 == 0:
            us = rng.integers(0, dyn.graph.num_vertices, size=4)
            vs = rng.integers(0, dyn.graph.num_vertices, size=4)
            keep = us != vs
            t0 = time.perf_counter()
            stats = dyn.insert_edges(us[keep], vs[keep])
            dt = time.perf_counter() - t0
            kind = "insert x4"
        else:
            eids = rng.integers(0, dyn.graph.num_edges, size=4)
            eu = dyn.graph.edges.u[eids]
            ev = dyn.graph.edges.v[eids]
            t0 = time.perf_counter()
            stats = dyn.remove_edges(eu, ev)
            dt = time.perf_counter() - t0
            kind = "remove x4"
        t0 = time.perf_counter()
        ref = build_index(dyn.graph, "afforest").index
        rebuild = time.perf_counter() - t0
        assert dyn.index == ref
        table.add_row(
            i, kind, stats.affected_edges,
            100 * stats.affected_fraction, dt, rebuild,
        )
        ratios.append(stats.affected_fraction)
    writer.add(table)
    writer.write()
    return ratios


def test_ablation_dynamic(benchmark, run_once):
    ratios = run_once(benchmark, run_ablation)
    # updates stay local: the affected region is a strict minority of edges
    assert np.median(ratios) < 0.5
