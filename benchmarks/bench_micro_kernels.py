"""Micro-benchmarks of the substrate kernels (pytest-benchmark proper).

These repeat normally (multiple rounds) and track the throughput of the
pieces the pipeline composes: triangle enumeration, truss peeling,
connected components, and index construction per variant.
"""

import pytest

from repro.bench import get_workload
from repro.cc import afforest, bfs_components, label_propagation, shiloach_vishkin
from repro.equitruss import build_index
from repro.equitruss.levels import build_level_structures
from repro.triangles import enumerate_triangles
from repro.truss import truss_decomposition

WORKLOAD = "youtube"  # mid-size: large enough to be meaningful, quick to repeat


@pytest.fixture(scope="module")
def w():
    return get_workload(WORKLOAD)


def test_triangle_enumeration(benchmark, w):
    tri = benchmark(enumerate_triangles, w.graph)
    assert tri.count == w.triangles.count


def test_truss_decomposition(benchmark, w):
    dec = benchmark(lambda: truss_decomposition(w.graph, triangles=w.triangles))
    assert dec.kmax == w.decomp.kmax


def test_level_structures(benchmark, w):
    levels = benchmark(
        lambda: build_level_structures(w.triangles, w.decomp.trussness, with_adjacency=True)
    )
    assert levels.num_hook_pairs > 0


@pytest.mark.parametrize("method", [shiloach_vishkin, afforest, label_propagation, bfs_components])
def test_connected_components(benchmark, w, method):
    import numpy as np

    labels = benchmark(method, w.graph)
    assert labels.size == w.graph.num_vertices


@pytest.mark.parametrize("variant", ["baseline", "coptimal", "afforest"])
def test_index_construction(benchmark, w, variant):
    res = benchmark(
        lambda: build_index(
            w.graph, variant, decomp=w.decomp, triangles=w.triangles
        )
    )
    assert res.index.num_supernodes > 0
