"""Micro-benchmarks of the substrate kernels (pytest-benchmark proper).

These repeat normally (multiple rounds) and track the throughput of the
pieces the pipeline composes: triangle enumeration, truss peeling,
connected components, and index construction per variant.

Each index-construction benchmark also reports peak resident bytes
alongside seconds (``extra_info``): the ``repro.mem.*`` breakdown of the
build (graph / triangles / level tables / comp) plus the execution
context's workspace high-water mark, so a dtype-policy regression shows
up in the benchmark record, not just the timings.
"""

import pytest

from repro.bench import get_workload
from repro.cc import afforest, bfs_components, label_propagation, shiloach_vishkin
from repro.equitruss import build_index
from repro.equitruss.levels import build_level_structures
from repro.obs import metrics
from repro.parallel import ExecutionContext
from repro.triangles import enumerate_triangles
from repro.truss import truss_decomposition

WORKLOAD = "youtube"  # mid-size: large enough to be meaningful, quick to repeat


@pytest.fixture(scope="module")
def w():
    return get_workload(WORKLOAD)


def test_triangle_enumeration(benchmark, w):
    tri = benchmark(enumerate_triangles, w.graph)
    assert tri.count == w.triangles.count


@pytest.mark.parametrize("peeling", ["bucket", "scan"])
def test_truss_decomposition(benchmark, w, peeling):
    dec = benchmark(
        lambda: truss_decomposition(w.graph, triangles=w.triangles, peeling=peeling)
    )
    assert dec.kmax == w.decomp.kmax
    benchmark.extra_info["peeling"] = peeling
    benchmark.extra_info["level_scans"] = dec.level_scans


@pytest.mark.parametrize("build", ["fused", "keyed"])
def test_csr_init(benchmark, w, build):
    """The Init kernel: fused single-pass CSR build vs the legacy
    two-key-sort build it replaced (kept as the oracle)."""
    from repro.graph.csr import CSRGraph, _from_edgelist_keyed

    edges = w.graph.edges
    fn = CSRGraph.from_edgelist if build == "fused" else _from_edgelist_keyed
    g = benchmark(fn, edges)
    assert g.num_edges == w.graph.num_edges
    benchmark.extra_info["build"] = build


def test_level_structures(benchmark, w):
    levels = benchmark(
        lambda: build_level_structures(w.triangles, w.decomp.trussness, with_adjacency=True)
    )
    assert levels.num_hook_pairs > 0


@pytest.mark.parametrize("method", [shiloach_vishkin, afforest, label_propagation, bfs_components])
def test_connected_components(benchmark, w, method):
    labels = benchmark(method, w.graph)
    assert labels.size == w.graph.num_vertices


MEM_GAUGES = (
    "repro.mem.graph_bytes",
    "repro.mem.triangles_bytes",
    "repro.mem.levels_bytes",
    "repro.mem.comp_bytes",
    "repro.mem.workspace_high_water",
)


@pytest.mark.parametrize("dtype_policy", ["auto", "int64"])
@pytest.mark.parametrize("variant", ["baseline", "coptimal", "afforest"])
def test_index_construction(benchmark, w, variant, dtype_policy):
    ctx = ExecutionContext(dtype=dtype_policy)
    graph = w.graph.astype(ctx.index_dtype(w.graph.num_vertices, w.graph.num_edges))
    res = benchmark(
        lambda: build_index(
            graph, variant, decomp=w.decomp, triangles=w.triangles, ctx=ctx
        )
    )
    assert res.index.num_supernodes > 0
    registry = metrics.get_registry()
    mem = {name.rsplit(".", 1)[-1]: int(registry.gauge(name).value) for name in MEM_GAUGES}
    benchmark.extra_info["dtype"] = ctx.edge_dtype(graph.num_edges).name
    benchmark.extra_info["peak_bytes"] = sum(mem.values())
    benchmark.extra_info.update(mem)
