"""Figure 3 — the worked example's summary graph.

Regenerates the published supernode/superedge structure of the paper's
11-vertex example with every implementation and renders it. (The
byte-exact assertions live in tests/equitruss/test_paper_example.py;
this bench records the artifact.)
"""

from repro.bench import ResultWriter, TextTable
from repro.equitruss import build_index, equitruss_serial
from repro.graph import CSRGraph
from repro.graph.generators import paper_example_graph


def run_fig3():
    g = CSRGraph.from_edgelist(paper_example_graph())
    writer = ResultWriter("fig3_example")
    indexes = {"serial": equitruss_serial(g)}
    for variant in ("baseline", "coptimal", "afforest"):
        indexes[variant] = build_index(g, variant).index
    ref = indexes["serial"]
    assert all(idx == ref for idx in indexes.values())

    table = TextTable(
        ["supernode", "k", "edges"],
        title="Figure 3b: summary graph of the example graph (all variants identical)",
    )
    for sn in range(ref.num_supernodes):
        eids = ref.edges_of(sn)
        pairs = ", ".join(
            f"({int(ref.graph.edges.u[e])},{int(ref.graph.edges.v[e])})"
            for e in eids
        )
        table.add_row(f"nu{sn}", int(ref.supernode_trussness[sn]), pairs)
    writer.add(table)
    se = ", ".join(f"(nu{a}, nu{b})" for a, b in ref.superedges.tolist())
    writer.add(f"Superedges: {se}")
    writer.write()
    return ref.num_supernodes, ref.num_superedges


def test_fig3_example(benchmark, run_once):
    sn, se = run_once(benchmark, run_fig3)
    assert (sn, se) == (5, 6)
