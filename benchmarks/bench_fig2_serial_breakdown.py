"""Figure 2 — compute-kernel timing breakdown of the *serial* EquiTruss.

The paper's motivating observation: for large graphs, constructing the
EquiTruss index costs as much as (or more than) the k-truss
decomposition itself, which is why parallelizing the index construction
matters. We reproduce the percentage breakdown of SupportComp /
TrussDecomp / EquiTruss for the four Figure-2 networks and assert the
motivating claim on the two large ones.
"""

from repro.bench import ResultWriter, TextTable, bar_chart, get_workload
from repro.equitruss import equitruss_serial
from repro.parallel import ExecutionPolicy

NETWORKS = ["amazon", "dblp", "livejournal", "orkut"]


def run_fig2():
    writer = ResultWriter("fig2_serial_breakdown")
    table = TextTable(
        ["network", "Support s", "TrussDecomp s", "EquiTruss s",
         "Support %", "TrussDecomp %", "EquiTruss %"],
        title="Figure 2: serial kernel breakdown (Original EquiTruss pipeline)",
    )
    shares = {}
    for name in NETWORKS:
        get_workload(name)  # warm dataset cache (generation not timed)
        policy = ExecutionPolicy()
        from repro.graph.datasets import load_dataset_graph

        equitruss_serial(load_dataset_graph(name), policy=policy)
        by = policy.trace.by_name()
        total = sum(by.values())
        sup, td, eq = by.get("Support", 0.0), by.get("TrussDecomp", 0.0), by.get("EquiTruss", 0.0)
        table.add_row(
            name, sup, td, eq,
            100 * sup / total, 100 * td / total, 100 * eq / total,
        )
        shares[name] = (100 * sup / total, 100 * td / total, 100 * eq / total)
    writer.add(table)
    writer.add(
        bar_chart(
            NETWORKS,
            [shares[n][2] for n in NETWORKS],
            title="EquiTruss share of serial pipeline (%) — paper: grows with size,"
            " comparable to TrussDecomp for large graphs",
            unit="%",
        )
    )
    writer.write()
    return shares


def test_fig2_serial_breakdown(benchmark, run_once):
    shares = run_once(benchmark, run_fig2)
    # Motivating claim: on the large graphs the EquiTruss phase is a
    # substantial share — at least half the truss-decomposition cost.
    for name in ("livejournal", "orkut"):
        _, td, eq = shares[name]
        assert eq >= 0.5 * td, (name, td, eq)
