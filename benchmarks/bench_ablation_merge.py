"""Ablation — superedge merge strategy (Algorithm 4's hash partitioning).

Compares the worker-partitioned dedup merge at several worker counts
against a single global sort-unique, verifying output invariance and
measuring the partitioning overhead at one real core.
"""

from repro.bench import ResultWriter, TextTable, get_workload
from repro.equitruss import build_index

WORKERS = [1, 2, 4, 8, 16]
NETWORK = "livejournal"


def run_ablation():
    writer = ResultWriter("ablation_merge")
    w = get_workload(NETWORK)
    table = TextTable(
        ["num_workers", "SmGraph s", "superedges"],
        title=f"Ablation ({NETWORK}): Algorithm 4 merge partitioning",
    )
    ref = None
    out = {}
    for workers in WORKERS:
        res = build_index(
            w.graph, "coptimal", decomp=w.decomp, triangles=w.triangles,
            num_workers=workers,
        )
        if ref is None:
            ref = res.index
        assert res.index == ref
        sm = res.breakdown.seconds.get("SmGraph", 0.0)
        table.add_row(workers, sm, res.index.num_superedges)
        out[workers] = sm
    writer.add(table)
    writer.write()
    return out


def test_ablation_merge(benchmark, run_once):
    out = run_once(benchmark, run_ablation)
    assert set(out) == set(WORKERS)
