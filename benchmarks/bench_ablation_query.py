"""Ablation — query serving: batched component engine vs per-query BFS.

Two sections:

1. the comparison motivating the index at all (paper §5): EquiTruss BFS
   query vs TCP-Index vs index-free online recomputation, on a modest
   query sample (TCP and online are pure Python and slow);
2. the *serving* ablation this repo adds on top: the
   :class:`repro.serve.QueryEngine` (precomputed per-level components,
   vectorized batch anchor resolution, LRU result cache) against the
   per-query BFS path on a 1000-query workload at varying batch sizes,
   with every answer checked identical to the BFS reference.

``python benchmarks/bench_ablation_query.py [--smoke]`` runs it as a
script; ``--smoke`` shrinks the workload for CI.
"""

import time

import numpy as np

from repro.bench import ResultWriter, TextTable, get_workload
from repro.community import TCPIndex, online_communities, search_communities
from repro.community.model import as_edge_set_family
from repro.equitruss import build_index
from repro.parallel.context import ExecutionContext
from repro.serve import QueryDispatcher, QueryEngine

NETWORK = "amazon"  # TCP construction is pure Python — keep it modest
NUM_QUERIES = 30
K = 4
SERVE_QUERIES = 1000
BATCH_SIZES = (1, 16, 128, 1000)


def run_ablation():
    writer = ResultWriter("ablation_query")
    w = get_workload(NETWORK)
    t0 = time.perf_counter()
    index = build_index(
        w.graph, "afforest", decomp=w.decomp, triangles=w.triangles
    ).index
    t_build_eq = time.perf_counter() - t0
    t0 = time.perf_counter()
    tcp = TCPIndex(w.graph, decomp=w.decomp)
    t_build_tcp = time.perf_counter() - t0

    rng = np.random.default_rng(0)
    deg = w.graph.degrees()
    candidates = np.flatnonzero(deg >= 3)
    queries = rng.choice(candidates, size=NUM_QUERIES, replace=False)

    times = {"equitruss": 0.0, "tcp": 0.0, "online": 0.0}
    for q in queries.tolist():
        t0 = time.perf_counter()
        a = search_communities(index, q, K)
        times["equitruss"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        b = tcp.query(q, K)
        times["tcp"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        c = online_communities(w.graph, q, K, decomp=w.decomp)
        times["online"] += time.perf_counter() - t0
        assert as_edge_set_family(a) == as_edge_set_family(c)
        assert as_edge_set_family(b) == as_edge_set_family(c)

    table = TextTable(
        ["engine", "build s", f"total query s ({NUM_QUERIES} queries)", "per-query ms"],
        title=f"Query ablation ({NETWORK}, k={K}): all engines return identical communities",
    )
    table.add_row("equitruss-index", t_build_eq, times["equitruss"], 1000 * times["equitruss"] / NUM_QUERIES)
    table.add_row("tcp-index", t_build_tcp, times["tcp"], 1000 * times["tcp"] / NUM_QUERIES)
    table.add_row("online (no index)", 0.0, times["online"], 1000 * times["online"] / NUM_QUERIES)
    writer.add(table)
    writer.write()
    return times


def _same(a, b) -> bool:
    return len(a) == len(b) and all(
        x.k == y.k and np.array_equal(x.edge_ids, y.edge_ids) for x, y in zip(a, b)
    )


def run_serving(num_queries=SERVE_QUERIES, batch_sizes=BATCH_SIZES, network=NETWORK):
    """Serving ablation: QueryEngine batching/caching vs per-query BFS."""
    writer = ResultWriter("ablation_query_serving")
    w = get_workload(network)
    index = build_index(
        w.graph, "afforest", decomp=w.decomp, triangles=w.triangles
    ).index

    rng = np.random.default_rng(1)
    deg = w.graph.degrees()
    candidates = np.flatnonzero(deg >= 3)
    # repeat traffic, like real serving: vertices drawn with replacement
    queries = rng.choice(candidates, size=num_queries, replace=True).astype(np.int64)

    t0 = time.perf_counter()
    reference = [search_communities(index, int(q), K) for q in queries.tolist()]
    t_bfs = time.perf_counter() - t0

    table = TextTable(
        ["engine", "batch", f"total s ({num_queries} queries)", "q/s", "speedup vs bfs"],
        title=f"Query serving ({network}, k={K}): all paths identical to the BFS reference",
    )
    table.add_row("bfs (search_communities)", 1, t_bfs, num_queries / t_bfs, 1.0)

    results = {"bfs": t_bfs, "batched": {}}
    t0 = time.perf_counter()
    precompute_engine = QueryEngine(index, cache_size=0)
    t_precompute = time.perf_counter() - t0
    for bs in batch_sizes:
        engine = QueryEngine(index, cache_size=0)  # cold: no result reuse
        t0 = time.perf_counter()
        answers = []
        for lo in range(0, num_queries, bs):
            answers.extend(engine.query_many(queries[lo : lo + bs], K))
        t = time.perf_counter() - t0
        assert all(_same(a, b) for a, b in zip(reference, answers))
        results["batched"][bs] = t
        table.add_row("components (uncached)", bs, t, num_queries / t, t_bfs / t)

    cached = QueryEngine(index, cache_size=4 * num_queries)
    cached.query_many(queries, K)  # first pass fills the LRU
    t0 = time.perf_counter()
    answers = cached.query_many(queries, K)
    t_hot = time.perf_counter() - t0
    assert all(_same(a, b) for a, b in zip(reference, answers))
    results["cached"] = t_hot
    table.add_row("components (LRU hot)", num_queries, t_hot, num_queries / t_hot, t_bfs / t_hot)

    dispatcher = QueryDispatcher(
        QueryEngine(index, ctx=ExecutionContext(backend="thread", num_workers=4), cache_size=0)
    )
    t0 = time.perf_counter()
    answers = dispatcher.run([(int(q), K) for q in queries.tolist()])
    t_disp = time.perf_counter() - t0
    assert all(_same(a, b) for a, b in zip(reference, answers))
    results["dispatcher"] = t_disp
    table.add_row("dispatcher (4 threads)", num_queries, t_disp, num_queries / t_disp, t_bfs / t_disp)

    writer.add(table)
    writer.add(f"component precompute (one-time, per index build): {t_precompute:.4f}s")
    writer.write()
    assert precompute_engine.components.levels.size >= 1
    return results


def test_ablation_query(benchmark, run_once):
    times = run_once(benchmark, run_ablation)
    # the index must beat recomputing truss communities per query
    assert times["equitruss"] < times["online"]


def test_serving_batched_beats_bfs(benchmark, run_once):
    results = run_once(benchmark, run_serving)
    # acceptance bar: batched component engine >= 5x single-query BFS
    best_batched = min(results["batched"].values())
    assert results["bfs"] / best_batched >= 5.0, results
    assert results["cached"] < results["bfs"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="query-serving ablation")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast run (CI smoke)")
    args = parser.parse_args()
    if args.smoke:
        out = run_serving(num_queries=40, batch_sizes=(1, 16, 40))
    else:
        run_ablation()
        out = run_serving()
    print(f"bfs/batched best speedup: "
          f"{out['bfs'] / min(out['batched'].values()):.1f}x")
