"""Ablation — query latency: EquiTruss index vs TCP-Index vs no index.

The reason to build the index at all: answering "communities of q at k"
from the summary graph beats both the per-query truss recomputation
(online) and TCP-Index's per-query reconstruction traversal — the
comparison motivating EquiTruss over TCP-Index in the paper's §5.
"""

import time

import numpy as np

from repro.bench import ResultWriter, TextTable, get_workload
from repro.community import TCPIndex, online_communities, search_communities
from repro.community.model import as_edge_set_family
from repro.equitruss import build_index

NETWORK = "amazon"  # TCP construction is pure Python — keep it modest
NUM_QUERIES = 30
K = 4


def run_ablation():
    writer = ResultWriter("ablation_query")
    w = get_workload(NETWORK)
    t0 = time.perf_counter()
    index = build_index(
        w.graph, "afforest", decomp=w.decomp, triangles=w.triangles
    ).index
    t_build_eq = time.perf_counter() - t0
    t0 = time.perf_counter()
    tcp = TCPIndex(w.graph, decomp=w.decomp)
    t_build_tcp = time.perf_counter() - t0

    rng = np.random.default_rng(0)
    deg = w.graph.degrees()
    candidates = np.flatnonzero(deg >= 3)
    queries = rng.choice(candidates, size=NUM_QUERIES, replace=False)

    times = {"equitruss": 0.0, "tcp": 0.0, "online": 0.0}
    for q in queries.tolist():
        t0 = time.perf_counter()
        a = search_communities(index, q, K)
        times["equitruss"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        b = tcp.query(q, K)
        times["tcp"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        c = online_communities(w.graph, q, K, decomp=w.decomp)
        times["online"] += time.perf_counter() - t0
        assert as_edge_set_family(a) == as_edge_set_family(c)
        assert as_edge_set_family(b) == as_edge_set_family(c)

    table = TextTable(
        ["engine", "build s", f"total query s ({NUM_QUERIES} queries)", "per-query ms"],
        title=f"Query ablation ({NETWORK}, k={K}): all engines return identical communities",
    )
    table.add_row("equitruss-index", t_build_eq, times["equitruss"], 1000 * times["equitruss"] / NUM_QUERIES)
    table.add_row("tcp-index", t_build_tcp, times["tcp"], 1000 * times["tcp"] / NUM_QUERIES)
    table.add_row("online (no index)", 0.0, times["online"], 1000 * times["online"] / NUM_QUERIES)
    writer.add(table)
    writer.write()
    return times


def test_ablation_query(benchmark, run_once):
    times = run_once(benchmark, run_ablation)
    # the index must beat recomputing truss communities per query
    assert times["equitruss"] < times["online"]
