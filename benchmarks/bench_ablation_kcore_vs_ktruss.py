"""Ablation — the paper's motivating contrast: k-core vs k-truss cohesion.

§1/§5 claim k-core community search "lacks cohesion", "fails to avoid
non-relevant vertices" and "cannot detect overlapping membership". We
quantify all three on the same planted-community workload:

* density and mean in-community support of the community containing a
  query vertex, k-core vs k-truss (same cohesion parameter k);
* community size (non-relevant-vertex pull-in);
* number of communities per overlap vertex (k-core: always ≤ 1).
"""

import numpy as np

from repro.bench import ResultWriter, TextTable
from repro.community import (
    community_density,
    community_edge_support,
    search_communities,
)
from repro.core_decomp import core_decomposition, kcore_community
from repro.equitruss import build_index
from repro.graph import CSRGraph, build_edgelist
from repro.graph.generators import planted_community_graph, rmat_graph

K = 4


def make_workload(seed=11):
    groups, communities = planted_community_graph(
        10, 7, 10, p_intra=0.9, overlap=1, seed=seed
    )
    background = rmat_graph(11, 2, seed=seed + 1)
    n = max(groups.num_vertices, background.num_vertices)
    src = np.concatenate([groups.u, background.u])
    dst = np.concatenate([groups.v, background.v])
    graph = CSRGraph.from_edgelist(build_edgelist(src, dst, num_vertices=n))
    return graph, communities


def run_ablation():
    writer = ResultWriter("ablation_kcore_vs_ktruss")
    graph, communities = make_workload()
    index = build_index(graph, "afforest").index
    cores = core_decomposition(graph)

    table = TextTable(
        ["query", "model", "communities", "size (verts)", "density", "mean support"],
        title=f"k-core vs k-truss local communities (k={K})",
    )
    agg = {"kcore": [], "ktruss": []}
    overlap_users = [
        int(np.intersect1d(a, b)[0]) for a, b in zip(communities, communities[1:])
    ]
    for q in overlap_users[:6]:
        kc = kcore_community(graph, q, K, decomp=cores)
        if kc is not None:
            table.add_row(
                q, "k-core", 1, kc.num_vertices,
                community_density(kc), community_edge_support(kc),
            )
            agg["kcore"].append(
                (1, kc.num_vertices, community_density(kc), community_edge_support(kc))
            )
        kts = search_communities(index, q, K + 1)
        for c in kts:
            table.add_row(
                q, "k-truss", len(kts), c.num_vertices,
                community_density(c), community_edge_support(c),
            )
            agg["ktruss"].append(
                (len(kts), c.num_vertices, community_density(c), community_edge_support(c))
            )
    writer.add(table)
    writer.write()
    return agg


def test_ablation_kcore_vs_ktruss(benchmark, run_once):
    agg = run_once(benchmark, run_ablation)
    assert agg["kcore"] and agg["ktruss"]
    # overlapping membership: k-truss finds multiple communities for
    # overlap vertices at least once; k-core never can
    assert max(n for n, *_ in agg["ktruss"]) >= 2
    assert all(n == 1 for n, *_ in agg["kcore"])
    # cohesion: median k-truss community is denser than median k-core one
    kcore_density = np.median([d for _, _, d, _ in agg["kcore"]])
    ktruss_density = np.median([d for _, _, d, _ in agg["ktruss"]])
    assert ktruss_density > kcore_density
