"""Figure 8 — per-kernel time at 1, 8, 32, 128 threads.

The paper shows the SpNode bar dominating at one thread and shrinking
into parity with SpEdge/SmGraph by 128 threads, for all three variants
on Orkut and LiveJournal. Modeled per-kernel times from the
instrumented runs.

``run_fig8_backends`` measures the *real* per-kernel seconds of the
index-construction phase under each execution backend (prerequisites
cached, so the rows isolate Init/SpNode/SpEdge/SmGraph/SpNodeRemap) and
records them in the ``BENCH_pr4.json`` snapshot alongside the fig6
end-to-end sweep.
"""

import os
import time

from repro.bench import PerfSnapshot, ResultWriter, TextTable, get_workload, run_variant
from repro.bench.paper import FIG8_SPNODE_SCALING
from repro.equitruss.kernels import SM_GRAPH, SP_EDGE, SP_NODE
from repro.parallel import SimulatedMachine

NETWORKS = ["orkut", "livejournal"]
VARIANTS = ["baseline", "coptimal", "afforest"]
THREADS = (1, 8, 32, 128)
SHOWN = (SP_NODE, SP_EDGE, SM_GRAPH)

SWEEP_BACKENDS = (("serial", 1), ("process", 4))


def run_fig8():
    writer = ResultWriter("fig8_kernel_scaling")
    machine = SimulatedMachine()
    out = {}
    for name in NETWORKS:
        w = get_workload(name)
        table = TextTable(
            ["variant", "threads", *SHOWN],
            title=f"Figure 8 ({name}): modeled kernel seconds "
            f"(paper refs: {FIG8_SPNODE_SCALING.get(name, {})})",
        )
        for v in VARIANTS:
            res = run_variant(w, v)
            kernel_curves = machine.kernel_curves(res.trace, THREADS)
            for i, p in enumerate(THREADS):
                row = [
                    kernel_curves[k].seconds[i] if k in kernel_curves else 0.0
                    for k in SHOWN
                ]
                table.add_row(v, p, *row)
                out[(name, v, p)] = dict(zip(SHOWN, row))
        writer.add(table)
    writer.write()
    return out


def run_fig8_backends():
    from repro.equitruss.pipeline import build_index
    from repro.parallel.context import ExecutionContext

    name = "orkut"
    w = get_workload(name)
    writer = ResultWriter("fig8_backend_kernels")
    snap = PerfSnapshot("pr4")
    out = {}
    for variant in ("coptimal", "afforest"):
        table = TextTable(
            ["backend", "workers", "seconds", *SHOWN],
            title=f"Measured index-construction kernels ({name}, {variant}), "
            f"cpu_count={os.cpu_count()}",
        )
        baseline_index = None
        for backend, workers in SWEEP_BACKENDS:
            with ExecutionContext(backend=backend, num_workers=workers) as ctx:
                t0 = time.perf_counter()
                res = build_index(
                    w.graph, variant, decomp=w.decomp, triangles=w.triangles,
                    ctx=ctx, num_workers=workers,
                )
                elapsed = time.perf_counter() - t0
            if baseline_index is None:
                baseline_index = res.index
                same = True
            else:
                same = res.index == baseline_index
            kernels = res.breakdown.seconds
            table.add_row(
                backend, workers, elapsed, *[kernels.get(k, 0.0) for k in SHOWN]
            )
            snap.add_run(
                "fig8_backend_kernels", name, variant, backend, workers, elapsed,
                mode="measured", kernels=kernels, identical_to_serial=bool(same),
            )
            out[(variant, backend)] = (same, elapsed)
        writer.add(table)
    snap.write()
    writer.write()
    return out


def test_fig8_backend_kernels(benchmark, run_once):
    out = run_once(benchmark, run_fig8_backends)
    for (variant, backend), (same, elapsed) in out.items():
        assert same, (variant, backend)
        assert elapsed > 0


def test_fig8_kernel_scaling(benchmark, run_once):
    out = run_once(benchmark, run_fig8)
    for name in NETWORKS:
        # SpNode strictly dominates the Baseline at 1 thread (the paper's
        # headline Fig. 4/8 observation) ...
        one = out[(name, "baseline", 1)]
        assert one[SP_NODE] > one[SP_EDGE] and one[SP_NODE] > one[SM_GRAPH]
        for v in VARIANTS:
            # ... stays a leading kernel for the optimized variants (our
            # prebuilt-table SpNode is leaner relative to SpEdge than the
            # paper's C++ kernels, so parity rather than dominance) ...
            one = out[(name, v, 1)]
            assert one[SP_NODE] > 0.5 * max(one[SP_EDGE], one[SM_GRAPH]), (name, v)
            # ... and every kernel shrinks monotonically through 32
            # threads; the 128-thread tail may flatten when barrier cost
            # (rounds · log p) catches up with the tiny per-thread work
            for k in SHOWN:
                secs = [out[(name, v, p)][k] for p in THREADS]
                through32 = secs[: THREADS.index(32) + 1]
                assert all(b <= a for a, b in zip(through32, through32[1:])), (name, v, k)
                assert secs[-1] <= secs[-2] * 1.15, (name, v, k)
