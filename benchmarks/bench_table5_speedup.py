"""Table 5 — summary-graph sizes and 1→128-thread speedup per variant.

Supernode/superedge counts are measured exactly (all variants agree).
The 128-thread times come from the machine model applied to the
instrumented single-thread run (this container has one core — see
DESIGN.md); the paper's published counts and speedups print alongside.

Paper shape asserted: speedups grow with graph size, land in the
paper's 7–30× band at 128 threads for the large graphs, and the
*Baseline* shows the highest raw speedup (it does the most redundant,
compute-bound work — §4.3).
"""

from repro.bench import ResultWriter, TextTable, get_workload, run_variant
from repro.bench.paper import TABLE5
from repro.parallel import SimulatedMachine

NETWORKS = ["amazon", "dblp", "youtube", "livejournal", "orkut"]
VARIANTS = ["baseline", "coptimal", "afforest"]


def run_table5():
    writer = ResultWriter("table5_speedup")
    machine = SimulatedMachine()
    counts_table = TextTable(
        ["network", "supernodes", "superedges", "paper sn", "paper se"],
        title="Table 5a: summary graph sizes (ours, measured | paper)",
    )
    speed_table = TextTable(
        ["network", "variant", "1t s", "128t s (model)", "speedup (model)", "paper speedup"],
        title="Table 5b: 1-thread vs 128-thread index construction",
    )
    speedups = {}
    for name in NETWORKS:
        w = get_workload(name)
        results = {v: run_variant(w, v, include_prereqs=True) for v in VARIANTS}
        idx = results["afforest"].index
        assert all(r.index == idx for r in results.values())
        ref = TABLE5[name]
        counts_table.add_row(
            name, idx.num_supernodes, idx.num_superedges,
            ref["supernodes"], ref["superedges"],
        )
        for v in VARIANTS:
            t1 = results[v].trace.total_seconds
            t128 = machine.predicted_time(results[v].trace, 128)
            sp = t1 / t128
            speed_table.add_row(name, v, t1, t128, sp, ref[v][2])
            speedups[(name, v)] = sp
    writer.add(counts_table)
    writer.add(speed_table)
    writer.write()
    return speedups


def test_table5_speedup(benchmark, run_once):
    speedups = run_once(benchmark, run_table5)
    for (name, variant), sp in speedups.items():
        assert 1.0 < sp <= 128.0, (name, variant, sp)
    # paper band: large graphs reach double-digit speedup at 128 threads
    for name in ("livejournal", "orkut"):
        for variant in VARIANTS:
            assert speedups[(name, variant)] > 7.0, (name, variant)
    # Baseline (most redundant work, compute-bound) scales furthest — §4.3
    for name in ("livejournal", "orkut"):
        assert speedups[(name, "baseline")] >= speedups[(name, "afforest")]
