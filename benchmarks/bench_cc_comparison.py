"""Substrate comparison — SV vs Afforest vs label propagation vs BFS.

The paper's contribution list includes "a comparative analysis of the
performance using these [CC] approaches" (§1). We time all four on the
vertex graphs of the Table-3 stand-ins and reproduce the established
ordering the paper relies on: Afforest ≤ SV in work, label propagation
diameter-bound, BFS component-bound.
"""

import time

from repro.bench import ResultWriter, TextTable, get_workload
from repro.cc import afforest, bfs_components, label_propagation, shiloach_vishkin
from repro.cc.core import normalize_labels

NETWORKS = ["youtube", "livejournal", "orkut"]
METHODS = {
    "sv": shiloach_vishkin,
    "afforest": afforest,
    "label_prop": label_propagation,
    "bfs": bfs_components,
}


def run_comparison():
    writer = ResultWriter("cc_comparison")
    table = TextTable(
        ["network", *METHODS.keys()],
        title="Vertex CC runtime (seconds, min of 2 runs)",
    )
    out = {}
    for name in NETWORKS:
        w = get_workload(name)
        ref = None
        row = []
        for mname, fn in METHODS.items():
            best = float("inf")
            for _ in range(2):
                t0 = time.perf_counter()
                labels = fn(w.graph)
                best = min(best, time.perf_counter() - t0)
            canon = normalize_labels(labels)
            if ref is None:
                ref = canon
            else:
                assert (canon == ref).all(), mname
            row.append(best)
            out[(name, mname)] = best
        table.add_row(name, *row)
    writer.add(table)
    writer.write()
    return out


def test_cc_comparison(benchmark, run_once):
    out = run_once(benchmark, run_comparison)
    for name in NETWORKS:
        # Afforest competitive with SV (the paper's substrate claim);
        # generous tolerance for single-core noise
        assert out[(name, "afforest")] <= out[(name, "sv")] * 1.5, name
