"""Figure 7 — SpNode scaling on the largest (Friendster-class) graph.

The paper could only run the SpNode kernel on Friendster (12-hour node
limit) and shows C-Optimal and Afforest curves, Afforest ~2× faster
(34332 s → 612 s over 1→128 threads). We run SpNode-only on the largest
stand-in and model the same sweep.
"""

from repro.bench import ResultWriter, TextTable, get_workload, line_chart, run_variant
from repro.bench.paper import FIG7_FRIENDSTER_SPNODE
from repro.equitruss.kernels import SP_NODE
from repro.parallel import Instrumentation, SimulatedMachine
from repro.parallel.simulate import PAPER_THREAD_COUNTS

VARIANTS = ["coptimal", "afforest"]


def spnode_trace(trace):
    sub = Instrumentation()
    for region in trace.regions:
        if region.name == SP_NODE:
            sub.add(region)
    return sub


def run_fig7():
    writer = ResultWriter("fig7_friendster_spnode")
    machine = SimulatedMachine()
    w = get_workload("friendster")
    series = {}
    for v in VARIANTS:
        res = run_variant(w, v)
        curve = machine.scaling_curve(spnode_trace(res.trace), PAPER_THREAD_COUNTS)
        series[v] = curve.seconds
    table = TextTable(
        ["threads", *VARIANTS],
        title=f"Figure 7 (friendster stand-in, m={w.num_edges}): modeled SpNode seconds"
        f" — paper Afforest endpoints {FIG7_FRIENDSTER_SPNODE}",
    )
    for i, p in enumerate(PAPER_THREAD_COUNTS):
        table.add_row(p, *[series[v][i] for v in VARIANTS])
    writer.add(table)
    writer.add(
        line_chart(
            list(PAPER_THREAD_COUNTS), series,
            title="friendster SpNode T(p), log y", logy=True,
        )
    )
    writer.write()
    return series


def test_fig7_friendster_spnode(benchmark, run_once):
    series = run_once(benchmark, run_fig7)
    for v, secs in series.items():
        assert all(b < a for a, b in zip(secs, secs[1:])), v
    # paper: Afforest SpNode beats C-Optimal on Friendster. In the model
    # the two converge at the far end (Afforest's memory-bound fraction
    # saturates first), so require the win through 32 threads and parity
    # beyond.
    for p, aff, copt in zip(
        PAPER_THREAD_COUNTS, series["afforest"], series["coptimal"]
    ):
        if p <= 32:
            assert aff <= copt, p
        else:
            assert aff <= copt * 1.10, p
