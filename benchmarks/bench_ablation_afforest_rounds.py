"""Ablation — Afforest neighbor-sampling rounds (0, 1, 2, 4).

DESIGN.md calls out the sampling depth as the key Afforest knob:
0 rounds degenerates to "finish everything" (≈ SV over all pairs),
2 is the paper's/GAP's default, more rounds add passes with shrinking
benefit. Output must be identical at every setting.
"""

from repro.bench import ResultWriter, TextTable, get_workload
from repro.equitruss import build_index
from repro.equitruss.kernels import SP_NODE

ROUNDS = [0, 1, 2, 4]
NETWORK = "livejournal"


def run_ablation():
    writer = ResultWriter("ablation_afforest_rounds")
    w = get_workload(NETWORK)
    table = TextTable(
        ["neighbor_rounds", "SpNode s", "index identical"],
        title=f"Ablation ({NETWORK}): Afforest sampling rounds",
    )
    ref = None
    secs = {}
    for r in ROUNDS:
        res = build_index(
            w.graph, "afforest", decomp=w.decomp, triangles=w.triangles,
            neighbor_rounds=r,
        )
        identical = True if ref is None else (res.index == ref)
        ref = ref or res.index
        secs[r] = res.breakdown.seconds.get(SP_NODE, 0.0)
        table.add_row(r, secs[r], identical)
        assert identical
    writer.add(table)
    writer.write()
    return secs


def test_ablation_afforest_rounds(benchmark, run_once):
    secs = run_once(benchmark, run_ablation)
    # sampling must help over the no-sampling degenerate case
    assert min(secs[1], secs[2]) < secs[0] * 1.2
