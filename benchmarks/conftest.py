"""Shared benchmark configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each experiment prints its tables (add ``-s`` to see them live) and
writes them to ``benchmarks/results/<experiment>.txt``. Experiments run
once (``benchmark.pedantic(..., rounds=1)``) — they are full pipelines,
not microbenchmarks; the micro-kernel timings live in
``bench_micro_kernels.py`` with normal repetition.
"""

import pytest


def once(benchmark, fn):
    """Run a heavyweight experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
