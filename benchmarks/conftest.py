"""Shared benchmark configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each experiment prints its tables (add ``-s`` to see them live) and
writes them to ``benchmarks/results/<experiment>.txt``. Experiments run
once (``benchmark.pedantic(..., rounds=1)``) — they are full pipelines,
not microbenchmarks; the micro-kernel timings live in
``bench_micro_kernels.py`` with normal repetition.

Trace dumps
-----------
Set ``REPRO_TRACE_DIR=/some/dir`` to write one JSONL span trace per
bench invocation whose workload returns something traceable (a
``BuildResult``, an ``Instrumentation``, or a ``Tracer``). Two dump
directories from different commits diff with::

    python - <<'PY'
    from repro.obs.diff import diff_trace_files
    print(diff_trace_files("base/bench_x.jsonl", "new/bench_x.jsonl").format())
    PY
"""

import os
import re
from pathlib import Path

import pytest


def _extract_tracer(result):
    """Pull a Tracer out of whatever a workload returned, if any."""
    from repro.obs.trace import Tracer

    for candidate in (result, getattr(result, "trace", None)):
        if isinstance(candidate, Tracer):
            return candidate
        tracer = getattr(candidate, "tracer", None)
        if isinstance(tracer, Tracer):
            return tracer
    return None


def _maybe_dump_trace(result, test_name: str) -> None:
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if not trace_dir:
        return
    tracer = _extract_tracer(result)
    if tracer is None:
        return
    from repro.obs.export import write_trace_jsonl
    from repro.obs.manifest import collect_manifest, write_manifest

    out_dir = Path(trace_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", test_name)
    path = write_trace_jsonl(tracer, out_dir / f"{safe}.jsonl")
    # every dumped trace ships with its provenance record, so two dump
    # directories are diffable *and* attributable to commit/host
    write_manifest(
        collect_manifest(extra={"experiment": test_name}),
        f"{path}.manifest.json",
    )


def once(benchmark, fn, test_name: str | None = None):
    """Run a heavyweight experiment exactly once under pytest-benchmark."""
    if test_name is not None and os.environ.get("REPRO_TRACE_DIR"):
        # Ambient tracer: run_variant grafts each build's span tree into
        # it, so experiments that return plain summary dicts still dump
        # a full trace.
        from repro.obs.trace import Tracer, use_tracer

        ambient = Tracer()
        with use_tracer(ambient):
            result = benchmark.pedantic(fn, rounds=1, iterations=1)
        _maybe_dump_trace(result if ambient.roots == [] else ambient, test_name)
        return result
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def run_once(request):
    def _run(benchmark, fn):
        return once(benchmark, fn, test_name=request.node.name)

    return _run
