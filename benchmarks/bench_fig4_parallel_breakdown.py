"""Figure 4 — operational-kernel breakdown of the parallel Baseline.

The paper reports SpNode dominating the Baseline pipeline (79% on
YouTube, 87% on Orkut), with SpEdge the second-largest (6–10%). We
reproduce the single-thread percentage breakdown over the same four
networks (Support, Init, SpNode, SpEdge, SmGraph, SpNodeRemap).
"""

from repro.bench import ResultWriter, TextTable, bar_chart, get_workload, run_variant
from repro.bench.paper import FIG4_SPNODE_SHARE
from repro.equitruss.kernels import KERNELS

NETWORKS = ["orkut", "livejournal", "youtube", "dblp"]


def run_fig4():
    writer = ResultWriter("fig4_parallel_breakdown")
    table = TextTable(
        ["network", *[f"{k} %" for k in KERNELS]],
        title="Figure 4: Baseline kernel shares (single-thread, % of pipeline)",
    )
    spnode_share = {}
    for name in NETWORKS:
        w = get_workload(name)
        res = run_variant(w, "baseline", include_prereqs=True)
        bd = res.breakdown
        # Fig. 4 shows index-construction kernels only (TrussDecomp is a
        # prerequisite reported in Fig. 2) — renormalize over KERNELS.
        secs = {k: bd.seconds.get(k, 0.0) for k in KERNELS}
        total = sum(secs.values()) or 1.0
        pct = {k: 100.0 * v / total for k, v in secs.items()}
        table.add_row(name, *[pct[k] for k in KERNELS])
        spnode_share[name] = pct["SpNode"]
    writer.add(table)
    writer.add(
        bar_chart(
            NETWORKS,
            [spnode_share[n] for n in NETWORKS],
            title="SpNode share of Baseline pipeline (%) — paper: "
            + ", ".join(f"{k}={v:.0f}%" for k, v in FIG4_SPNODE_SHARE.items()),
            unit="%",
        )
    )
    writer.write()
    return spnode_share


def test_fig4_parallel_breakdown(benchmark, run_once):
    spnode_share = run_once(benchmark, run_fig4)
    # Paper's claim: SpNode is the dominant kernel of the Baseline.
    for name in ("orkut", "livejournal", "youtube"):
        assert spnode_share[name] >= 50.0, (name, spnode_share[name])
