"""§3.2 — empirical complexity check.

The paper's analysis: triangle work is O(|E|^1.5) worst-case, the
optimized index construction is near-linear in |E| + T (Afforest:
O((|E|^1.5 + |E|) / p)). We grow one stand-in across scale factors and
check that measured construction time grows near-linearly with the
actual work proxy (|E| + T), i.e. the per-unit cost stays flat — the
practical statement behind the asymptotics.
"""

from repro.bench import ResultWriter, TextTable
from repro.bench.workloads import get_workload, run_variant

SCALES = [0.25, 0.5, 1.0, 2.0]
NETWORK = "youtube"


def run_complexity():
    writer = ResultWriter("complexity_scaling")
    table = TextTable(
        ["scale", "|E|", "T", "work = |E|+T", "build s", "ns per work unit"],
        title=f"Index construction cost vs work ({NETWORK} stand-in, Afforest)",
    )
    per_unit = []
    for scale in SCALES:
        w = get_workload(NETWORK, scale_factor=scale)
        best = min(
            run_variant(w, "afforest", include_prereqs=True).seconds
            for _ in range(2)
        )
        work = w.num_edges + w.triangles.count
        unit = best / work * 1e9
        table.add_row(scale, w.num_edges, w.triangles.count, work, best, unit)
        per_unit.append(unit)
    writer.add(table)
    writer.write()
    return per_unit


def test_complexity_scaling(benchmark, run_once):
    per_unit = run_once(benchmark, run_complexity)
    # near-linear: per-work-unit cost varies by < 8x across a 16x size
    # sweep (fixed per-level overheads dominate the smallest scale)
    assert max(per_unit) < 8 * min(per_unit)
    # and the largest graph is not super-linearly worse than the mid one
    assert per_unit[-1] < 3 * per_unit[1]
