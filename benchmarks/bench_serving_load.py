"""Serving-frontend load bench: throughput vs tail latency curves.

Boots a real :class:`~repro.serve.frontend.ServingFrontend` (TCP +
shard worker subprocesses mmap-attaching one persistent store) over a
generated graph, then drives it with both standard traffic models from
:mod:`repro.serve.loadgen`:

* **closed-loop sweep** — 1..N concurrent clients at full tilt; the
  largest run's achieved QPS is taken as measured capacity;
* **open-loop sweep** — fixed arrival rates at fractions of that
  capacity (coordinated-omission-free), tracing the throughput-vs-p99
  knee that the closed loop hides.

Before any load, a differential spot-check replays a sample of
``(vertex, k)`` queries through the wire and compares bit-for-bit
against an in-process :class:`~repro.serve.engine.QueryEngine` on the
same store — a bench run on a frontend that answers wrong is worthless.

Results land in ``BENCH_pr8.json`` (schema-validated, run manifest
attached) with ``pr8.closed_peak_qps`` / ``pr8.open_curve`` derived
summaries; ``--artifacts-dir`` additionally dumps the merged
Prometheus exposition, the JSON metrics snapshot, and final server
stats for CI upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_load.py \
        [--smoke] [--shards N] [--out PATH] [--artifacts-dir DIR] \
        [--vertices N] [--edges M] [--seconds S] [--seed S]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path


def _build_store(n: int, m: int, seed: int, variant: str, workdir: Path):
    """Generate a graph, build the index, persist the store; (graph, path)."""
    from repro.equitruss.pipeline import build_index
    from repro.graph.csr import CSRGraph
    from repro.graph.generators import erdos_renyi_gnm

    graph = CSRGraph.from_edgelist(erdos_renyi_gnm(n, m, seed=seed))
    store_path = workdir / f"gnm_{n}_{m}.eqtsidx"
    t0 = time.perf_counter()
    build_index(graph, variant, store_path=store_path)
    print(
        f"graph: {graph.num_vertices} vertices / {graph.num_edges} edges; "
        f"store built in {time.perf_counter() - t0:.2f}s "
        f"({store_path.stat().st_size / 1e6:.1f} MB)"
    )
    return graph, store_path


def _differential_spotcheck(host, port, store_path, ks, samples, seed) -> int:
    """Wire answers vs in-process engine on ``samples`` random queries."""
    import random

    from repro.serve.client import ServeClient
    from repro.serve.protocol import serialize_communities
    from repro.store import attach_store

    rng = random.Random(seed)
    mismatches = 0
    with attach_store(store_path) as store:
        engine = store.engine(cache_size=0)
        n = store.graph.num_vertices
        with ServeClient(host, port) as client:
            for _ in range(samples):
                vertex = rng.randrange(n)
                k = rng.choice(ks)
                expected = serialize_communities(engine.query(vertex, k, record=False))
                if client.query(vertex, k) != expected:
                    mismatches += 1
                    print(f"MISMATCH at vertex={vertex} k={k}", file=sys.stderr)
    return mismatches


def _notes(report) -> dict:
    """LoadReport summary as ``add_run`` notes (drop clashing kwargs)."""
    return {
        key: value
        for key, value in report.as_dict().items()
        if key not in ("mode", "seconds")
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized graph and ~seconds-long load windows")
    parser.add_argument("--out", default=None,
                        help="snapshot path (default benchmarks/results/BENCH_pr8.json)")
    parser.add_argument("--artifacts-dir", default=None, metavar="DIR")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--edges", type=int, default=None)
    parser.add_argument("--variant", default="afforest")
    parser.add_argument("--seconds", type=float, default=None,
                        help="load window per sweep point")
    parser.add_argument("--window-ms", type=float, default=2.0)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-pending", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    from repro.bench.snapshot import PerfSnapshot, load_snapshot
    from repro.obs.manifest import collect_manifest
    from repro.serve.frontend import FrontendConfig, FrontendThread
    from repro.serve.loadgen import (
        closed_loop,
        default_ks,
        discover_universe,
        open_loop,
    )

    n = args.vertices or (600 if args.smoke else 20_000)
    m = args.edges or (4_000 if args.smoke else 300_000)
    seconds = args.seconds or (1.5 if args.smoke else 10.0)
    client_sweep = [1, 2] if args.smoke else [1, 2, 4, 8]
    dataset = f"gnm_{n}_{m}"

    workdir = Path(tempfile.mkdtemp(prefix="bench_serving_"))
    try:
        graph, store_path = _build_store(
            n, m, args.seed, args.variant, workdir
        )
        config = FrontendConfig(
            store_path=store_path,
            num_shards=args.shards,
            window_ms=args.window_ms,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
        )
        snap = PerfSnapshot("pr8", path=args.out)
        exp_closed = "serving_closed_smoke" if args.smoke else "serving_closed"
        exp_open = "serving_open_smoke" if args.smoke else "serving_open"

        with FrontendThread(config) as server:
            host, port = server.host, server.port
            print(f"frontend up at {host}:{port} with {args.shards} shards")
            num_vertices, kmax = discover_universe(host, port)
            ks = default_ks(kmax)
            print(f"universe: {num_vertices} vertices, kmax={kmax}, ks={ks}")

            spot = 40 if args.smoke else 200
            mismatches = _differential_spotcheck(
                host, port, store_path, ks, spot, args.seed
            )
            if mismatches:
                print(f"FAIL: {mismatches}/{spot} differential mismatches",
                      file=sys.stderr)
                return 1
            print(f"differential spot-check: {spot} queries bit-identical")

            # ---- closed-loop sweep: capacity at rising concurrency
            closed_reports = []
            for clients in client_sweep:
                rep = closed_loop(
                    host, port, clients=clients, seconds=seconds,
                    num_vertices=num_vertices, ks=ks, seed=args.seed,
                )
                closed_reports.append(rep)
                p50, p99 = rep.percentile_ms(50), rep.percentile_ms(99)
                print(
                    f"closed x{clients}: {rep.achieved_qps:8.1f} qps  "
                    f"p50 {p50 if p50 is None else round(p50, 2)} ms  "
                    f"p99 {p99 if p99 is None else round(p99, 2)} ms  "
                    f"({rep.ok} ok / {rep.rejected} rejected)"
                )
                snap.add_run(
                    exp_closed, f"{dataset}_c{clients}", args.variant,
                    "frontend", args.shards, rep.seconds, mode="measured",
                    **_notes(rep),
                )
            peak_qps = max(r.achieved_qps for r in closed_reports)

            # ---- open-loop sweep: p99 vs offered rate up to capacity
            open_reports = []
            for frac in (0.25, 0.5, 0.75, 1.0):
                rate = max(1.0, peak_qps * frac)
                rep = open_loop(
                    host, port, rate=rate, seconds=seconds,
                    num_vertices=num_vertices, ks=ks, seed=args.seed,
                )
                open_reports.append(rep)
                p99 = rep.percentile_ms(99)
                print(
                    f"open @{rate:8.1f} qps offered: "
                    f"{rep.achieved_qps:8.1f} achieved  "
                    f"p99 {p99 if p99 is None else round(p99, 2)} ms  "
                    f"({rep.ok} ok / {rep.rejected} rejected)"
                )
                snap.add_run(
                    exp_open, f"{dataset}_f{int(frac * 100)}", args.variant,
                    "frontend", args.shards, rep.seconds, mode="measured",
                    **_notes(rep),
                )

            # ---- artifacts: merged metrics + stats off the live server
            from repro.serve.client import ServeClient

            with ServeClient(host, port) as client:
                prom_text = client.metrics_prometheus()
                metrics_json = client.metrics_json()
                final_stats = client.stats()

        curve = [
            {"offered_qps": r.offered_qps, "achieved_qps": r.achieved_qps,
             "p50_ms": r.percentile_ms(50), "p99_ms": r.percentile_ms(99),
             "rejected": r.rejected}
            for r in open_reports
        ]
        snap.derive("pr8.closed_peak_qps", round(peak_qps, 1))
        snap.derive("pr8.open_curve", curve)
        snap.derive("pr8.differential_spotcheck", True)
        snap.derive("pr8.shards", args.shards)
        best_p99 = min(
            (r.percentile_ms(99) for r in closed_reports if r.percentile_ms(99)),
            default=None,
        )
        if best_p99 is not None:
            snap.derive("pr8.closed_best_p99_ms", round(best_p99, 3))
        snap.attach_manifest(collect_manifest(
            graph=graph, dataset=dataset,
            extra={"experiment": exp_closed, "shards": args.shards,
                   "window_ms": args.window_ms, "max_batch": args.max_batch},
        ))
        path = snap.write()
        load_snapshot(path)  # schema round trip
        print(f"snapshot OK -> {path}")

        if args.artifacts_dir:
            art = Path(args.artifacts_dir)
            art.mkdir(parents=True, exist_ok=True)
            (art / "serving_metrics.prom").write_text(prom_text, encoding="utf-8")
            (art / "serving_metrics.json").write_text(
                json.dumps(metrics_json, indent=2, sort_keys=True),
                encoding="utf-8",
            )
            (art / "serving_stats.json").write_text(
                json.dumps(final_stats, indent=2, sort_keys=True),
                encoding="utf-8",
            )
            shutil.copy2(path, art / path.name)
            print(f"artifacts -> {art}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
