"""Figure 6 — strong scaling of the three variants, 1..128 threads.

Modeled T(p) from the instrumented single-thread runs, for the paper's
three networks. Asserted shape: monotone runtime decrease with thread
count, Afforest fastest at every p on the large graphs, and the 128-
thread time within the paper's speedup band.
"""

from repro.bench import ResultWriter, TextTable, get_workload, line_chart, run_variant
from repro.bench.paper import FIG6_ENDPOINTS
from repro.parallel import SimulatedMachine
from repro.parallel.simulate import PAPER_THREAD_COUNTS

NETWORKS = ["orkut", "livejournal", "youtube"]
VARIANTS = ["baseline", "coptimal", "afforest"]


def run_fig6():
    writer = ResultWriter("fig6_strong_scaling")
    machine = SimulatedMachine()
    curves = {}
    for name in NETWORKS:
        w = get_workload(name)
        series = {}
        table = TextTable(
            ["threads", *VARIANTS],
            title=f"Figure 6 ({name}): modeled execution time (s)",
        )
        for v in VARIANTS:
            res = run_variant(w, v, include_prereqs=True)
            curve = machine.scaling_curve(res.trace, PAPER_THREAD_COUNTS)
            series[v] = curve.seconds
            curves[(name, v)] = curve
        for i, p in enumerate(PAPER_THREAD_COUNTS):
            table.add_row(p, *[series[v][i] for v in VARIANTS])
        writer.add(table)
        writer.add(
            line_chart(
                list(PAPER_THREAD_COUNTS),
                series,
                title=f"{name}: T(p), log y (paper endpoints: "
                f"{FIG6_ENDPOINTS.get(name, {})})",
                logy=True,
            )
        )
    writer.write()
    return curves


def test_fig6_strong_scaling(benchmark, run_once):
    curves = run_once(benchmark, run_fig6)
    for (name, variant), curve in curves.items():
        secs = curve.seconds
        # strictly decreasing through 32 threads; beyond that small
        # graphs may saturate (barrier cost ~ rounds · log p), matching
        # the flattening tails of the paper's plots
        through32 = [s for p, s in zip(curve.threads, secs) if p <= 32]
        assert all(b < a for a, b in zip(through32, through32[1:])), (name, variant)
        assert all(b < a * 1.10 for a, b in zip(secs, secs[1:])), (name, variant)
        assert secs[-1] < secs[0] / 5, (name, variant)
    # Afforest fastest on the large networks through 32 threads; at the
    # far end the compute-bound Baseline scales further (its paper
    # speedup is also the largest — Table 5) and our smaller 1-thread
    # gap lets the modeled curves converge, so allow parity there.
    for name in ("orkut", "livejournal"):
        for i, p in enumerate(PAPER_THREAD_COUNTS):
            aff = curves[(name, "afforest")].seconds[i]
            base = curves[(name, "baseline")].seconds[i]
            if p <= 32:
                assert aff <= base, (name, p)
            else:
                assert aff <= base * 1.15, (name, p)
