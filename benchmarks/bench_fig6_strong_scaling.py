"""Figure 6 — strong scaling of the three variants, 1..128 threads.

Modeled T(p) from the instrumented single-thread runs, for the paper's
three networks. Asserted shape: monotone runtime decrease with thread
count, Afforest fastest at every p on the large graphs, and the 128-
thread time within the paper's speedup band.

``run_backend_sweep`` additionally measures *real* end-to-end wall
clock across the serial / thread / process backends on the largest
local dataset, asserts the indexes are bit-identical, and records
everything (plus the modeled T(p) reference points and the host's CPU
count) in the machine-readable ``BENCH_pr4.json`` snapshot. The ≥2×
speedup assertion only arms on hosts with enough cores — on a 1-core
container the process rows measure IPC overhead, not scaling, and the
snapshot says so via ``host.cpu_count``.
"""

import os
import time

from repro.bench import (
    PerfSnapshot,
    ResultWriter,
    TextTable,
    get_workload,
    line_chart,
    run_variant,
)
from repro.bench.paper import FIG6_ENDPOINTS
from repro.parallel import SimulatedMachine
from repro.parallel.simulate import PAPER_THREAD_COUNTS

NETWORKS = ["orkut", "livejournal", "youtube"]
VARIANTS = ["baseline", "coptimal", "afforest"]

#: Largest local strong-scaling dataset and the measured backend grid.
SWEEP_NETWORK = "orkut"
SWEEP_VARIANT = "afforest"
SWEEP_BACKENDS = (("serial", 1), ("thread", 4), ("process", 4))


def run_fig6():
    writer = ResultWriter("fig6_strong_scaling")
    machine = SimulatedMachine()
    curves = {}
    for name in NETWORKS:
        w = get_workload(name)
        series = {}
        table = TextTable(
            ["threads", *VARIANTS],
            title=f"Figure 6 ({name}): modeled execution time (s)",
        )
        for v in VARIANTS:
            res = run_variant(w, v, include_prereqs=True)
            curve = machine.scaling_curve(res.trace, PAPER_THREAD_COUNTS)
            series[v] = curve.seconds
            curves[(name, v)] = curve
        for i, p in enumerate(PAPER_THREAD_COUNTS):
            table.add_row(p, *[series[v][i] for v in VARIANTS])
        writer.add(table)
        writer.add(
            line_chart(
                list(PAPER_THREAD_COUNTS),
                series,
                title=f"{name}: T(p), log y (paper endpoints: "
                f"{FIG6_ENDPOINTS.get(name, {})})",
                logy=True,
            )
        )
    writer.write()
    return curves


def run_backend_sweep():
    from repro.equitruss.pipeline import build_index
    from repro.parallel.context import ExecutionContext

    w = get_workload(SWEEP_NETWORK)
    writer = ResultWriter("fig6_backend_sweep")
    snap = PerfSnapshot("pr4")
    table = TextTable(
        ["backend", "workers", "seconds", "identical_to_serial"],
        title=f"Measured end-to-end build ({SWEEP_NETWORK}, {SWEEP_VARIANT}), "
        f"cpu_count={os.cpu_count()}",
    )
    baseline_index = None
    identical = {}
    for backend, workers in SWEEP_BACKENDS:
        with ExecutionContext(backend=backend, num_workers=workers) as ctx:
            t0 = time.perf_counter()
            res = build_index(w.graph, SWEEP_VARIANT, ctx=ctx, num_workers=workers)
            elapsed = time.perf_counter() - t0
        if baseline_index is None:
            baseline_index = res.index
            same = True
        else:
            same = res.index == baseline_index
        identical[backend] = same
        table.add_row(backend, workers, elapsed, same)
        snap.add_run(
            "fig6_backend_sweep", SWEEP_NETWORK, SWEEP_VARIANT, backend, workers,
            elapsed, mode="measured",
            kernels=res.breakdown.seconds, identical_to_serial=bool(same),
            partition=ctx.partition,
        )
    # modeled T(p) reference points from the serial instrumented run,
    # so the snapshot carries the scaling expectation next to the
    # wall-clock facts
    machine = SimulatedMachine()
    serial_res = run_variant(w, SWEEP_VARIANT, include_prereqs=True)
    curve = machine.scaling_curve(serial_res.trace, (1, 4))
    for p, secs in zip(curve.threads, curve.seconds):
        snap.add_run(
            "fig6_backend_sweep_modeled", SWEEP_NETWORK, SWEEP_VARIANT,
            "process", int(p), float(secs), mode="modeled",
        )
    speedup = snap.speedup(
        "fig6_backend_sweep", SWEEP_NETWORK, SWEEP_VARIANT,
        base_backend="serial", backend="process",
    )
    snap.derive("fig6.process_w4_speedup_vs_serial", speedup)
    snap.derive("fig6.indexes_bit_identical", all(identical.values()))
    path = snap.write()
    writer.add(table)
    writer.add(f"process/serial measured speedup: {speedup:.3f}x "
               f"(snapshot -> {path})")
    writer.write()
    return identical, speedup


def test_fig6_backend_sweep(benchmark, run_once):
    identical, speedup = run_once(benchmark, run_backend_sweep)
    assert all(identical.values()), identical
    assert speedup is not None and speedup > 0
    if (os.cpu_count() or 1) >= 4:
        # the acceptance bar: real multicore hosts must see real scaling
        assert speedup >= 2.0, speedup


def test_fig6_strong_scaling(benchmark, run_once):
    curves = run_once(benchmark, run_fig6)
    for (name, variant), curve in curves.items():
        secs = curve.seconds
        # strictly decreasing through 32 threads; beyond that small
        # graphs may saturate (barrier cost ~ rounds · log p), matching
        # the flattening tails of the paper's plots
        through32 = [s for p, s in zip(curve.threads, secs) if p <= 32]
        assert all(b < a for a, b in zip(through32, through32[1:])), (name, variant)
        assert all(b < a * 1.10 for a, b in zip(secs, secs[1:])), (name, variant)
        assert secs[-1] < secs[0] / 5, (name, variant)
    # Afforest fastest on the large networks through 32 threads; at the
    # far end the compute-bound Baseline scales further (its paper
    # speedup is also the largest — Table 5) and our smaller 1-thread
    # gap lets the modeled curves converge, so allow parity there.
    for name in ("orkut", "livejournal"):
        for i, p in enumerate(PAPER_THREAD_COUNTS):
            aff = curves[(name, "afforest")].seconds[i]
            base = curves[(name, "baseline")].seconds[i]
            if p <= 32:
                assert aff <= base, (name, p)
            else:
                assert aff <= base * 1.15, (name, p)
