"""Figure 5 — single-thread SpNode improvement from the optimizations.

Paper: C-Optimal gives 1.66–2.07× over Baseline and Afforest 2–4.13×,
growing with graph size, Afforest fastest on the large graphs. Our
substrate amplifies the re-derivation penalty (NumPy keyed searches vs
C++ hash probes), so the absolute ratios are larger, but the required
shape holds: Baseline slowest everywhere, Afforest fastest on the large
graphs, and the gap widens with size.
"""

from repro.bench import ResultWriter, TextTable, bar_chart, get_workload, run_variant
from repro.bench.paper import FIG5_SPNODE_SPEEDUP
from repro.equitruss.kernels import SP_NODE

NETWORKS = ["orkut", "livejournal", "youtube", "dblp"]


def run_fig5():
    writer = ResultWriter("fig5_spnode_speedup")
    table = TextTable(
        [
            "network", "Base s", "C-Opt s", "Aff s",
            "C-Opt x (ours)", "Aff x (ours)", "C-Opt x (paper)", "Aff x (paper)",
        ],
        title="Figure 5: single-thread SpNode speedup over Baseline",
    )
    speedups = {}
    for name in NETWORKS:
        w = get_workload(name)
        secs = {}
        for variant in ("baseline", "coptimal", "afforest"):
            # min of two runs: the container shares one core, so single
            # measurements of the sub-second kernels are noisy
            secs[variant] = min(
                run_variant(w, variant).breakdown.seconds.get(SP_NODE, 0.0)
                for _ in range(2)
            )
        co = secs["baseline"] / secs["coptimal"]
        af = secs["baseline"] / secs["afforest"]
        ref = FIG5_SPNODE_SPEEDUP[name]
        table.add_row(
            name, secs["baseline"], secs["coptimal"], secs["afforest"],
            co, af, ref["coptimal"], ref["afforest"],
        )
        speedups[name] = (co, af)
    writer.add(table)
    writer.add(
        bar_chart(
            [f"{n}/{v}" for n in NETWORKS for v in ("coptimal", "afforest")],
            [s for n in NETWORKS for s in speedups[n]],
            title="SpNode speedup over Baseline (x)",
            unit="x",
        )
    )
    writer.write()
    return speedups


def test_fig5_spnode_speedup(benchmark, run_once):
    speedups = run_once(benchmark, run_fig5)
    for name, (co, af) in speedups.items():
        assert co > 1.0, (name, "C-Optimal must beat Baseline")
        assert af > 1.0, (name, "Afforest must beat Baseline")
    # paper shape: Afforest competitive-to-fastest on the large networks
    # (10% tolerance absorbs single-core timing noise between the two
    # optimized kernels, which land within a few hundred ms of each other)
    assert speedups["orkut"][1] > speedups["orkut"][0] * 0.9
    assert speedups["livejournal"][1] > speedups["livejournal"][0] * 0.9
    assert (
        speedups["orkut"][1] > speedups["orkut"][0]
        or speedups["livejournal"][1] > speedups["livejournal"][0]
        or speedups["youtube"][1] > speedups["youtube"][0]
    )
    # gap grows with size (orkut > dblp), as in the paper (4.13 vs 2.0)
    assert speedups["orkut"][1] > speedups["dblp"][1]
