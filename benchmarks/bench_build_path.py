"""Build-path kernel benchmark: fused Init + bucketed peeling (PR 9).

Same-run, same-host before/after measurement of the two rewritten
build-path kernels, keeping the replaced implementations as in-process
oracles:

* **Init** — the legacy two-key-sort CSR build (``_from_edgelist_keyed``)
  vs the fused single-pass build (``CSRGraph.from_edgelist``) vs the
  sort-free rebuild from a cached ``edge_order`` permutation;
* **TrussDecomp** — the level-scan peeling schedule vs the PKT-style
  bucketed schedule, serial;
* **end-to-end** — ``build_index`` under the serial and process
  backends with the new defaults (bucket peeling, balanced partitions).

Every pair is asserted bit-identical before it is timed, the bucket
schedule must report zero level rescans, and the **serial floor guard**
fails the run if either new kernel is more than 20% slower than the
legacy one it replaced — a same-run comparison, so host-speed drift
between CI runs cannot mask (or fake) a regression. The ≥2× process
speedup assertion arms only on hosts with ``cpu_count >= 4``; on
smaller boxes the process rows measure IPC overhead, not scaling, and
the snapshot says so via ``host.cpu_count``.

Results land in the schema-validated ``benchmarks/results/BENCH_pr9.json``
with a run-provenance manifest; when ``BENCH_pr4.json`` is present its
Orkut-stand-in serial Init/TrussDecomp seconds are recorded alongside
for the cross-PR trajectory (informative, not asserted — different
hosts).

Usage::

    PYTHONPATH=src python benchmarks/bench_build_path.py \
        [--smoke] [--out PATH] [--workers N] [--dataset NAME]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

#: New-vs-legacy serial wall-clock ceiling enforced by the floor guard.
SERIAL_FLOOR_RATIO = 1.20


def _best_of(fn, reps: int):
    """(best seconds, last result) over ``reps`` repetitions."""
    best, out = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return best, out


def _same_csr(a, b) -> bool:
    import numpy as np

    return (
        np.array_equal(np.asarray(a.indptr), np.asarray(b.indptr))
        and np.array_equal(np.asarray(a.indices), np.asarray(b.indices))
        and np.array_equal(np.asarray(a.edge_ids), np.asarray(b.edge_ids))
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="snapshot path (default benchmarks/results/BENCH_pr9.json)")
    parser.add_argument("--dataset", default="orkut",
                        help="workload stand-in (default: orkut, the Fig. 6 sweep graph)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--smoke", action="store_true",
                        help="single repetition per kernel (CI)")
    args = parser.parse_args(argv)
    reps = 1 if args.smoke else 3

    import numpy as np

    from repro.bench import get_workload
    from repro.bench.snapshot import PerfSnapshot, load_snapshot
    from repro.equitruss.pipeline import build_index
    from repro.graph.csr import CSRGraph, _from_edgelist_keyed
    from repro.obs import metrics
    from repro.obs.manifest import collect_manifest
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.parallel.context import ExecutionContext
    from repro.parallel.shm import ProcessBackend, process_backend_available
    from repro.truss.decompose import truss_decomposition

    w = get_workload(args.dataset)
    edges = w.graph.edges
    print(f"{args.dataset} stand-in: {w.num_vertices} vertices / "
          f"{w.num_edges} edges / {w.triangles.count} triangles")
    failures: list[str] = []

    # ---- Init: keyed (legacy) vs fused vs fused with cached edge_order
    t_keyed, g_keyed = _best_of(lambda: _from_edgelist_keyed(edges), reps)
    t_fused, g_fused = _best_of(lambda: CSRGraph.from_edgelist(edges), reps)
    order = g_fused.edge_sort_order()
    t_cached, g_cached = _best_of(
        lambda: CSRGraph.from_edgelist(edges, edge_order=order), reps
    )
    if not (_same_csr(g_keyed, g_fused) and _same_csr(g_keyed, g_cached)):
        failures.append("fused Init differs from the keyed oracle")
    if t_fused > t_keyed * SERIAL_FLOOR_RATIO:
        failures.append(
            f"serial floor: fused Init {t_fused:.3f}s > "
            f"{SERIAL_FLOOR_RATIO}x keyed {t_keyed:.3f}s"
        )
    print(f"Init: keyed {t_keyed:.3f}s, fused {t_fused:.3f}s "
          f"({t_keyed / t_fused:.2f}x), cached-order {t_cached:.3f}s "
          f"({t_keyed / t_cached:.2f}x)")

    # ---- TrussDecomp: scan (legacy) vs bucket schedule, serial.
    # Repetitions are interleaved (scan, bucket, scan, bucket, ...) so
    # slow drift on a shared host biases neither schedule; each rep runs
    # under its own registry so counters stay per-run, not cumulative.
    peel: dict[str, list] = {"scan": [float("inf"), None, None],
                             "bucket": [float("inf"), None, None]}
    for _ in range(reps):
        for peeling in ("scan", "bucket"):
            reg = MetricsRegistry()
            with use_registry(reg):
                t0 = time.perf_counter()
                d = truss_decomposition(
                    w.graph, triangles=w.triangles, peeling=peeling
                )
                dt = time.perf_counter() - t0
            if dt < peel[peeling][0]:
                peel[peeling] = [dt, d, reg.as_dict()]
    (t_scan, d_scan, _), (t_bucket, d_bucket, m_bucket) = peel["scan"], peel["bucket"]
    if not (
        np.array_equal(d_scan.trussness, d_bucket.trussness)
        and np.array_equal(d_scan.support, d_bucket.support)
        and d_scan.peel_rounds == d_bucket.peel_rounds
    ):
        failures.append("bucket peeling differs from the scan oracle")
    if d_bucket.level_scans != 0:
        failures.append(
            f"bucket peeling paid {d_bucket.level_scans} level rescans"
        )
    if t_bucket > t_scan * SERIAL_FLOOR_RATIO:
        failures.append(
            f"serial floor: bucket TrussDecomp {t_bucket:.3f}s > "
            f"{SERIAL_FLOOR_RATIO}x scan {t_scan:.3f}s"
        )
    print(f"TrussDecomp: scan {t_scan:.3f}s ({d_scan.level_scans} rescans), "
          f"bucket {t_bucket:.3f}s ({t_scan / t_bucket:.2f}x, 0 rescans, "
          f"{m_bucket.get('repro.truss.bucket_moves', 0)} bucket moves)")

    # ---- end-to-end under the new defaults
    def _e2e(backend, workers):
        with ExecutionContext(backend=backend, num_workers=workers) as ctx:
            t0 = time.perf_counter()
            res = build_index(w.graph, "afforest", ctx=ctx, num_workers=workers)
            elapsed = time.perf_counter() - t0
            return elapsed, res, ctx.partition, ctx

    t_serial, res_serial, part_serial, _ = _e2e("serial", 1)
    t_process = res_process = None
    proc_ctx = None
    if process_backend_available():
        backend = ProcessBackend(num_workers=args.workers, min_items=0)
        t_process, res_process, part_process, proc_ctx = _e2e(backend, args.workers)
        if not (res_serial.index == res_process.index):
            failures.append("process-backend index differs from serial")
    cpu = os.cpu_count() or 1
    speedup = (t_serial / t_process) if t_process else None
    if t_process is not None:
        print(f"end-to-end afforest: serial {t_serial:.3f}s, "
              f"process[{args.workers}] {t_process:.3f}s "
              f"({speedup:.2f}x, cpu_count={cpu})")
        if cpu >= 4 and speedup < 2.0:
            # the acceptance bar: real multicore hosts must see real scaling
            failures.append(
                f"process speedup {speedup:.2f}x < 2.0x on a {cpu}-core host"
            )
    else:
        print(f"end-to-end afforest: serial {t_serial:.3f}s "
              f"(process backend unavailable)")

    # ---- snapshot
    snap = PerfSnapshot("pr9", path=args.out)
    snap.add_run("build_path_init", args.dataset, "keyed", "serial", 1,
                 t_keyed, mode="measured")
    snap.add_run("build_path_init", args.dataset, "fused", "serial", 1,
                 t_fused, mode="measured")
    snap.add_run("build_path_init", args.dataset, "fused_cached_order",
                 "serial", 1, t_cached, mode="measured")
    snap.add_run("build_path_peel", args.dataset, "scan", "serial", 1,
                 t_scan, mode="measured", level_scans=int(d_scan.level_scans))
    snap.add_run("build_path_peel", args.dataset, "bucket", "serial", 1,
                 t_bucket, mode="measured", level_scans=int(d_bucket.level_scans),
                 bucket_moves=int(m_bucket.get("repro.truss.bucket_moves", 0)))
    snap.add_run("build_path_e2e", args.dataset, "afforest", "serial", 1,
                 t_serial, mode="measured",
                 kernels=res_serial.breakdown.seconds, partition=part_serial)
    if t_process is not None:
        snap.add_run("build_path_e2e", args.dataset, "afforest", "process",
                     args.workers, t_process, mode="measured",
                     kernels=res_process.breakdown.seconds,
                     partition=part_process,
                     identical_to_serial="process-backend index differs "
                     "from serial" not in failures)
    snap.derive("pr9.init_speedup_fused_vs_keyed", t_keyed / t_fused)
    snap.derive("pr9.init_speedup_cached_vs_keyed", t_keyed / t_cached)
    snap.derive("pr9.trussdecomp_speedup_bucket_vs_scan", t_scan / t_bucket)
    snap.derive("pr9.level_scans_bucket", int(d_bucket.level_scans))
    snap.derive("pr9.serial_floor_ok",
                not any(f.startswith("serial floor") for f in failures))
    snap.derive("pr9.outputs_bit_identical",
                not any("differs" in f for f in failures))
    if speedup is not None:
        snap.derive("pr9.process_speedup_vs_serial", speedup)
        snap.derive("pr9.speedup_assert_armed", cpu >= 4)
    sk = res_serial.breakdown.seconds
    snap.derive("pr9.serial_init_plus_trussdecomp_seconds",
                float(sk.get("Init", 0.0) + sk.get("TrussDecomp", 0.0)))

    # cross-PR trajectory: the PR 4 sweep's serial Init/TrussDecomp on
    # the same stand-in (informative only — measured on another host)
    pr4_path = Path(__file__).resolve().parent / "results" / "BENCH_pr4.json"
    if pr4_path.exists():
        try:
            pr4 = json.loads(pr4_path.read_text(encoding="utf-8"))
            for run in pr4.get("runs", []):
                if (
                    run.get("experiment") == "fig6_backend_sweep"
                    and run.get("dataset") == args.dataset
                    and run.get("backend") == "serial"
                    and run.get("kernels")
                ):
                    snap.derive("pr9.pr4_serial_init_seconds",
                                run["kernels"].get("Init"))
                    snap.derive("pr9.pr4_serial_trussdecomp_seconds",
                                run["kernels"].get("TrussDecomp"))
        except (ValueError, OSError):
            pass

    manifest = collect_manifest(
        ctx=proc_ctx, graph=w.graph, dataset=args.dataset,
        extra={"experiment": "build_path"},
    )
    snap.attach_manifest(manifest)
    path = snap.write()
    load_snapshot(path)  # schema validation round trip
    print(f"snapshot OK -> {path}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
