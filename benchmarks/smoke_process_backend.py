"""CI benchmark smoke: process backend + cross-process telemetry check.

Builds the EquiTruss index on a small synthetic graph with the serial
backend and with ``--backend process --workers 4`` (forcing fan-out by
zeroing the min-items gate, so the worker pool really runs even though
the graph is tiny), then asserts the whole observability contract:

* the indexes are bit-identical;
* every ``Worker[i]`` span in the coordinator trace contains at least
  one kernel span recorded *inside* the worker process;
* the worker-attributed counters shipped back in the task envelopes
  reduce bit-exactly to the serial-backend totals.

Both runs are recorded in ``BENCH_pr6.json`` — the process run carries
the per-worker kernel breakdown (``w{id}.{kernel}`` seconds) — with a
run-provenance manifest attached, and the trace / metrics / Prometheus
/ manifest artifacts land in ``--artifacts-dir`` for CI upload. Exits
nonzero on any failure — wired into CI as the ``bench-smoke`` job.

Usage::

    PYTHONPATH=src python benchmarks/smoke_process_backend.py \
        [--out PATH] [--artifacts-dir DIR] [--workers N]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

#: Counters whose per-worker partials must sum to the serial totals.
WORKER_COUNTERS = (
    "repro.triangles.support_updates",
    "repro.truss.support_decrements",
    "repro.truss.bucket_moves",
    "repro.equitruss.superedge_candidates",
)


def _build(graph, backend, workers):
    """One instrumented build under its own metrics registry."""
    from repro.equitruss.pipeline import build_index
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.parallel.context import ExecutionContext

    registry = MetricsRegistry()
    ctx = ExecutionContext(backend=backend, num_workers=workers)
    with use_registry(registry):
        t0 = time.perf_counter()
        res = build_index(graph, "afforest", ctx=ctx, num_workers=workers)
        elapsed = time.perf_counter() - t0
    return res, elapsed, ctx, registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="snapshot path (default benchmarks/results/BENCH_pr6.json)")
    parser.add_argument("--artifacts-dir", default=None, metavar="DIR",
                        help="write trace/metrics/prometheus/manifest artifacts here")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.bench.snapshot import PerfSnapshot, load_snapshot
    from repro.graph.csr import CSRGraph
    from repro.graph.generators import erdos_renyi_gnm
    from repro.obs.manifest import collect_manifest, write_manifest
    from repro.obs.report import per_worker_kernels
    from repro.parallel.shm import ProcessBackend, process_backend_available

    graph = CSRGraph.from_edgelist(erdos_renyi_gnm(500, 5000, seed=42))
    print(f"smoke graph: {graph.num_vertices} vertices / {graph.num_edges} edges")

    serial, t_serial, serial_ctx, serial_reg = _build(graph, "serial", 1)

    if not process_backend_available():
        # the smoke job runs on Linux where fork + /dev/shm exist; a
        # missing backend there is a regression, not an environment quirk
        print("FAIL: process backend unavailable", file=sys.stderr)
        return 1

    backend = ProcessBackend(num_workers=args.workers, min_items=0)
    process, t_process, proc_ctx, proc_reg = _build(graph, backend, args.workers)

    failures = []
    if not (serial.index == process.index):
        failures.append("process-backend index differs from serial")

    # ---- worker span shipping: every Worker[i] has in-worker children
    worker_spans = [
        s for s, _ in proc_ctx.tracer.walk() if "worker_id" in s.attrs
    ]
    empty = [s.name for s in worker_spans if not s.children]
    if not worker_spans:
        failures.append("no Worker[i] spans in the process trace")
    if empty:
        failures.append(f"worker spans without in-worker kernel spans: {empty[:5]}")

    # ---- bit-exact counter reduction: sum(worker partials) == serial
    serial_metrics = serial_reg.as_dict()
    proc_metrics = proc_reg.as_dict()
    counters_exact = True
    for name in WORKER_COUNTERS:
        s, p = serial_metrics.get(name), proc_metrics.get(name)
        if s is None or s != p:
            counters_exact = False
            failures.append(f"counter {name}: serial={s} process={p}")
        else:
            print(f"counter {name}: {s} == {p} (bit-exact)")

    # rolling JSONL stream opt-in (REPRO_METRICS_INTERVAL/_PATH): flush
    # one final snapshot of the process run's registry
    from repro.obs.exporter import emitter_from_env

    emitter = emitter_from_env(registry=proc_reg)
    if emitter is not None:
        emitter.path.parent.mkdir(parents=True, exist_ok=True)
        emitter.emit_once()
        print(f"metrics stream -> {emitter.path}")

    per_worker = per_worker_kernels(proc_ctx.tracer)
    print(f"indexes {'bit-identical' if not failures else 'CHECK FAILED'}; "
          f"serial {t_serial:.3f}s, process[{args.workers}] {t_process:.3f}s, "
          f"{len(worker_spans)} worker spans, "
          f"{len(per_worker)} per-worker kernel rows")

    # ---- snapshot: fig6-style sweep rows + per-worker kernel breakdown
    snap = PerfSnapshot("pr6", path=args.out)
    snap.add_run("ci_smoke", "gnm_500_5000", "afforest", "serial", 1,
                 t_serial, mode="measured",
                 kernels=serial.breakdown.seconds,
                 partition=serial_ctx.partition)
    snap.add_run("ci_smoke", "gnm_500_5000", "afforest", "process", args.workers,
                 t_process, mode="measured",
                 kernels={**process.breakdown.seconds, **per_worker},
                 identical_to_serial=not failures,
                 worker_spans=len(worker_spans),
                 partition=proc_ctx.partition)
    snap.derive("pr6.worker_counters_bit_exact", counters_exact)
    snap.derive("pr6.worker_spans_with_children",
                len(worker_spans) - len(empty))
    manifest = collect_manifest(ctx=proc_ctx, graph=graph,
                                dataset="gnm_500_5000",
                                extra={"experiment": "ci_smoke"})
    snap.attach_manifest(manifest)
    path = snap.write()
    load_snapshot(path)  # schema validation round trip
    print(f"snapshot OK -> {path}")

    # ---- artifacts for CI upload
    if args.artifacts_dir:
        from repro.obs.export import write_metrics_json, write_trace_jsonl
        from repro.obs.exporter import render_prometheus

        art = Path(args.artifacts_dir)
        art.mkdir(parents=True, exist_ok=True)
        write_trace_jsonl(proc_ctx.tracer, art / "smoke_trace.jsonl")
        write_metrics_json(proc_reg, art / "smoke_metrics.json")
        (art / "smoke_metrics.prom").write_text(
            render_prometheus(proc_reg), encoding="utf-8"
        )
        write_manifest(manifest, art / "smoke_manifest.json")
        print(f"artifacts -> {art}")

    serial_ctx.close()
    proc_ctx.close()
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
