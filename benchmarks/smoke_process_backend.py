"""CI benchmark smoke: process backend on a tiny graph, snapshot check.

Builds the EquiTruss index on a small synthetic graph with the serial
backend and with ``--backend process --workers 2`` (forcing fan-out by
zeroing the min-items gate, so the worker pool really runs even though
the graph is tiny), asserts the indexes are bit-identical, records both
runs in ``BENCH_pr4.json``, and validates the snapshot schema. Exits
nonzero on any failure — wired into CI as the ``bench-smoke`` job.

Usage::

    PYTHONPATH=src python benchmarks/smoke_process_backend.py [--out PATH]
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="snapshot path (default benchmarks/results/BENCH_pr4.json)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.bench.snapshot import PerfSnapshot, load_snapshot
    from repro.equitruss.pipeline import build_index
    from repro.graph.csr import CSRGraph
    from repro.graph.generators import erdos_renyi_gnm
    from repro.parallel.context import ExecutionContext
    from repro.parallel.shm import ProcessBackend, process_backend_available

    graph = CSRGraph.from_edgelist(erdos_renyi_gnm(500, 5000, seed=42))
    print(f"smoke graph: {graph.num_vertices} vertices / {graph.num_edges} edges")

    with ExecutionContext(backend="serial") as ctx:
        t0 = time.perf_counter()
        serial = build_index(graph, "afforest", ctx=ctx)
        t_serial = time.perf_counter() - t0

    if not process_backend_available():
        # the smoke job runs on Linux where fork + /dev/shm exist; a
        # missing backend there is a regression, not an environment quirk
        print("FAIL: process backend unavailable", file=sys.stderr)
        return 1

    backend = ProcessBackend(num_workers=args.workers, min_items=0)
    with ExecutionContext(backend=backend, num_workers=args.workers) as ctx:
        t0 = time.perf_counter()
        process = build_index(graph, "afforest", ctx=ctx)
        t_process = time.perf_counter() - t0

    if not (serial.index == process.index):
        print("FAIL: process-backend index differs from serial", file=sys.stderr)
        return 1
    print(f"indexes bit-identical; serial {t_serial:.3f}s, "
          f"process[{args.workers}] {t_process:.3f}s")

    snap = PerfSnapshot("pr4", path=args.out)
    snap.add_run("ci_smoke", "gnm_500_5000", "afforest", "serial", 1,
                 t_serial, mode="measured")
    snap.add_run("ci_smoke", "gnm_500_5000", "afforest", "process", args.workers,
                 t_process, mode="measured", identical_to_serial=True)
    path = snap.write()

    load_snapshot(path)  # schema validation round trip
    print(f"snapshot OK -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
