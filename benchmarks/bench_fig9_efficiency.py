"""Figure 9 — parallel efficiency ε = T_seq / (p · T(p)).

Paper (Orkut): ~70–73% at 2 threads, ~32–39% at 32, 14–17% at 128.
Modeled efficiencies from the instrumented runs; asserted shape:
monotone decay, high efficiency at 2 threads, substantial decay by 128.
"""

from repro.bench import ResultWriter, TextTable, get_workload, run_variant
from repro.bench.paper import FIG9_ORKUT_EFFICIENCY
from repro.parallel import SimulatedMachine
from repro.parallel.simulate import PAPER_THREAD_COUNTS

NETWORKS = ["orkut", "livejournal", "youtube"]
VARIANTS = ["baseline", "coptimal", "afforest"]


def run_fig9():
    writer = ResultWriter("fig9_efficiency")
    machine = SimulatedMachine()
    out = {}
    for name in NETWORKS:
        w = get_workload(name)
        table = TextTable(
            ["variant", *[f"{p}t %" for p in PAPER_THREAD_COUNTS]],
            title=f"Figure 9 ({name}): modeled parallel efficiency (%)"
            + (f" — paper: {FIG9_ORKUT_EFFICIENCY}" if name == "orkut" else ""),
        )
        for v in VARIANTS:
            res = run_variant(w, v, include_prereqs=True)
            curve = machine.scaling_curve(res.trace, PAPER_THREAD_COUNTS)
            eff = curve.efficiencies()
            table.add_row(v, *eff)
            out[(name, v)] = dict(zip(PAPER_THREAD_COUNTS, eff))
        writer.add(table)
    writer.write()
    return out


def test_fig9_efficiency(benchmark, run_once):
    out = run_once(benchmark, run_fig9)
    for (name, v), eff in out.items():
        assert abs(eff[1] - 100.0) < 1e-6
        vals = [eff[p] for p in PAPER_THREAD_COUNTS]
        assert all(b <= a + 1e-9 for a, b in zip(vals, vals[1:])), (name, v)
        assert eff[2] > 45.0, (name, v, "2-thread efficiency should stay high")
        assert eff[128] < 60.0, (name, v, "128-thread efficiency must decay")
