"""Extension — distributed-memory scale-out (communication volume).

The paper positions distributed k-truss [10, 16, 31] as the scale-out
path beyond one node. On the SPMD emulation we measure what a real
cluster run is governed by: communication volume and collective count
of the distributed Support kernel and Pregel-style CC as rank count
grows, for both edge-partitioning strategies.
"""

import numpy as np

from repro.bench import ResultWriter, TextTable
from repro.distributed import (
    distributed_components,
    distributed_triangle_count,
    distributed_truss_decomposition,
)
from repro.graph.datasets import load_dataset
from repro.graph import CSRGraph
from repro.triangles import enumerate_triangles
from repro.truss import truss_decomposition

RANKS = [1, 2, 4, 8]
NETWORK = "amazon"


def run_distributed():
    writer = ResultWriter("distributed_scaling")
    edges = load_dataset(NETWORK)
    graph = CSRGraph.from_edgelist(edges)
    tri = enumerate_triangles(graph)
    tau_ref = truss_decomposition(graph, triangles=tri).trussness
    out = {}
    for strategy in ("hash", "owner"):
        table = TextTable(
            ["ranks", "tri msgs", "tri MB", "cc msgs", "cc MB", "truss MB"],
            title=f"Distributed kernels on {NETWORK} stand-in ({strategy} partition)",
        )
        for ranks in RANKS:
            count, tri_stats = distributed_triangle_count(edges, ranks, strategy=strategy)
            assert count == tri.count
            labels, cc_stats = distributed_components(edges, ranks, strategy=strategy)
            dec, truss_stats = distributed_truss_decomposition(edges, ranks, triangles=tri)
            assert np.array_equal(dec.trussness, tau_ref)
            table.add_row(
                ranks,
                tri_stats.messages,
                tri_stats.bytes / 1e6,
                cc_stats.messages,
                cc_stats.bytes / 1e6,
                truss_stats.bytes / 1e6,
            )
            out[(strategy, ranks)] = (tri_stats.bytes, cc_stats.bytes)
        writer.add(table)
    writer.write()
    return out


def test_distributed_scaling(benchmark, run_once):
    out = run_once(benchmark, run_distributed)
    # communication volume grows with rank count (the scale-out cost)
    for strategy in ("hash", "owner"):
        tri_bytes = [out[(strategy, r)][0] for r in RANKS]
        assert tri_bytes[-1] > tri_bytes[0]
