"""Table 4 — single-thread index-construction time vs the serial original.

Paper: the original (Akbas et al., serial Java) beats all three
parallel-framework implementations at one thread on the small graphs
(parallel scaffolding has overhead), loses ground as graphs grow, and
runs out of memory on Orkut. Our stand-in for the Java original is the
faithful Algorithm 1 BFS (dict-based lookups); the same qualitative
ordering emerges: original wins at small scale, the optimized parallel
formulations win at large scale.

Timed phases are SpNode + SpEdge + SmGraph (the paper's "major
computational phases"); trussness is precomputed for all contenders.
"""

import time

from repro.bench import ResultWriter, TextTable, get_workload, run_variant
from repro.bench.paper import TABLE4_SERIAL_SECONDS
from repro.equitruss import equitruss_serial
from repro.parallel import ExecutionPolicy

NETWORKS = ["amazon", "dblp", "livejournal", "orkut"]
#: the dict-based original is O(pure-Python triangle visits); cap it to
#: the graphs where the paper's original also completed
ORIGINAL_NETWORKS = {"amazon", "dblp", "livejournal"}


def run_table4():
    writer = ResultWriter("table4_serial_compare")
    table = TextTable(
        ["network", "Baseline s", "C-Opt s", "Aff s", "Original s",
         "paper Base", "paper C-Opt", "paper Aff", "paper Orig"],
        title="Table 4: single-thread index construction (SpNode+SpEdge+SmGraph)",
    )
    result = {}
    for name in NETWORKS:
        w = get_workload(name)
        secs = {}
        for variant in ("baseline", "coptimal", "afforest"):
            # min of two runs: single-core container timing is noisy
            secs[variant] = min(
                run_variant(w, variant).breakdown.index_construction_seconds()
                for _ in range(2)
            )
        if name in ORIGINAL_NETWORKS:
            t0 = time.perf_counter()
            equitruss_serial(
                w.graph, decomp=w.decomp, policy=ExecutionPolicy(), lookup="dict"
            )
            secs["original"] = time.perf_counter() - t0
            orig_txt = secs["original"]
        else:
            secs["original"] = None
            orig_txt = "skipped (MLE in paper)"
        ref = TABLE4_SERIAL_SECONDS[name]
        table.add_row(
            name, secs["baseline"], secs["coptimal"], secs["afforest"], orig_txt,
            ref["baseline"], ref["coptimal"], ref["afforest"],
            ref["original"] if ref["original"] is not None else "MLE",
        )
        result[name] = secs
    writer.add(table)
    writer.write()
    return result


def test_table4_serial_compare(benchmark, run_once):
    result = run_once(benchmark, run_table4)
    for name, secs in result.items():
        # optimization ordering holds at one thread (2x tolerance between
        # the two optimized kernels, which land within noise of each other)
        assert secs["afforest"] <= secs["coptimal"] * 2.0
        assert secs["coptimal"] < secs["baseline"]
    # Deviation from the paper, recorded in EXPERIMENTS.md: the paper's
    # serial Java original *beats* its parallel-framework builds at one
    # thread; our pure-Python Algorithm 1 stand-in is slower than the
    # vectorized kernels instead. What transfers: the original has no
    # parallel path at all, while every parallel variant scales.
    for name in ("amazon", "dblp", "livejournal"):
        assert result[name]["original"] is not None
