"""Table 3 — dataset inventory.

Reports the synthetic stand-in sizes next to the paper's SNAP sizes,
verifying the relative ordering (amazon < dblp < youtube < livejournal
< orkut < friendster by edges) that the scaling experiments rely on.
"""

from repro.bench import ResultWriter, TextTable
from repro.bench.paper import TABLE3_DATASETS
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.properties import summarize


def run_table3():
    table = TextTable(
        ["network", "|V| (ours)", "|E| (ours)", "|V| (paper)", "|E| (paper)", "max deg"],
        title="Table 3: dataset stand-ins vs paper SNAP datasets",
    )
    rows = []
    for name in dataset_names():
        edges = load_dataset(name)
        s = summarize(edges)
        pv, pe = TABLE3_DATASETS[name]
        table.add_row(name, s.num_vertices, s.num_edges, pv, pe, s.max_degree)
        rows.append((name, s.num_edges))
    # relative ordering must match the paper's
    sizes = [m for _, m in rows]
    assert sizes == sorted(sizes), "stand-ins must preserve the paper's size order"
    writer = ResultWriter("table3_datasets")
    writer.add(table)
    writer.write()
    return sizes


def test_table3_datasets(benchmark, run_once):
    sizes = run_once(benchmark, run_table3)
    assert len(sizes) == 6
