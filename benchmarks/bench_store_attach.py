"""Store attach vs rebuild: the latency the persistent store buys.

Measures, on a generated graph:

* **rebuild** — ``build_index`` + the union-find component sweep + an
  engine bind: what a serving process pays without a store;
* **write** — the atomic store write (amortized once per rebuild);
* **warm attach** — ``attach_store`` + engine with the file in page
  cache: the steady-state fleet restart cost;
* **cold attach** — same after asking the kernel to drop the file's
  cached pages (``posix_fadvise DONTNEED``, best-effort);
* **concurrent attach** — N forked processes attaching the same file
  at once, sharing one page-cache copy.

Every attach is checked bit-identical to the in-memory build, and the
first-query answers are compared against the BFS reference. Results
land in ``BENCH_pr7.json`` (schema-validated, manifest attached) with
the headline ``pr7.attach_speedup_vs_rebuild`` derived ratio; the
acceptance floor (attach >= 20x faster than rebuild) is asserted on
full-size runs, reported-only under ``--smoke``.

Usage::

    PYTHONPATH=src python benchmarks/bench_store_attach.py \
        [--smoke] [--out PATH] [--artifacts-dir DIR] \
        [--vertices N] [--edges M] [--procs K] [--repeat R]
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

#: Full-run acceptance floor: attach must beat rebuild by this factor.
SPEEDUP_FLOOR = 20.0


def _drop_page_cache(path: Path) -> bool:
    """Ask the kernel to evict the file's cached pages (best-effort)."""
    if not hasattr(os, "posix_fadvise"):  # pragma: no cover - non-POSIX
        return False
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
        os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
        return True
    except OSError:  # pragma: no cover - fs without fadvise support
        return False
    finally:
        os.close(fd)


def _time_rebuild(graph, variant, repeat):
    """Serving stack from scratch: build + sweep + engine bind."""
    from repro.equitruss.pipeline import build_index
    from repro.serve.components import LevelComponents
    from repro.serve.engine import QueryEngine

    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = build_index(graph, variant)
        components = LevelComponents(result.index)
        QueryEngine(result.index, components=components)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _time_attach(path, expect_index, *, cold, repeat):
    """Attach + engine bind; returns (best seconds, queries-per-attach)."""
    import numpy as np

    from repro.store import attach_store

    best = float("inf")
    for _ in range(repeat):
        if cold and not _drop_page_cache(Path(path)):
            return None
        t0 = time.perf_counter()
        store = attach_store(path)
        store.engine()
        elapsed = time.perf_counter() - t0
        if not np.array_equal(store.index.trussness, expect_index.trussness):
            raise SystemExit("FAIL: attached index differs from the build")
        store.close()
        best = min(best, elapsed)
    return best


def _concurrent_attach(path, procs):
    """Fork ``procs`` children that attach simultaneously; max seconds."""
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        return None
    import multiprocessing as mp

    ctx = mp.get_context("fork")

    def _child(p, q):
        from repro.store import attach_store

        t0 = time.perf_counter()
        store = attach_store(p)
        store.engine()
        q.put(time.perf_counter() - t0)
        store.close()

    queue = ctx.Queue()
    workers = [
        ctx.Process(target=_child, args=(path, queue)) for _ in range(procs)
    ]
    barrier_t0 = time.perf_counter()
    for w in workers:
        w.start()
    times = [queue.get(timeout=120) for _ in workers]
    for w in workers:
        w.join(timeout=120)
    wall = time.perf_counter() - barrier_t0
    if any(w.exitcode != 0 for w in workers):
        raise SystemExit("FAIL: a concurrent attach process died")
    return max(times), wall


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized graph; speedup floor reported, not asserted")
    parser.add_argument("--out", default=None,
                        help="snapshot path (default benchmarks/results/BENCH_pr7.json)")
    parser.add_argument("--artifacts-dir", default=None, metavar="DIR")
    parser.add_argument("--vertices", type=int, default=None)
    parser.add_argument("--edges", type=int, default=None)
    parser.add_argument("--variant", default="afforest")
    parser.add_argument("--procs", type=int, default=4,
                        help="concurrent-attach process count")
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)

    import numpy as np

    from repro.bench.snapshot import PerfSnapshot, load_snapshot
    from repro.graph.csr import CSRGraph
    from repro.graph.generators import erdos_renyi_gnm
    from repro.obs.manifest import collect_manifest
    from repro.store import attach_store
    from repro.store.reader import verify_store
    from repro.store.writer import write_store

    n = args.vertices or (2_000 if args.smoke else 60_000)
    m = args.edges or (20_000 if args.smoke else 900_000)
    dataset = f"gnm_{n}_{m}"
    graph = CSRGraph.from_edgelist(erdos_renyi_gnm(n, m, seed=42))
    print(f"graph: {graph.num_vertices} vertices / {graph.num_edges} edges")

    t_rebuild, result = _time_rebuild(graph, args.variant, args.repeat)
    print(f"rebuild (build + sweep + engine): {t_rebuild:.4f}s")

    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    store_path = workdir / f"{dataset}.eqtsidx"
    from repro.serve.components import LevelComponents

    components = LevelComponents(result.index)
    t0 = time.perf_counter()
    write_store(result.index, store_path, components=components,
                dataset=dataset)
    t_write = time.perf_counter() - t0
    print(f"store write: {t_write:.4f}s "
          f"({store_path.stat().st_size / 1e6:.1f} MB)")
    verify_store(store_path)

    # ---- bit-identical + reference answers through the attached engine
    from repro.community import search_communities

    with attach_store(store_path, verify=True) as store:
        for field in ("trussness", "edge_supernode", "supernode_trussness",
                      "supernode_indptr", "supernode_edges", "superedges"):
            if not np.array_equal(getattr(store.index, field),
                                  getattr(result.index, field)):
                print(f"FAIL: section {field} not bit-identical", file=sys.stderr)
                return 1
        engine = store.engine()
        for q in range(0, graph.num_vertices, max(1, graph.num_vertices // 16)):
            expected = search_communities(result.index, q, 3)
            got = engine.query(q, 3)
            assert len(expected) == len(got), q
            for e, c in zip(expected, got):
                assert np.array_equal(e.edge_ids, c.edge_ids), q
    print("attached index bit-identical; engine matches BFS reference")

    t_warm = _time_attach(store_path, result.index, cold=False,
                          repeat=args.repeat)
    print(f"warm attach + engine: {t_warm * 1e3:.2f} ms")
    t_cold = _time_attach(store_path, result.index, cold=True,
                          repeat=args.repeat)
    if t_cold is not None:
        print(f"cold attach + engine: {t_cold * 1e3:.2f} ms")

    conc = _concurrent_attach(str(store_path), args.procs)
    if conc is not None:
        t_conc_max, t_conc_wall = conc
        print(f"concurrent attach x{args.procs}: slowest {t_conc_max * 1e3:.2f} ms, "
              f"wall {t_conc_wall * 1e3:.2f} ms")

    speedup = t_rebuild / t_warm if t_warm > 0 else float("inf")
    print(f"attach speedup vs rebuild: {speedup:.1f}x "
          f"(floor {SPEEDUP_FLOOR:.0f}x, "
          f"{'advisory' if args.smoke else 'enforced'})")

    # ---- snapshot
    snap = PerfSnapshot("pr7", path=args.out)
    exp = "store_attach_smoke" if args.smoke else "store_attach"
    snap.add_run(exp, dataset, args.variant, "serial", 1, t_rebuild,
                 mode="measured", kernels={"Rebuild": t_rebuild},
                 store_bytes=store_path.stat().st_size)
    snap.add_run(exp, dataset, args.variant, "mmap_warm", 1, t_warm,
                 mode="measured", kernels={"Attach": t_warm})
    if t_cold is not None:
        snap.add_run(exp, dataset, args.variant, "mmap_cold", 1, t_cold,
                     mode="measured", kernels={"Attach": t_cold})
    if conc is not None:
        snap.add_run(exp, dataset, args.variant, "mmap_concurrent",
                     args.procs, t_conc_max, mode="measured",
                     wall_seconds=t_conc_wall)
    snap.add_run(exp, dataset, args.variant, "store_write", 1, t_write,
                 mode="measured")
    snap.derive("pr7.attach_speedup_vs_rebuild", round(speedup, 2))
    snap.derive("pr7.attach_bit_identical", True)
    snap.derive("pr7.attach_warm_ms", round(t_warm * 1e3, 3))
    if t_cold is not None:
        snap.derive("pr7.attach_cold_ms", round(t_cold * 1e3, 3))
    snap.attach_manifest(collect_manifest(graph=graph, dataset=dataset,
                                          extra={"experiment": exp}))
    path = snap.write()
    load_snapshot(path)  # schema round trip
    print(f"snapshot OK -> {path}")

    if args.artifacts_dir:
        art = Path(args.artifacts_dir)
        art.mkdir(parents=True, exist_ok=True)
        shutil.copy2(store_path, art / store_path.name)
        shutil.copy2(path, art / path.name)
        print(f"artifacts -> {art}")

    shutil.rmtree(workdir, ignore_errors=True)

    if not args.smoke and speedup < SPEEDUP_FLOOR:
        print(f"FAIL: attach speedup {speedup:.1f}x below the "
              f"{SPEEDUP_FLOOR:.0f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
