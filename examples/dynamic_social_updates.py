#!/usr/bin/env python
"""An evolving social network: keep the index fresh under edge updates.

Social graphs change continuously; rebuilding the EquiTruss index from
scratch on every change defeats its purpose. This demo streams
friendship insertions and removals through :class:`DynamicEquiTruss`,
answers community queries between updates, and reports how local each
maintenance step was (the affected-region fraction).

Run:  python examples/dynamic_social_updates.py [--steps 6] [--seed 11]
"""

import argparse

import numpy as np

from repro.community import search_communities
from repro.equitruss import DynamicEquiTruss, build_index
from repro.graph import CSRGraph, build_edgelist
from repro.graph.generators import planted_community_graph, rmat_graph


def make_network(seed: int) -> CSRGraph:
    groups, _ = planted_community_graph(8, 6, 9, p_intra=0.9, overlap=1, seed=seed)
    background = rmat_graph(10, 2, seed=seed + 1)
    n = max(groups.num_vertices, background.num_vertices)
    src = np.concatenate([groups.u, background.u])
    dst = np.concatenate([groups.v, background.v])
    return CSRGraph.from_edgelist(build_edgelist(src, dst, num_vertices=n))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    graph = make_network(args.seed)
    dyn = DynamicEquiTruss(graph)
    print(f"initial network: {graph.num_vertices} users, {graph.num_edges} ties; "
          f"index: {dyn.index.num_supernodes} supernodes\n")

    rng = np.random.default_rng(args.seed)
    for step in range(args.steps):
        if step % 2 == 0:
            us = rng.integers(0, dyn.graph.num_vertices, size=3)
            vs = rng.integers(0, dyn.graph.num_vertices, size=3)
            keep = us != vs
            stats = dyn.insert_edges(us[keep], vs[keep])
            action = f"insert {stats.num_inserted} ties"
        else:
            eids = rng.integers(0, dyn.graph.num_edges, size=2)
            stats = dyn.remove_edges(
                dyn.graph.edges.u[eids], dyn.graph.edges.v[eids]
            )
            action = f"remove {stats.num_removed} ties"
        print(f"step {step}: {action:>18} | affected "
              f"{stats.affected_edges:5d} edges ({100 * stats.affected_fraction:5.1f}%) "
              f"| index: {dyn.index.num_supernodes} supernodes, "
              f"{dyn.index.num_superedges} superedges")
        # queries stay correct between updates
        q = int(rng.integers(0, dyn.graph.num_vertices))
        comms = search_communities(dyn.index, q, 4)
        print(f"          query user {q} at k=4 -> {len(comms)} communit"
              f"{'y' if len(comms) == 1 else 'ies'}")

    ref = build_index(dyn.graph, "afforest").index
    assert dyn.index == ref
    print("\nfinal maintained index verified equal to a from-scratch rebuild")


if __name__ == "__main__":
    main()
