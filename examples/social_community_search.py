#!/usr/bin/env python
"""Goal-oriented community search in a social network.

The paper's motivating scenario (§1): a user of a social network wants
*their own* communities — the overlapping groups they participate in —
not a global partition of everyone. We synthesize a social network with
planted overlapping friend groups over a power-law background, build
the EquiTruss index once, then answer per-user community queries at
several cohesion levels and report quality metrics.

Run:  python examples/social_community_search.py [--users 5] [--seed 7]
"""

import argparse

import numpy as np

from repro.community import (
    community_conductance,
    community_density,
    membership_counts,
    search_communities,
)
from repro.community.search import query_candidate_ks
from repro.equitruss import build_index
from repro.graph import CSRGraph, build_edgelist
from repro.graph.generators import planted_community_graph, rmat_graph


def make_social_network(seed: int) -> tuple[CSRGraph, list[np.ndarray]]:
    """Overlapping friend groups + power-law acquaintance background."""
    # overlap=1: consecutive friend groups share one member, so the
    # shared user belongs to two distinct k-truss communities (sharing
    # two members would fuse the groups through the shared edge's
    # triangles).
    groups, communities = planted_community_graph(
        num_communities=12, size_lo=6, size_hi=10,
        p_intra=0.9, overlap=1, seed=seed,
    )
    # sparse acquaintance background: dense enough to connect the graph,
    # sparse enough that it forms no 4-truss of its own
    background = rmat_graph(11, 2, seed=seed + 1)
    n = max(groups.num_vertices, background.num_vertices)
    src = np.concatenate([groups.u, background.u])
    dst = np.concatenate([groups.v, background.v])
    return CSRGraph.from_edgelist(build_edgelist(src, dst, num_vertices=n)), communities


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=5, help="number of query users")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    graph, planted = make_social_network(args.seed)
    print(f"social network: {graph.num_vertices} users, {graph.num_edges} ties, "
          f"{len(planted)} planted friend groups (overlap 3)")

    result = build_index(graph, variant="afforest")
    index = result.index
    print(f"index built in {result.seconds:.3f}s: "
          f"{index.num_supernodes} supernodes, {index.num_superedges} superedges\n")

    rng = np.random.default_rng(args.seed)
    # query users that sit in group overlaps — they belong to 2+ groups
    overlap_users = [int(np.intersect1d(a, b)[0]) for a, b in zip(planted, planted[1:])]
    users = rng.choice(overlap_users, size=min(args.users, len(overlap_users)), replace=False)

    k = 5  # cohesion level: every pair of friends shares >= 3 mutual friends
    for q in users.tolist():
        if query_candidate_ks(index, q).size == 0:
            print(f"user {q}: no cohesive communities")
            continue
        comms = search_communities(index, q, k)
        print(f"user {q} at k={k}: member of {len(comms)} overlapping communit"
              f"{'y' if len(comms) == 1 else 'ies'}")
        for i, c in enumerate(comms):
            print(
                f"    [{i}] {c.num_vertices:3d} users, density "
                f"{community_density(c):.2f}, conductance {community_conductance(c):.2f}"
            )
        counts = membership_counts(comms, graph.num_vertices)
        multi = int((counts >= 2).sum())
        print(f"    {multi} users belong to 2+ of these communities (overlapping membership)")


if __name__ == "__main__":
    main()
