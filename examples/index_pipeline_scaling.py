#!/usr/bin/env python
"""The full paper pipeline on a large graph, with modeled strong scaling.

Builds the EquiTruss index on one of the Table-3 dataset stand-ins with
all three parallel variants, prints the per-kernel breakdown (Figure 4),
and applies the Perlmutter-like machine model to the instrumented run to
project the 1–128-thread strong-scaling curves (Figure 6) and parallel
efficiencies (Figure 9).

Run:  python examples/index_pipeline_scaling.py [--dataset livejournal]
"""

import argparse

from repro.bench import TextTable, get_workload, line_chart, run_variant
from repro.equitruss.kernels import KERNELS
from repro.parallel import MachineProfile, SimulatedMachine
from repro.parallel.simulate import PAPER_THREAD_COUNTS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="livejournal",
                        choices=["amazon", "dblp", "youtube", "livejournal", "orkut"])
    args = parser.parse_args()

    w = get_workload(args.dataset)
    print(f"{args.dataset} stand-in: {w.num_vertices} vertices, {w.num_edges} edges, "
          f"{w.triangles.count} triangles, kmax={w.decomp.kmax}\n")

    machine = SimulatedMachine(MachineProfile())
    results = {}
    table = TextTable(["variant", "total s", *[f"{k} s" for k in KERNELS]],
                      title="Per-kernel breakdown (single thread, measured)")
    for variant in ("baseline", "coptimal", "afforest"):
        res = run_variant(w, variant, include_prereqs=True)
        results[variant] = res
        bd = res.breakdown.seconds
        table.add_row(variant, res.seconds, *[bd.get(k, 0.0) for k in KERNELS])
    print(table.render(), "\n")

    series = {
        v: machine.scaling_curve(r.trace, PAPER_THREAD_COUNTS).seconds
        for v, r in results.items()
    }
    print(line_chart(list(PAPER_THREAD_COUNTS), series,
                     title="Modeled strong scaling T(p) on a 128-core node (log y)",
                     logy=True), "\n")

    eff_table = TextTable(["variant", *[f"{p}t" for p in PAPER_THREAD_COUNTS]],
                          title="Modeled parallel efficiency (%)")
    for v, r in results.items():
        curve = machine.scaling_curve(r.trace, PAPER_THREAD_COUNTS)
        eff_table.add_row(v, *[f"{e:.0f}" for e in curve.efficiencies()])
    print(eff_table.render())

    sp = {v: series[v][0] / series[v][-1] for v in series}
    print("\n128-thread modeled speedups:",
          ", ".join(f"{v}={s:.1f}x" for v, s in sp.items()),
          f"(paper band: 19-55x on Perlmutter for the large graphs)")


if __name__ == "__main__":
    main()
