#!/usr/bin/env python
"""Detecting protein complexes in a PPI-style interaction network.

Second motivating domain from the paper's introduction: "clustering
similar kinds of proteins and recognizing the functionality of unknown
proteins". Protein complexes appear as dense, overlapping clusters in
protein–protein interaction (PPI) networks — a shared protein can
participate in multiple complexes. We synthesize such a network
(near-clique complexes with shared subunits + noisy interactions),
detect complexes as k-truss communities of a *bait* protein, and score
recovery against the planted ground truth.

Run:  python examples/protein_complex_detection.py [--seed 3]
"""

import argparse

import numpy as np

from repro.community import online_communities, search_communities
from repro.equitruss import build_index
from repro.graph import CSRGraph, build_edgelist
from repro.graph.generators import erdos_renyi_gnm, planted_community_graph


def make_ppi_network(seed: int) -> tuple[CSRGraph, list[np.ndarray]]:
    # overlap=1: complexes share single subunit proteins (vertex overlap).
    # Sharing an *edge* (two proteins) would triangle-connect the
    # complexes into one k-truss community — the same reason the paper's
    # k-truss communities overlap on vertices, not edges.
    complexes, members = planted_community_graph(
        num_communities=8, size_lo=6, size_hi=9,
        p_intra=0.9, overlap=1, seed=seed,
    )
    # spurious interactions (experimental noise)
    noise = erdos_renyi_gnm(complexes.num_vertices, complexes.num_edges // 6, seed=seed + 1)
    src = np.concatenate([complexes.u, noise.u])
    dst = np.concatenate([complexes.v, noise.v])
    graph = CSRGraph.from_edgelist(
        build_edgelist(src, dst, num_vertices=complexes.num_vertices)
    )
    return graph, members


def jaccard(a: set[int], b: set[int]) -> float:
    return len(a & b) / len(a | b)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--k", type=int, default=4, help="cohesion level")
    args = parser.parse_args()

    graph, complexes = make_ppi_network(args.seed)
    print(f"PPI network: {graph.num_vertices} proteins, {graph.num_edges} interactions, "
          f"{len(complexes)} planted complexes")

    index = build_index(graph, variant="afforest").index
    print(f"index: {index.num_supernodes} supernodes, {index.num_superedges} superedges\n")

    recovered = 0
    for ci, complex_members in enumerate(complexes):
        bait = int(complex_members[len(complex_members) // 2])
        comms = search_communities(index, bait, args.k)
        truth = set(complex_members.tolist())
        best = max((jaccard(set(c.vertices().tolist()), truth) for c in comms), default=0.0)
        status = "recovered" if best >= 0.6 else "missed"
        recovered += best >= 0.6
        print(f"complex {ci}: bait protein {bait:4d} -> "
              f"{len(comms)} candidate communit{'y' if len(comms) == 1 else 'ies'}, "
              f"best Jaccard {best:.2f} ({status})")

    print(f"\nrecovered {recovered}/{len(complexes)} complexes at k={args.k}")

    # cross-check one query against the index-free ground truth engine
    bait = int(complexes[0][0])
    a = {c.edge_tuples() for c in search_communities(index, bait, args.k)}
    b = {c.edge_tuples() for c in online_communities(graph, bait, args.k)}
    assert a == b, "indexed and online engines must agree"
    print("indexed result verified against index-free ground-truth search")


if __name__ == "__main__":
    main()
