#!/usr/bin/env python
"""Distributed scale-out of the pipeline's heavy kernels (SPMD emulation).

The paper's shared-memory algorithm tops out at one node; its citations
[10, 16, 31, 50] sketch the distributed-memory continuation. This demo
runs the two kernels that dominate the pipeline — Support (triangle
counting) and connectivity — as shared-nothing SPMD programs over 1..8
emulated ranks, verifies them against the single-node kernels, and
reports the communication volume a real cluster would pay.

Run:  python examples/distributed_scaleout.py [--dataset amazon]
"""

import argparse

from repro.bench import TextTable
from repro.distributed import (
    distributed_components,
    distributed_support,
    distributed_triangle_count,
)
from repro.graph.datasets import load_dataset
from repro.graph import CSRGraph
from repro.triangles import enumerate_triangles

import numpy as np


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="amazon",
                        choices=["amazon", "dblp", "youtube"])
    args = parser.parse_args()

    edges = load_dataset(args.dataset)
    graph = CSRGraph.from_edgelist(edges)
    tri = enumerate_triangles(graph)
    print(f"{args.dataset} stand-in: {edges.num_vertices} vertices, "
          f"{edges.num_edges} edges, {tri.count} triangles\n")

    table = TextTable(
        ["ranks", "triangles ok", "support ok", "cc ok",
         "tri comm MB", "cc comm MB"],
        title="Shared-nothing kernels on the SPMD emulator",
    )
    import scipy.sparse.csgraph as csgraph

    ncomp_ref, _ = csgraph.connected_components(graph.to_scipy(), directed=False)
    sup_ref = tri.support()
    for ranks in (1, 2, 4, 8):
        count, tri_stats = distributed_triangle_count(edges, ranks)
        sup, _ = distributed_support(edges, ranks)
        labels, cc_stats = distributed_components(edges, ranks)
        table.add_row(
            ranks,
            count == tri.count,
            bool(np.array_equal(sup, sup_ref)),
            len(set(labels.tolist())) == ncomp_ref,
            tri_stats.bytes / 1e6,
            cc_stats.bytes / 1e6,
        )
    print(table.render())
    print("\nCommunication volume grows with rank count — the scale-out cost a"
          " real MPI run pays; computation per rank shrinks proportionally.")


if __name__ == "__main__":
    main()
