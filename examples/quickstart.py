#!/usr/bin/env python
"""Quickstart: build an EquiTruss index and query local communities.

Uses the paper's own 11-vertex example graph (Figure 3a), so the output
can be checked against the published figure: five supernodes, six
superedges, and the k-truss communities of any query vertex retrieved
straight from the summary graph.

Run:  python examples/quickstart.py
"""

from repro.community import search_communities
from repro.community.search import query_candidate_ks
from repro.equitruss import build_index
from repro.graph import CSRGraph
from repro.graph.generators import paper_example_graph


def main() -> None:
    # 1. Load a graph (any canonical edge list works; see repro.graph.io
    #    for SNAP text / npz loaders and repro.graph.generators for
    #    synthetic models).
    graph = CSRGraph.from_edgelist(paper_example_graph())
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Build the index. One call runs the full pipeline: triangle
    #    enumeration -> truss decomposition -> parallel supernode CC ->
    #    superedges -> summary graph. Variants: baseline | coptimal | afforest.
    result = build_index(graph, variant="afforest")
    index = result.index
    print(f"index: {index.num_supernodes} supernodes, {index.num_superedges} superedges")
    for name, seconds in result.breakdown.seconds.items():
        print(f"  kernel {name:<12} {seconds * 1e3:8.2f} ms")

    # 3. Query: all k-truss communities of a vertex, straight from the
    #    summary graph (no truss recomputation).
    q = 6
    for k in query_candidate_ks(index, q).tolist():
        communities = search_communities(index, q, k)
        print(f"\nvertex {q}, k={k}: {len(communities)} community(ies)")
        for i, c in enumerate(communities):
            print(f"  community {i}: {c.num_vertices} vertices {c.vertices().tolist()}")

    # 4. Persist and reload.
    index.save("/tmp/equitruss_quickstart.npz")
    from repro.equitruss import EquiTrussIndex

    reloaded = EquiTrussIndex.load("/tmp/equitruss_quickstart.npz")
    assert reloaded == index
    print("\nindex round-tripped through /tmp/equitruss_quickstart.npz")


if __name__ == "__main__":
    main()
