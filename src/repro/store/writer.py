"""Atomic store writer: tmpfile → fsync → rename swap.

``write_store`` serializes a built :class:`~repro.equitruss.index.EquiTrussIndex`
(plus, optionally, the precomputed
:class:`~repro.serve.components.LevelComponents` serving tables) into
the :mod:`repro.store.format` container. The write is crash-atomic:

1. the whole container is written to a same-directory temporary file;
2. the file (and then its directory entry) are ``fsync``\\ ed;
3. ``os.replace`` swaps it over the destination in one rename.

A writer killed at any point leaves either the old readable generation
or a stray ``*.tmp-*`` file next to it — never a torn store. Readers
attached to the old file keep their mapping (POSIX keeps the unlinked
inode alive) and detect the swap through the generation protocol
(:meth:`repro.store.reader.AttachedStore.refresh`).
"""

from __future__ import annotations

import os
import secrets
from pathlib import Path

import numpy as np

from repro.equitruss.index import EquiTrussIndex
from repro.obs import metrics
from repro.store.format import (
    COMPONENT_SECTIONS,
    EDGE_ORDER_SECTION,
    REQUIRED_SECTIONS,
    build_header,
)

#: Test-only fault-injection hook: called as ``hook(section_name)``
#: after each section's bytes hit the tmp file. The crash-injection
#: suite uses it to die mid-write and prove the swap is atomic.
_write_interceptor = None


def _fsync_dir(path: Path) -> None:
    """Durably record the rename in the parent directory."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX directory handles
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def store_sections(
    index: EquiTrussIndex, components=None, *, edge_order: bool = True
) -> dict[str, np.ndarray]:
    """The section name → array mapping of one index (+ serving tables).

    ``edge_order=True`` (default) additionally persists the fused Init's
    sorted-edge artifact (:data:`EDGE_ORDER_SECTION`) so rebuilds on the
    attached dataset skip the build sort; it is derived from the CSR
    without sorting when the graph did not cache it.
    """
    graph = index.graph
    sections: dict[str, np.ndarray] = {
        "graph.u": graph.edges.u,
        "graph.v": graph.edges.v,
        "graph.indptr": graph.indptr,
        "graph.indices": graph.indices,
        "graph.edge_ids": graph.edge_ids,
        "index.trussness": index.trussness,
        "index.edge_supernode": index.edge_supernode,
        "index.supernode_trussness": index.supernode_trussness,
        "index.supernode_indptr": index.supernode_indptr,
        "index.supernode_edges": index.supernode_edges,
        "index.superedges": index.superedges,
    }
    assert tuple(sections) == REQUIRED_SECTIONS
    if components is not None:
        levels, labels = components.to_tables()
        sections[COMPONENT_SECTIONS[0]] = levels
        sections[COMPONENT_SECTIONS[1]] = labels
    if edge_order:
        sections[EDGE_ORDER_SECTION] = graph.edge_sort_order()
    return sections


def write_store(
    index: EquiTrussIndex,
    path,
    *,
    components=None,
    generation: int = 1,
    dataset: str | None = None,
    manifest: bool | dict = True,
    ctx=None,
) -> Path:
    """Persist ``index`` to ``path`` with an atomic rename swap.

    ``components`` (a :class:`~repro.serve.components.LevelComponents`)
    adds the precomputed serving tables so attach can skip the
    union-find sweep. ``generation`` seeds the journal protocol's epoch
    counter; a rebuild that swaps over a live store must bump it past
    every journal entry it absorbed. ``manifest=True`` embeds a
    provenance manifest (:func:`repro.obs.manifest.collect_manifest`)
    in the header; pass a dict to embed a caller-built one, or
    ``False`` to omit.
    """
    from repro.obs.manifest import collect_manifest, dataset_fingerprint

    path = Path(path)
    graph = index.graph
    sections = store_sections(index, components)
    if manifest is True:
        manifest_doc = collect_manifest(
            ctx=ctx, graph=graph, dataset=dataset, extra={"artifact": "store"}
        )
    elif manifest is False:
        manifest_doc = None
    else:
        manifest_doc = manifest
    header, plan = build_header(
        sections=sections,
        dataset=dataset_fingerprint(graph, name=dataset),
        generation=generation,
        graph_dtype=graph.index_dtype.str,
        num_vertices=graph.num_vertices,
        manifest=manifest_doc,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}-{secrets.token_hex(4)}")
    total = len(header)
    try:
        with open(tmp, "wb") as f:
            f.write(header)
            pos = len(header)
            for name, arr, rel in plan:
                target = len(header) + rel
                if target > pos:
                    f.write(b"\x00" * (target - pos))
                    pos = target
                if arr.size:
                    f.write(np.ascontiguousarray(arr).data)
                    pos += arr.nbytes
                if _write_interceptor is not None:
                    _write_interceptor(name)
            total = pos
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        # a failed write must not leave the tmp file behind; the swap
        # either happened (tmp is gone) or never will
        try:
            tmp.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - tmp dir vanished underneath us
            pass
    metrics.inc("repro.store.writes")
    metrics.set_gauge("repro.store.write_bytes", total)
    metrics.set_gauge("repro.store.generation", int(generation))
    return path
