"""Append-only update journal: how attached readers track a live index.

The store file is immutable between rebuilds; edge updates land in a
sidecar JSONL journal (``<store>.journal`` by default) instead:

* line 0 is an epoch header ``{"schema": "repro.journal", "base": G}``
  binding the journal to the store generation ``G`` it extends;
* every subsequent line is one update batch
  ``{"generation": G+i, "op": "insert"|"remove", "u": [...], "v": [...]}``
  with strictly increasing generation numbers.

Writers (:class:`StoreJournal`) are fed by
:meth:`~repro.equitruss.dynamic.DynamicEquiTruss.publish_to`: every
``insert_edges``/``remove_edges`` batch is appended and fsynced before
the update returns. Readers (:class:`JournalReader`) poll for complete
new lines and replay them; a journal whose epoch no longer matches the
reader's attached generation means the store was swapped underneath —
:class:`~repro.errors.StaleStoreError` — and the reader must re-attach
(:meth:`~repro.store.reader.AttachedStore.refresh` does both ends of
this automatically).

After a rebuild-and-swap the writer calls :meth:`StoreJournal.reset`
with the new base generation, truncating the journal to a fresh epoch
header in one atomic rename (same tmpfile+fsync+replace protocol as
the store itself).
"""

from __future__ import annotations

import json
import os
import secrets
import time
from pathlib import Path

import numpy as np

from repro.errors import CorruptStoreError, StaleStoreError, StoreError

JOURNAL_SCHEMA = "repro.journal"
JOURNAL_SCHEMA_VERSION = 1

#: Update batch operations a journal line may carry.
JOURNAL_OPS = ("insert", "remove")


def default_journal_path(store_path) -> Path:
    """The sidecar journal of a store file: ``<store>.journal``."""
    store_path = Path(store_path)
    return store_path.with_name(store_path.name + ".journal")


class JournalEntry:
    """One decoded update batch."""

    __slots__ = ("generation", "op", "u", "v", "unix")

    def __init__(self, generation: int, op: str, u, v, unix: float = 0.0) -> None:
        if op not in JOURNAL_OPS:
            raise CorruptStoreError(f"unknown journal op {op!r}")
        self.generation = int(generation)
        self.op = op
        self.u = np.asarray(u, dtype=np.int64)
        self.v = np.asarray(v, dtype=np.int64)
        self.unix = unix

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JournalEntry(gen={self.generation}, op={self.op}, "
            f"edges={self.u.size})"
        )


def _epoch_line(base_generation: int) -> str:
    return json.dumps(
        {
            "schema": JOURNAL_SCHEMA,
            "version": JOURNAL_SCHEMA_VERSION,
            "base": int(base_generation),
            "unix": time.time(),
        },
        sort_keys=True,
    )


def _parse_epoch(line: str, path) -> int:
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise CorruptStoreError(f"{path}: unreadable journal header: {exc}") from exc
    if (
        not isinstance(doc, dict)
        or doc.get("schema") != JOURNAL_SCHEMA
        or not isinstance(doc.get("base"), int)
    ):
        raise CorruptStoreError(f"{path}: not a {JOURNAL_SCHEMA} file")
    if doc.get("version") != JOURNAL_SCHEMA_VERSION:
        raise CorruptStoreError(
            f"{path}: unsupported journal version {doc.get('version')!r}"
        )
    return int(doc["base"])


class StoreJournal:
    """Writer half: append update batches with generation numbers.

    ``base_generation`` must equal the generation of the store file the
    journal extends; an existing journal with a different epoch is a
    protocol error (the caller should :meth:`reset` after a swap).
    """

    def __init__(self, path, base_generation: int) -> None:
        self.path = Path(path)
        self.base_generation = int(base_generation)
        self.generation = self.base_generation
        if self.path.exists():
            base, entries = _scan(self.path)
            if base != self.base_generation:
                raise StaleStoreError(
                    f"{self.path}: journal epoch {base} does not extend store "
                    f"generation {self.base_generation}; reset() after a swap"
                )
            self.generation = entries[-1].generation if entries else base
        else:
            self._write_epoch()

    @classmethod
    def for_store(cls, store_path, path=None) -> "StoreJournal":
        """Journal bound to a store file's current on-disk generation."""
        from repro.store.reader import read_header

        base = int(read_header(store_path)["generation"])
        return cls(path or default_journal_path(store_path), base)

    # ------------------------------------------------------------------
    def _write_epoch(self) -> None:
        tmp = self.path.with_name(
            f"{self.path.name}.tmp-{os.getpid()}-{secrets.token_hex(4)}"
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                f.write(_epoch_line(self.base_generation) + "\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)

    def append(self, op: str, us, vs) -> int:
        """Durably append one update batch; returns its generation."""
        if op not in JOURNAL_OPS:
            raise StoreError(f"journal op must be one of {JOURNAL_OPS}, got {op!r}")
        us = np.asarray(us, dtype=np.int64).ravel()
        vs = np.asarray(vs, dtype=np.int64).ravel()
        if us.shape != vs.shape:
            raise StoreError("journal endpoint arrays must align")
        self.generation += 1
        line = json.dumps(
            {
                "generation": self.generation,
                "op": op,
                "u": us.tolist(),
                "v": vs.tolist(),
                "unix": time.time(),
            },
            sort_keys=True,
        )
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())
        return self.generation

    def reset(self, base_generation: int) -> None:
        """Start a fresh epoch after the store file was swapped."""
        self.base_generation = int(base_generation)
        self.generation = self.base_generation
        self._write_epoch()

    def __len__(self) -> int:
        return self.generation - self.base_generation


class JournalReader:
    """Reader half: poll a journal for batches newer than what's applied.

    ``base_generation`` is the generation of the store the reader
    attached; ``seen_generation`` the newest batch already applied
    (defaults to the base). :meth:`poll` returns only complete,
    newer-than-seen entries — a partially flushed trailing line is left
    for the next poll, so concurrent appends never tear a read.
    """

    def __init__(
        self, path, base_generation: int, seen_generation: int | None = None
    ) -> None:
        self.path = Path(path)
        self.base_generation = int(base_generation)
        self.seen_generation = int(
            seen_generation if seen_generation is not None else base_generation
        )

    def _entries(self) -> list[JournalEntry]:
        base, entries = _scan(self.path)
        if base != self.base_generation:
            raise StaleStoreError(
                f"{self.path}: journal epoch {base} does not extend attached "
                f"generation {self.base_generation}; re-attach the store"
            )
        return entries

    def pending(self) -> int:
        """How many unapplied batches the journal currently holds."""
        if not self.path.exists():
            return 0
        return sum(
            1 for e in self._entries() if e.generation > self.seen_generation
        )

    def poll(self) -> list[JournalEntry]:
        """New complete entries since the last poll (marks them seen)."""
        if not self.path.exists():
            return []
        fresh = [
            e for e in self._entries() if e.generation > self.seen_generation
        ]
        if fresh:
            self.seen_generation = fresh[-1].generation
        return fresh


def _scan(path: Path) -> tuple[int, list[JournalEntry]]:
    """Read a journal: (epoch base, complete entries in order)."""
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise StoreError(f"cannot read journal {path}: {exc}") from exc
    if not raw:
        raise CorruptStoreError(f"{path}: empty journal (missing epoch header)")
    complete = raw.endswith("\n")
    lines = raw.splitlines()
    if not complete:
        lines = lines[:-1]  # a writer is mid-append; pick it up next poll
        if not lines:
            raise CorruptStoreError(f"{path}: empty journal (missing epoch header)")
    base = _parse_epoch(lines[0], path)
    entries: list[JournalEntry] = []
    prev = base
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CorruptStoreError(
                f"{path}:{lineno}: unreadable journal entry: {exc}"
            ) from exc
        try:
            entry = JournalEntry(
                doc["generation"], doc["op"], doc["u"], doc["v"],
                doc.get("unix", 0.0),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptStoreError(
                f"{path}:{lineno}: malformed journal entry: {exc}"
            ) from exc
        if entry.generation != prev + 1:
            raise CorruptStoreError(
                f"{path}:{lineno}: generation gap ({prev} -> {entry.generation})"
            )
        prev = entry.generation
        entries.append(entry)
    return base, entries
