"""Persistent mmap-attach index store.

The paper's economics — build the EquiTruss index once, answer many
community queries cheaply — only pay off in production if *construction
cost is amortized across processes*. This package is that amortization:

* :mod:`repro.store.format` — a versioned single-file binary container
  (magic, format version, schema-version table, sha256 dataset
  fingerprint, checksummed 64-byte-aligned section directory) holding
  the CSR graph arrays, all seven index arrays, and the precomputed
  per-level component tables;
* :mod:`repro.store.writer` — crash-atomic persistence
  (tmpfile → fsync → rename swap);
* :mod:`repro.store.reader` — millisecond read-only mmap attach
  returning a fully usable index + query engine as zero-copy views
  that share the OS page cache across N serving processes;
* :mod:`repro.store.journal` — an append-only update journal fed by
  :class:`~repro.equitruss.dynamic.DynamicEquiTruss` so attached
  readers replay small deltas in place and re-attach after a swap.

:class:`IndexStore` is the façade::

    IndexStore.write(result.index, "graph.eqt", components=components)
    with IndexStore.attach("graph.eqt") as store:   # milliseconds
        engine = store.engine()
        engine.query(vertex, k)                     # ≡ built-from-scratch
        store.refresh()                             # journal replay / re-attach
"""

from repro.errors import CorruptStoreError, StaleStoreError, StoreError
from repro.store.format import STORE_ALIGN, STORE_FORMAT_VERSION, STORE_MAGIC
from repro.store.journal import (
    JournalEntry,
    JournalReader,
    StoreJournal,
    default_journal_path,
)
from repro.store.reader import (
    AttachedStore,
    RefreshReport,
    attach_store,
    inspect_store,
    read_header,
    verify_store,
)
from repro.store.writer import write_store


class IndexStore:
    """Facade over the writer/reader/journal protocol."""

    write = staticmethod(write_store)
    attach = staticmethod(attach_store)
    inspect = staticmethod(inspect_store)
    verify = staticmethod(verify_store)
    journal = staticmethod(StoreJournal.for_store)


__all__ = [
    "AttachedStore",
    "CorruptStoreError",
    "IndexStore",
    "JournalEntry",
    "JournalReader",
    "RefreshReport",
    "STORE_ALIGN",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "StaleStoreError",
    "StoreError",
    "StoreJournal",
    "attach_store",
    "default_journal_path",
    "inspect_store",
    "read_header",
    "verify_store",
    "write_store",
]
