"""The versioned single-file binary container of a persisted index.

Layout
------
::

    offset 0   magic          b"EQTSIDX\\x00"            (8 bytes)
    offset 8   format version uint32 little-endian       (4 bytes)
    offset 12  header length  uint32 little-endian       (4 bytes)
    offset 16  header         UTF-8 JSON                 (header length bytes)
    ...        zero padding to the next 64-byte boundary
    data       section payloads, each 64-byte aligned

The JSON header carries everything needed to interpret the payload
without touching it: the schema-version table
(:func:`repro.obs.manifest.schema_versions`), the sha256 dataset
fingerprint of the indexed edge list, the store *generation* (the
journal protocol's epoch counter), an optional embedded provenance
manifest, and the **section directory** — for every array section its
name, dtype string, shape, payload-relative offset, byte length, and
sha256 checksum.

Sections are raw C-contiguous array bytes. Payload-relative offsets are
multiples of 64 and the payload itself starts on a 64-byte file offset,
so every section is 64-byte aligned in the file and an attached
read-only map yields aligned zero-copy NumPy views.

This module owns the byte-level encoding (header build/parse, alignment,
checksums); :mod:`repro.store.writer` and :mod:`repro.store.reader` own
the atomic-swap and mmap-attach protocols on top of it.
"""

from __future__ import annotations

import hashlib
import json
import struct
import time

import numpy as np

from repro.errors import CorruptStoreError

#: First 8 bytes of every store file.
STORE_MAGIC = b"EQTSIDX\x00"

#: Bumped whenever the container layout or the section set changes
#: incompatibly. Readers refuse other versions.
STORE_FORMAT_VERSION = 1

#: Section payload alignment: one cache line / the widest vector unit,
#: so memmap views are aligned for any dtype the store can hold.
STORE_ALIGN = 64

#: Fixed-size prelude before the JSON header: magic + version + length.
_PRELUDE = struct.Struct("<8sII")
PRELUDE_BYTES = _PRELUDE.size

#: Sections every store must contain (the graph + the seven index
#: arrays); ``serve.*`` component tables are optional extras.
REQUIRED_SECTIONS = (
    "graph.u",
    "graph.v",
    "graph.indptr",
    "graph.indices",
    "graph.edge_ids",
    "index.trussness",
    "index.edge_supernode",
    "index.supernode_trussness",
    "index.supernode_indptr",
    "index.supernode_edges",
    "index.superedges",
)

#: Optional precomputed serving tables (written when components are
#: supplied; their presence lets attach skip the union-find sweep).
COMPONENT_SECTIONS = ("serve.levels", "serve.level_labels")

#: Optional cached Init artifact: the edge permutation sorted by (v, u)
#: — the only sort the fused CSR build performs. Stores carrying it let
#: a rebuild on the attached dataset skip that sort entirely
#: (:meth:`repro.store.reader.AttachedStore.rebuild_graph`). Optional
#: sections need no format-version bump: readers ignore unknown names
#: and only :data:`REQUIRED_SECTIONS` are enforced.
EDGE_ORDER_SECTION = "graph.edge_order"


def align_up(n: int, align: int = STORE_ALIGN) -> int:
    """Smallest multiple of ``align`` that is >= ``n``."""
    return (n + align - 1) // align * align


def section_checksum(data) -> str:
    """sha256 hex digest of a section's raw bytes."""
    return hashlib.sha256(data).hexdigest()


def build_header(
    *,
    sections: dict[str, np.ndarray],
    dataset: dict,
    generation: int,
    graph_dtype: str,
    num_vertices: int,
    manifest: dict | None = None,
) -> tuple[bytes, list[tuple[str, np.ndarray, int]]]:
    """Serialize the prelude + JSON header and lay out the payload.

    Returns the encoded header block (prelude + JSON + padding to the
    payload start) and the payload plan: ``(name, array, relative
    offset)`` triples in write order. Offsets are payload-relative, so
    the directory is independent of the header's own length.
    """
    from repro.obs.manifest import schema_versions

    directory: dict[str, dict] = {}
    plan: list[tuple[str, np.ndarray, int]] = []
    offset = end = 0
    for name, arr in sections.items():
        arr = np.ascontiguousarray(arr)
        payload = arr.data if arr.size else b""
        directory[name] = {
            "offset": offset,
            "nbytes": int(arr.nbytes),
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "sha256": section_checksum(payload),
        }
        plan.append((name, arr, offset))
        end = offset + arr.nbytes
        offset = align_up(end)
    header = {
        "format_version": STORE_FORMAT_VERSION,
        "created_unix": time.time(),
        "generation": int(generation),
        "num_vertices": int(num_vertices),
        "graph_dtype": graph_dtype,
        "dataset": dataset,
        "schema_versions": schema_versions(),
        # exact payload extent: the last section's end, no tail padding
        "payload_bytes": end,
        "sections": directory,
    }
    if manifest is not None:
        header["manifest"] = manifest
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    prelude = _PRELUDE.pack(STORE_MAGIC, STORE_FORMAT_VERSION, len(blob))
    block = prelude + blob
    block += b"\x00" * (align_up(len(block)) - len(block))
    return block, plan


def parse_prelude(raw: bytes, path=None) -> tuple[int, int]:
    """Validate the fixed prelude; returns (format version, header len)."""
    where = f"{path}: " if path is not None else ""
    if len(raw) < PRELUDE_BYTES:
        raise CorruptStoreError(f"{where}file too short for a store prelude")
    magic, version, header_len = _PRELUDE.unpack_from(raw)
    if magic != STORE_MAGIC:
        raise CorruptStoreError(f"{where}bad magic {magic!r}; not an index store")
    if version != STORE_FORMAT_VERSION:
        raise CorruptStoreError(
            f"{where}unsupported store format version {version} "
            f"(reader supports {STORE_FORMAT_VERSION})"
        )
    return version, header_len


def parse_header(blob: bytes, path=None) -> dict:
    """Decode and structurally validate the JSON header."""
    where = f"{path}: " if path is not None else ""
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptStoreError(f"{where}unreadable store header: {exc}") from exc
    if not isinstance(header, dict):
        raise CorruptStoreError(f"{where}store header must be a JSON object")
    sections = header.get("sections")
    if not isinstance(sections, dict):
        raise CorruptStoreError(f"{where}store header lacks a section directory")
    for name in REQUIRED_SECTIONS:
        if name not in sections:
            raise CorruptStoreError(f"{where}store is missing section {name!r}")
    for name, entry in sections.items():
        if not isinstance(entry, dict):
            raise CorruptStoreError(f"{where}section {name!r} entry malformed")
        for field, typ in (
            ("offset", int), ("nbytes", int), ("dtype", str),
            ("shape", list), ("sha256", str),
        ):
            if not isinstance(entry.get(field), typ):
                raise CorruptStoreError(
                    f"{where}section {name!r} field {field!r} malformed"
                )
        if entry["offset"] % STORE_ALIGN:
            raise CorruptStoreError(
                f"{where}section {name!r} offset {entry['offset']} is not "
                f"{STORE_ALIGN}-byte aligned"
            )
    for field, typ in (
        ("generation", int), ("num_vertices", int),
        ("payload_bytes", int), ("dataset", dict),
    ):
        if not isinstance(header.get(field), typ):
            raise CorruptStoreError(f"{where}store header field {field!r} malformed")
    return header


def data_start(header_len: int) -> int:
    """Absolute file offset of the (64-byte aligned) payload."""
    return align_up(PRELUDE_BYTES + header_len)


def section_view(buf: np.ndarray, entry: dict, start: int) -> np.ndarray:
    """Zero-copy view of one section inside the mapped file bytes."""
    off = start + entry["offset"]
    raw = buf[off : off + entry["nbytes"]]
    return raw.view(np.dtype(entry["dtype"])).reshape(entry["shape"])
