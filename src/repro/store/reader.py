"""Millisecond mmap attach of a persisted index.

``attach_store`` maps a store file read-only and reconstructs the full
serving stack — :class:`~repro.equitruss.index.EquiTrussIndex`,
:class:`~repro.serve.components.LevelComponents` (from the stored
tables, skipping the union-find sweep), and on demand a
:class:`~repro.serve.QueryEngine` — as zero-copy views into the mapped
bytes. N serving processes attaching the same file share one page-cache
copy of the index.

Staleness protocol (see :mod:`repro.store.journal`): the attached
*generation* is the header generation at map time. ``refresh()``
replays any journal entries appended since (small deltas, applied
through :class:`~repro.equitruss.dynamic.DynamicEquiTruss`), and falls
back to a clean re-attach when the file itself was swapped by a
rebuild (on-disk generation moved). Readers never block writers and
writers never tear readers — the old inode stays mapped until released.
"""

from __future__ import annotations

import mmap
import time
from pathlib import Path

import numpy as np

from repro.equitruss.index import EquiTrussIndex
from repro.errors import CorruptStoreError, StoreError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.obs import metrics
from repro.obs.histogram import DEFAULT_MS_BOUNDARIES
from repro.store.format import (
    COMPONENT_SECTIONS,
    EDGE_ORDER_SECTION,
    PRELUDE_BYTES,
    data_start,
    parse_header,
    parse_prelude,
    section_checksum,
    section_view,
)
from repro.store.journal import JournalReader, default_journal_path


def _close_quiet(mm, f) -> None:
    """Release a mapping + file, tolerating still-exported buffers."""
    try:
        mm.close()
    except BufferError:
        # a numpy view over the map is still alive in this frame; the
        # OS unmaps when the last reference is collected
        pass
    f.close()


def read_header(path) -> dict:
    """Parse just the prelude + JSON header of a store file (no mmap)."""
    path = Path(path)
    try:
        with open(path, "rb") as f:
            _, header_len = parse_prelude(f.read(PRELUDE_BYTES), path)
            blob = f.read(header_len)
    except OSError as exc:
        raise StoreError(f"cannot read store {path}: {exc}") from exc
    if len(blob) != header_len:
        raise CorruptStoreError(f"{path}: truncated store header")
    return parse_header(blob, path)


def inspect_store(path) -> dict:
    """Human-facing summary of a store file (header facts + sizes)."""
    path = Path(path)
    header = read_header(path)
    sections = header["sections"]
    return {
        "path": str(path),
        "format_version": header["format_version"],
        "generation": header["generation"],
        "num_vertices": header["num_vertices"],
        "num_edges": header["dataset"]["edges"],
        "dataset_sha256": header["dataset"]["sha256"],
        "payload_bytes": header["payload_bytes"],
        "file_bytes": path.stat().st_size,
        "has_components": all(n in sections for n in COMPONENT_SECTIONS),
        "has_edge_order": EDGE_ORDER_SECTION in sections,
        "sections": {
            name: {"nbytes": e["nbytes"], "dtype": e["dtype"], "shape": e["shape"]}
            for name, e in sections.items()
        },
        "schema_versions": header.get("schema_versions", {}),
        "git_sha": (header.get("manifest") or {}).get("git_sha"),
    }


def verify_store(path) -> dict:
    """Full integrity verification: per-section checksums + fingerprint.

    Raises :class:`CorruptStoreError` on the first mismatch; returns a
    small report on success.
    """
    from repro.obs.manifest import dataset_fingerprint

    with attach_store(path, verify=True) as store:
        # the mapped graph must hash back to the header fingerprint —
        # this catches payload corruption that preserves section sums
        # being impossible, but mainly catches a header/payload mix-up
        fp = dataset_fingerprint(store.graph)
        declared = store.header["dataset"]["sha256"]
        if fp["sha256"] != declared:
            raise CorruptStoreError(
                f"{path}: mapped graph fingerprint {fp['sha256'][:12]}… does "
                f"not match the header fingerprint {declared[:12]}…"
            )
        return {
            "ok": True,
            "generation": store.generation,
            "sections": len(store.header["sections"]),
            "payload_bytes": store.header["payload_bytes"],
            "dataset_sha256": declared,
        }


class RefreshReport:
    """What one :meth:`AttachedStore.refresh` call did."""

    __slots__ = ("applied", "swapped", "generation")

    def __init__(self, applied: int, swapped: bool, generation: int) -> None:
        self.applied = applied
        self.swapped = swapped
        self.generation = generation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RefreshReport(applied={self.applied}, swapped={self.swapped}, "
            f"generation={self.generation})"
        )


class AttachedStore:
    """A read-only mmap view of one store file, usable for serving.

    Prefer :func:`attach_store` / ``IndexStore.attach``. The attached
    arrays are zero-copy views into the mapping; everything derived
    (index, components, engines) shares the page cache across
    processes. Use as a context manager — or register with an
    :class:`~repro.parallel.context.ExecutionContext` via ``ctx=`` —
    so the mapping is released before backend teardown unlinks shared
    resources.
    """

    def __init__(self, path, *, verify: bool = False, ctx=None) -> None:
        self.path = Path(path)
        self.closed = False
        self._ctx = ctx
        self._engines: list = []
        self._dynamic = None
        self._journal: JournalReader | None = None
        self._mm: mmap.mmap | None = None
        self._file = None
        t0 = time.perf_counter()
        self._map(verify=verify)
        attach_ms = (time.perf_counter() - t0) * 1000.0
        metrics.observe(
            "repro.store.attach_ms", attach_ms, boundaries=DEFAULT_MS_BOUNDARIES
        )
        metrics.set_gauge("repro.store.bytes_mapped", self.bytes_mapped)
        metrics.set_gauge("repro.store.generation", self.generation)
        self.attach_ms = attach_ms
        if ctx is not None and hasattr(ctx, "register_closer"):
            ctx.register_closer(self.close)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def _map(self, verify: bool = False) -> None:
        """(Re)map the file and rebuild the zero-copy object graph."""
        try:
            f = open(self.path, "rb")
        except OSError as exc:
            raise StoreError(f"cannot open store {self.path}: {exc}") from exc
        try:
            _, header_len = parse_prelude(f.read(PRELUDE_BYTES), self.path)
            blob = f.read(header_len)
            if len(blob) != header_len:
                raise CorruptStoreError(f"{self.path}: truncated store header")
            header = parse_header(blob, self.path)
            start = data_start(header_len)
            mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            f.close()
            raise CorruptStoreError(f"{self.path}: cannot map store: {exc}") from exc
        except StoreError:
            f.close()
            raise
        buf = np.frombuffer(mm, dtype=np.uint8)
        if buf.size < start + header["payload_bytes"]:
            _close_quiet(mm, f)
            raise CorruptStoreError(
                f"{self.path}: file truncated ({buf.size} bytes, "
                f"payload needs {start + header['payload_bytes']})"
            )
        sections = header["sections"]
        views = {
            name: section_view(buf, entry, start)
            for name, entry in sections.items()
        }
        if verify:
            for name, entry in sections.items():
                got = section_checksum(views[name].tobytes())
                if got != entry["sha256"]:
                    _close_quiet(mm, f)
                    raise CorruptStoreError(
                        f"{self.path}: section {name!r} checksum mismatch"
                    )
        # release the previous mapping (a refresh-after-swap path)
        self._release_mapping()
        self._file, self._mm, self._buf = f, mm, buf
        self.header = header
        self.generation = int(header["generation"])
        self.base_generation = self.generation
        self.bytes_mapped = int(buf.size)
        edges = EdgeList(
            views["graph.u"], views["graph.v"], header["num_vertices"]
        )
        self.graph = CSRGraph(
            views["graph.indptr"],
            views["graph.indices"],
            views["graph.edge_ids"],
            edges,
            index_dtype=np.dtype(header["graph_dtype"]),
        )
        if EDGE_ORDER_SECTION in sections:
            # seed the fused-build sort cache with the mapped (read-only)
            # permutation so edge_sort_order()/rebuild_graph() never sort
            self.graph._edge_order = views[EDGE_ORDER_SECTION]
        self.index = EquiTrussIndex(
            graph=self.graph,
            trussness=views["index.trussness"],
            edge_supernode=views["index.edge_supernode"],
            supernode_trussness=views["index.supernode_trussness"],
            supernode_indptr=views["index.supernode_indptr"],
            supernode_edges=views["index.supernode_edges"],
            superedges=views["index.superedges"],
        )
        self.components = None
        if all(name in sections for name in COMPONENT_SECTIONS):
            from repro.serve.components import LevelComponents

            self.components = LevelComponents.from_tables(
                views[COMPONENT_SECTIONS[0]], views[COMPONENT_SECTIONS[1]]
            )
        self._dynamic = None
        self._journal = None

    def _release_mapping(self) -> None:
        mm, f = self._mm, self._file
        self._mm = self._file = None
        self._buf = None
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                # zero-copy views are still referenced outside this
                # object; the OS unmaps when the last view is collected
                pass
        if f is not None:
            f.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def engine(self, cache_size: int = 1024):
        """A :class:`~repro.serve.QueryEngine` over the attached index.

        Uses the stored component tables when present (no union-find
        sweep); the engine is re-bound automatically by :meth:`refresh`.
        """
        from repro.serve.engine import QueryEngine

        eng = QueryEngine(
            self.index, ctx=self._ctx, cache_size=cache_size,
            components=self.components,
        )
        self._engines.append(eng)
        return eng

    def rebuild_graph(self, ctx=None) -> CSRGraph:
        """Rebuild a fresh (non-mapped) CSR over the attached edge list.

        Uses the stored :data:`EDGE_ORDER_SECTION` permutation when the
        store carries one, so the rebuild skips the fused Init's only
        sort; without it the permutation is derived from the attached
        CSR in O(m) — still sort-free. Bit-identical to building from
        the raw edge list either way.
        """
        if self.closed:
            raise StoreError(f"store {self.path} is closed")
        return CSRGraph.from_edgelist(
            self.graph.edges,
            ctx=ctx,
            index_dtype=self.graph.index_dtype,
            edge_order=self.graph.edge_sort_order(),
        )

    # ------------------------------------------------------------------
    # Staleness + journal replay
    # ------------------------------------------------------------------
    def is_stale(self) -> bool:
        """Whether the on-disk file was swapped since this attach."""
        return int(read_header(self.path)["generation"]) != self.base_generation

    def pending_updates(self) -> int:
        """Journal entries appended since the last refresh (the lag)."""
        reader = self._journal_reader()
        lag = reader.pending() if reader is not None else 0
        metrics.set_gauge("repro.store.journal_lag", lag)
        return lag

    def _journal_reader(self) -> JournalReader | None:
        if self._journal is None:
            jpath = default_journal_path(self.path)
            if not jpath.exists():
                return None
            self._journal = JournalReader(
                jpath, base_generation=self.base_generation,
                seen_generation=self.generation,
            )
        return self._journal

    def refresh(self, variant: str = "afforest") -> RefreshReport:
        """Bring the attached view up to date with writers.

        * File swapped (generation moved) → clean re-attach; every
          engine created by :meth:`engine` is re-bound to the new index.
        * Journal entries appended → replay them in place through a
          :class:`~repro.equitruss.dynamic.DynamicEquiTruss` seeded
          from the attached arrays (triangles are enumerated once on
          the first replay, then maintained incrementally).
        """
        if self.closed:
            raise StoreError(f"store {self.path} is closed")
        if self.is_stale():
            self._map()
            metrics.inc("repro.store.reattaches")
            for eng in self._engines:
                eng.refresh(self.index, components=self.components)
            return RefreshReport(0, True, self.generation)
        reader = self._journal_reader()
        entries = reader.poll() if reader is not None else []
        if not entries:
            metrics.set_gauge("repro.store.journal_lag", 0)
            return RefreshReport(0, False, self.generation)
        dynamic = self._ensure_dynamic(variant)
        for entry in entries:
            if entry.op == "insert":
                dynamic.insert_edges(entry.u, entry.v)
            else:
                dynamic.remove_edges(entry.u, entry.v)
            self.generation = entry.generation
        self.index = dynamic.index
        self.graph = dynamic.graph
        self.components = None  # journal deltas invalidate the stored tables
        for eng in self._engines:
            eng.refresh(self.index)
        metrics.inc("repro.store.replayed_entries", len(entries))
        metrics.set_gauge("repro.store.journal_lag", 0)
        metrics.set_gauge("repro.store.generation", self.generation)
        return RefreshReport(len(entries), False, self.generation)

    def _ensure_dynamic(self, variant: str):
        if self._dynamic is None:
            from repro.equitruss.dynamic import DynamicEquiTruss

            self._dynamic = DynamicEquiTruss(
                self.graph, variant,
                trussness=self.index.trussness, index=self.index,
            )
        return self._dynamic

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop the index/engine references and unmap the file.

        Idempotent. Views handed out and still referenced elsewhere
        keep the mapping alive until they are collected (POSIX) — but
        the store itself releases its handles eagerly, so closing
        before backend teardown (the
        :meth:`~repro.parallel.context.ExecutionContext.close`
        ordering) never leaves a dangling handle on the swapped file.
        """
        if self.closed:
            return
        self.closed = True
        self._engines.clear()
        self._dynamic = None
        self._journal = None
        self.index = None  # type: ignore[assignment]
        self.components = None
        self.graph = None  # type: ignore[assignment]
        self._release_mapping()

    def __enter__(self) -> "AttachedStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else f"gen={self.generation}"
        return f"AttachedStore({self.path.name}, {state})"


def attach_store(
    path, *, verify: bool = False, ctx=None, expect_graph=None
) -> AttachedStore:
    """Map a store read-only and return the attached serving stack.

    ``verify=True`` checks every section checksum before returning
    (attach stays mmap-speed without it; ``store verify`` in the CLI
    always checks). ``expect_graph`` asserts the store was built from
    the given graph (sha256 dataset fingerprint) and raises
    :class:`StoreError` on mismatch. ``ctx`` registers the mapping
    with the context's teardown ordering.
    """
    store = AttachedStore(path, verify=verify, ctx=ctx)
    if expect_graph is not None:
        from repro.obs.manifest import dataset_fingerprint

        expected = dataset_fingerprint(expect_graph)["sha256"]
        declared = store.header["dataset"]["sha256"]
        if expected != declared:
            store.close()
            raise StoreError(
                f"{path}: store fingerprint {declared[:12]}… does not match "
                f"the expected graph ({expected[:12]}…)"
            )
    return store
