"""K-truss decomposition: trussness τ(e) for every edge.

Trussness (Definition 4 of the paper) is the input the EquiTruss index
construction consumes: Algorithm 1/2 receive "a dictionary of edges with
their k-truss values pre-computed by a k-truss decomposition technique".
Here we build that technique ourselves: a serial bucket-peeling
reference (Cohen's algorithm) and a vectorized level-synchronous peeling
(PKT-style [Kabir & Madduri, HPEC'17 — ref. 24 of the paper]) used by
all benchmarks.
"""

from repro.truss.decompose import (
    TrussDecomposition,
    k_truss_edge_mask,
    truss_decomposition,
    truss_decomposition_serial,
)
from repro.truss.verify import verify_trussness

__all__ = [
    "TrussDecomposition",
    "k_truss_edge_mask",
    "truss_decomposition",
    "truss_decomposition_serial",
    "verify_trussness",
]
