"""Independent truss verification (and a brute-force reference).

:func:`maximal_k_truss` computes the maximal k-truss by naive repeated
peeling with re-enumeration — an implementation deliberately sharing no
code with the production decomposition so the two can cross-validate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexIntegrityError, InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.triangles.enumerate import enumerate_triangles
from repro.truss.decompose import TrussDecomposition


def maximal_k_truss(graph: CSRGraph, k: int) -> np.ndarray:
    """Boolean edge mask of the maximal k-truss, by naive peeling.

    Repeatedly recomputes in-subgraph support from scratch and drops
    edges below k - 2 until stable. O(rounds · triangle cost) — test
    scale only.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    mask = np.ones(graph.num_edges, dtype=bool)
    while True:
        keep_ids = np.flatnonzero(mask)
        if keep_ids.size == 0:
            return mask
        sub = CSRGraph.from_edgelist(graph.edges.subset(keep_ids))
        sup = enumerate_triangles(sub).support()
        bad = sup < k - 2
        if not bad.any():
            return mask
        mask[keep_ids[bad]] = False


def trussness_brute_force(graph: CSRGraph) -> np.ndarray:
    """τ(e) per edge by direct definition (largest k with e in a k-truss)."""
    m = graph.num_edges
    tau = np.full(m, 2, dtype=np.int64)
    k = 3
    while True:
        mask = maximal_k_truss(graph, k)
        if not mask.any():
            return tau
        tau[mask] = k
        k += 1


def verify_trussness(
    graph: CSRGraph, decomp: TrussDecomposition, full: bool = True
) -> None:
    """Validate a decomposition; raises :class:`IndexIntegrityError`.

    Checks the k-truss property of every level (each τ ≥ k subgraph has
    in-subgraph support ≥ k - 2) and, with ``full=True``, maximality
    (the τ ≥ k subgraph equals the independently computed maximal
    k-truss for every populated level).
    """
    tau = decomp.trussness
    if tau.size != graph.num_edges:
        raise IndexIntegrityError("trussness array length != num_edges")
    if tau.size == 0:
        return
    if int(tau.min()) < 2:
        raise IndexIntegrityError("trussness below 2")
    for k in decomp.k_classes().tolist():
        keep_ids = np.flatnonzero(tau >= k)
        sub = CSRGraph.from_edgelist(graph.edges.subset(keep_ids))
        sup = enumerate_triangles(sub).support()
        if (sup < k - 2).any():
            raise IndexIntegrityError(
                f"edge in tau>={k} subgraph has support below {k - 2}"
            )
        if full:
            expected = maximal_k_truss(graph, k)
            if not np.array_equal(expected, tau >= k):
                raise IndexIntegrityError(
                    f"tau>={k} subgraph is not the maximal {k}-truss"
                )
