"""Linear-algebra (GraphBLAS-style) truss decomposition.

The paper cites k-truss via sparse linear algebra on GPUs [14: Davis,
SuiteSparse:GraphBLAS; 46: Wang et al.]. The formulation: with boolean
adjacency A, the support of every present edge is ((A·A) ∘ A)[u, v]
(the number of length-2 paths closing each edge). Peeling repeats: drop
entries whose support is below k - 2, recompute. Entirely different
machinery from the incidence-based peeling in
:mod:`repro.truss.decompose` — kept as a cross-validation oracle and a
comparative benchmark (matrix recomputation per round vs incremental
decrements).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.truss.decompose import TrussDecomposition


def truss_decomposition_linalg(graph: CSRGraph) -> TrussDecomposition:
    """Trussness per edge via repeated sparse matrix products."""
    import scipy.sparse as sp

    m = graph.num_edges
    n = graph.num_vertices
    tau = np.full(m, 2, dtype=np.int64)
    eu = graph.edges.u.copy()
    ev = graph.edges.v.copy()
    alive = np.ones(m, dtype=bool)
    support0: np.ndarray | None = None

    def alive_matrix() -> "sp.csr_array":
        ids = np.flatnonzero(alive)
        rows = np.concatenate([eu[ids], ev[ids]])
        cols = np.concatenate([ev[ids], eu[ids]])
        data = np.ones(rows.size, dtype=np.int64)
        return sp.csr_array((data, (rows, cols)), shape=(n, n))

    def alive_support() -> np.ndarray:
        """Support of each alive edge within the alive subgraph."""
        a = alive_matrix()
        s = ((a @ a).multiply(a)).tocsr()
        s.sort_indices()
        ids = np.flatnonzero(alive)
        out = np.zeros(m, dtype=np.int64)
        if s.nnz == 0:
            return out
        # keyed lookup of S[u, v] for each alive edge
        rows = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(s.indptr)
        )
        keys = rows * np.int64(n) + s.indices
        q = eu[ids] * np.int64(n) + ev[ids]
        pos = np.searchsorted(keys, q)
        pos_c = np.minimum(pos, keys.size - 1)
        found = keys[pos_c] == q
        vals = np.zeros(ids.size, dtype=np.int64)
        vals[found] = s.data[pos_c[found]]
        out[ids] = vals
        return out

    rounds = 0
    k = 3
    remaining = m
    while remaining > 0:
        sup = alive_support()
        if support0 is None:
            support0 = sup.copy()
        doomed = alive & (sup < k - 2)
        if not doomed.any():
            k += 1
            continue
        while doomed.any():
            rounds += 1
            tau[doomed] = k - 1
            alive[doomed] = False
            remaining -= int(doomed.sum())
            if remaining == 0:
                break
            sup = alive_support()  # full recomputation — the LA style
            doomed = alive & (sup < k - 2)
        k += 1
    if support0 is None:
        support0 = np.zeros(m, dtype=np.int64)
    return TrussDecomposition(trussness=tau, support=support0, peel_rounds=rounds)
