"""Truss decomposition by support peeling.

Both implementations compute, for every edge, the largest k such that
the edge belongs to a k-truss (trussness, τ). Peeling invariant: at
level k, repeatedly discard edges whose remaining support is below
k - 2; edges discarded at level k have τ = k - 1; edges never discarded
before the graph empties at level k have τ = k - 1 as well (assigned
when they are finally peeled).

``truss_decomposition`` is the vectorized level-synchronous variant
(each sub-round peels the whole frontier at once and cascades support
decrements through dying triangles — the PKT structure); ``*_serial``
is a pure-Python bucket-queue reference used for cross-validation.

Two peeling schedules share the level-synchronous loop:

* ``peeling="bucket"`` (default) — PKT-style bucketed peeling (Kabir &
  Madduri, arXiv:1707.02000). Edges are grouped by current support into
  compacted frontier chunks (:class:`_BucketQueue`): each level pops
  the buckets below its bound directly, and subsequent sub-round
  frontiers fall out of the decrement step itself (only re-bucketed
  edges can enter the frontier), so the per-level O(m) full-edge
  rescans of the scan schedule disappear — ``level_scans`` is 0. Under
  the process backend the per-sub-round bucket moves are regrouped by a
  privatized counting sort (:class:`_SharedBucketScatter`): every
  worker stable-sorts its contiguous range of the (edge, new-support)
  pairs into its own disjoint slice of a shared buffer — no
  cross-process atomics — and the coordinator adopts the per-bucket
  sub-chunks in (worker, value) order, bit-identical to the serial
  stable grouping.
* ``peeling="scan"`` — the previous schedule, kept as the comparison
  baseline: every sub-round rescans the full support array for
  ``sup < k - 2`` hits. Under the process backend the scans and the
  decrement ``bincount`` rows fan out through
  :class:`_SharedPeelState` (partition → privatize → reduce).

Both schedules visit identical frontiers in identical order, so
``trussness``, ``support`` and ``peel_rounds`` are bit-identical across
schedules *and* backends; only ``level_scans`` (a cost counter of the
scan schedule) differs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.triangles.incidence import EdgeTriangleIncidence

#: Peeling schedules accepted by :func:`truss_decomposition`.
PEELING_MODES = ("bucket", "scan")

#: ``repro.truss.frontier_size`` histogram boundaries — frontier sizes
#: span "one straggler edge" to "most of the graph in one sub-round".
FRONTIER_SIZE_BOUNDARIES = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)


@dataclass(frozen=True)
class TrussDecomposition:
    """Result of a truss decomposition.

    Attributes
    ----------
    trussness:
        ``int64[m]`` — τ(e) per edge id; 2 for triangle-free edges.
    support:
        ``int64[m]`` — initial (undamaged) support per edge.
    peel_rounds:
        Number of frontier sub-rounds the peeling took (the depth of the
        level-synchronous schedule).
    level_scans:
        Number of level-k full-edge frontier scans the outer loop
        performed. Only the ``scan`` schedule pays these; bucketed
        peeling pops compacted buckets instead and reports 0.
    """

    trussness: np.ndarray
    support: np.ndarray
    peel_rounds: int
    level_scans: int = 0

    @property
    def num_edges(self) -> int:
        return self.trussness.size

    @property
    def kmax(self) -> int:
        """Largest trussness present (2 for triangle-free graphs)."""
        return int(self.trussness.max()) if self.trussness.size else 2

    def k_classes(self) -> np.ndarray:
        """Sorted distinct trussness values ≥ 3 (the Φ_k levels)."""
        ks = np.unique(self.trussness)
        return ks[ks >= 3]

    def phi(self, k: int) -> np.ndarray:
        """Edge ids of the Φ_k set (trussness exactly k)."""
        return np.flatnonzero(self.trussness == k)

    def truss_sizes(self) -> dict[int, int]:
        """Number of edges per trussness level ≥ 3."""
        return {int(k): int((self.trussness == k).sum()) for k in self.k_classes()}


def k_truss_edge_mask(decomp: TrussDecomposition, k: int) -> np.ndarray:
    """Boolean mask of edges in the maximal k-truss (τ(e) ≥ k)."""
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    return decomp.trussness >= k


#: Frontier scans fan out only when the edge array is at least this many
#: times the backend's ``min_items`` — the scan is O(m) *every* round,
#: so the task round-trip must be amortized over a large m.
_SCAN_FANOUT_FACTOR = 8


class _BucketQueue:
    """Support-indexed buckets of compacted edge-id chunks (PKT-style).

    Lazy-deletion invariant: every *alive* edge always has an entry in
    the bucket of its **current** support; stale entries — dead edges,
    or edges re-bucketed at a lower support since insertion — are
    filtered out the first time their bucket is touched (an entry's
    support values only ever decrease, so an edge never has two entries
    at the same value). ``heap`` orders the populated bucket values so
    the minimum surviving support is a peek, not an O(m) reduction.
    """

    __slots__ = ("buckets", "heap")

    def __init__(self) -> None:
        self.buckets: dict[int, list[np.ndarray]] = {}
        self.heap: list[int] = []

    def fill(self, sup: np.ndarray) -> None:
        """Initial grouping of all edges by support (one stable sort)."""
        order = np.argsort(sup, kind="stable")
        svals = sup[order]
        uvals, starts = np.unique(svals, return_index=True)
        ends = np.append(starts[1:], svals.size)
        for i, v in enumerate(uvals.tolist()):
            self.push(int(v), order[starts[i] : ends[i]])

    def push(self, value: int, chunk: np.ndarray) -> None:
        entry = self.buckets.get(value)
        if entry is None:
            self.buckets[value] = [chunk]
            heapq.heappush(self.heap, value)
        else:
            entry.append(chunk)

    def push_groups(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Regroup ``ids`` by (new) support ``values`` and push each group.

        One stable counting-sort-shaped pass: within a bucket the ids
        keep ascending order because ``ids`` arrives ascending.
        """
        order = np.argsort(values, kind="stable")
        sv = values[order]
        si = ids[order]
        uvals, starts = np.unique(sv, return_index=True)
        ends = np.append(starts[1:], sv.size)
        for i, v in enumerate(uvals.tolist()):
            self.push(int(v), si[starts[i] : ends[i]])

    def _live(self, value: int, sup: np.ndarray, alive: np.ndarray) -> np.ndarray:
        chunks = self.buckets[value]
        c = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        return c[alive[c] & (sup[c] == value)]

    def peek_min_support(self, sup: np.ndarray, alive: np.ndarray) -> int | None:
        """Minimum support among alive edges (compacts stale buckets)."""
        while self.heap:
            v = self.heap[0]
            if v not in self.buckets:
                heapq.heappop(self.heap)
                continue
            live = self._live(v, sup, alive)
            if live.size == 0:
                heapq.heappop(self.heap)
                del self.buckets[v]
                continue
            self.buckets[v] = [live]
            return v
        return None

    def collect(self, bound: int, sup: np.ndarray, alive: np.ndarray) -> np.ndarray:
        """Pop every live edge with support below ``bound``, ascending.

        This is the bucket-pop equivalent of the scan schedule's
        ``flatnonzero(alive & (sup < bound))`` — identical contents and
        order, without reading the m-element arrays.
        """
        parts = []
        while self.heap and self.heap[0] < bound:
            v = heapq.heappop(self.heap)
            chunks = self.buckets.pop(v, None)
            if chunks is None:
                continue
            c = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            live = c[alive[c] & (sup[c] == v)]
            if live.size:
                parts.append(live)
        if not parts:
            return np.empty(0, dtype=np.int64)
        out = parts[0] if len(parts) == 1 else np.concatenate(parts)
        out.sort()
        return out


def _w_bucket_scatter(ids_h, vals_h, lo: int, hi: int, nb: int, out_h, cnt_h, row: int):
    """Process-pool worker: privatized counting sort of one move range.

    Stable-sorts its contiguous slice of the (edge id, relative new
    support) pairs by support and writes the grouped ids into its own
    disjoint ``out[lo:hi]`` slice (a contiguous write the race detector
    tracks precisely); the per-value histogram row lets the coordinator
    cut the slice back into per-bucket chunks.
    """
    from repro.parallel.shm import attach

    ids = attach(ids_h)
    vals = attach(vals_h)
    v = np.asarray(vals[lo:hi])
    order = np.argsort(v, kind="stable")
    out = attach(out_h)
    out[lo:hi] = np.asarray(ids[lo:hi])[order]
    cnt = attach(cnt_h)
    np.copyto(cnt[row], np.bincount(v, minlength=nb))
    # worker-attributed moves: summed across tasks this equals the
    # serial schedule's re-bucketed edge count exactly
    metrics.inc("repro.truss.bucket_moves", hi - lo)
    return hi - lo


class _SharedBucketScatter:
    """Process-backend bucket regrouping: partition → privatize → adopt.

    No cross-process atomics and no interleaved scatter stores: each
    worker's only write is its own contiguous slice of the shared
    grouped buffer. Because the affected ids arrive ascending and the
    worker ranges are contiguous, concatenating each bucket's
    sub-chunks in (worker, value) order reproduces the serial stable
    grouping bit-for-bit.
    """

    def __init__(self, backend, ctx) -> None:
        self.backend = backend
        self.ctx = ctx

    def group(
        self, ids: np.ndarray, values: np.ndarray
    ) -> list[tuple[int, np.ndarray]]:
        pool = self.backend.pool
        vmin = int(values.min())
        nb = int(values.max()) - vmin + 1
        _, ids_h = pool.share("peel.move_ids", ids)
        _, rel_h = pool.share("peel.move_vals", values - vmin)
        ranges = self.ctx.partition_ranges(ids.size)
        grouped, out_h = pool.take("peel.grouped", ids.size, np.int64)
        counts, cnt_h = pool.take("peel.move_counts", (len(ranges), nb), np.int64)
        self.backend.map_tasks(
            _w_bucket_scatter,
            [
                (ids_h, rel_h, lo, hi, nb, out_h, cnt_h, row)
                for row, (lo, hi) in enumerate(ranges)
            ],
            ctx=self.ctx,
            work=[hi - lo for lo, hi in ranges],
            kernel="BucketScatter",
        )
        out: list[tuple[int, np.ndarray]] = []
        for row, (lo, _) in enumerate(ranges):
            crow = counts[row]
            ends = lo + np.cumsum(crow)
            for vi in np.flatnonzero(crow).tolist():
                # copy: the shared buffer is reused by the next sub-round
                out.append((vmin + vi, np.array(grouped[ends[vi] - crow[vi] : ends[vi]])))
        return out


def _w_frontier_chunk(sup_h, alive_h, lo: int, hi: int, bound: int, out_h):
    """Process-pool worker: compact frontier hits of one edge range.

    Writes the absolute edge ids whose support dropped below ``bound``
    into the worker's disjoint ``out[lo:lo+count]`` slice; returns the
    count. Concatenating the slices in worker order reproduces the
    serial ``flatnonzero`` exactly.
    """
    from repro.parallel.shm import attach

    sup = attach(sup_h)
    alive = attach(alive_h)
    idx = np.flatnonzero(alive[lo:hi] & (sup[lo:hi] < bound))
    out = attach(out_h)
    out[lo : lo + idx.size] = idx + lo
    return int(idx.size)


def _w_decrement_partial(sides_h, lo: int, hi: int, m: int, out_h, row: int):
    """Process-pool worker: privatized decrement counts for one range."""
    from repro.parallel.shm import attach

    sides = attach(sides_h)
    out = attach(out_h)
    np.copyto(out[row], np.bincount(sides[lo:hi], minlength=m))
    # worker-attributed partial: summed across tasks this equals the
    # serial path's sides.size exactly
    metrics.inc("repro.truss.support_decrements", hi - lo)
    return hi - lo


class _SharedPeelState:
    """Shared-memory mirror of the peeling state for the process backend.

    Owns the shared ``sup``/``alive`` arrays (the coordinator mutates
    them in place between rounds — workers only ever read during a
    task, so there are no races) plus the scratch buffers the two
    fan-out stages use. Only the ``scan`` schedule needs this: bucketed
    peeling never rescans the edge arrays, so its sole fan-out is the
    bucket-move regrouping of :class:`_SharedBucketScatter`.
    """

    def __init__(self, backend, ctx, sup: np.ndarray, alive: np.ndarray) -> None:
        self.backend = backend
        self.ctx = ctx
        self.m = sup.size
        pool = backend.pool
        self.sup, self.sup_h = pool.share("peel.sup", sup)
        self.alive, self.alive_h = pool.share("peel.alive", alive)
        self.scan_enabled = self.m >= backend.min_items * _SCAN_FANOUT_FACTOR
        if self.scan_enabled:
            self.frontier, self.frontier_h = pool.take(
                "peel.frontier", self.m, np.int64
            )

    def _ranges(self, n: int) -> list[tuple[int, int]]:
        # edges are uniform-cost items in scans and decrements, so the
        # balanced and blocked strategies coincide here
        return self.ctx.partition_ranges(n)

    def scan_frontier(self, bound: int) -> np.ndarray:
        """``flatnonzero(alive & (sup < bound))`` via partitioned scans."""
        if not self.scan_enabled:
            return np.flatnonzero(self.alive & (self.sup < bound))
        ranges = self._ranges(self.m)
        if not ranges:
            return np.empty(0, dtype=np.int64)
        counts = self.backend.map_tasks(
            _w_frontier_chunk,
            [(self.sup_h, self.alive_h, lo, hi, bound, self.frontier_h) for lo, hi in ranges],
            ctx=self.ctx,
            work=[hi - lo for lo, hi in ranges],
            kernel="FrontierScan",
        )
        out = self.frontier
        return np.concatenate(
            [out[lo : lo + c] for (lo, _), c in zip(ranges, counts)]
        )

    def decrement(self, sides: np.ndarray) -> None:
        """``sup -= bincount(sides)`` via privatized partial rows."""
        if sides.size < self.backend.min_items:
            metrics.inc("repro.truss.support_decrements", sides.size)
            self.sup -= np.bincount(sides, minlength=self.m)
            return
        pool = self.backend.pool
        _, sides_h = pool.share("peel.sides", sides)
        ranges = self._ranges(sides.size)
        partials, out_h = pool.take("peel.partials", (len(ranges), self.m), np.int64)
        self.backend.map_tasks(
            _w_decrement_partial,
            [(sides_h, lo, hi, self.m, out_h, row) for row, (lo, hi) in enumerate(ranges)],
            ctx=self.ctx,
            work=[hi - lo for lo, hi in ranges],
            kernel="SupportDecrement",
        )
        self.sup -= partials.sum(axis=0)


def truss_decomposition(
    graph: CSRGraph,
    triangles: TriangleSet | None = None,
    ctx: ExecutionContext | None = None,
    *,
    peeling: str = "bucket",
    policy=None,
) -> TrussDecomposition:
    """Vectorized level-synchronous truss decomposition.

    Each sub-round removes the entire current frontier (edges whose
    support dropped below k - 2), kills every triangle containing a
    removed edge, and decrements the support of the surviving member
    edges. The frontier rounds are the barrier-synchronized rounds
    recorded for the machine model. ``peeling`` selects the frontier
    schedule (see the module docstring) — both produce bit-identical
    results; ``"bucket"`` skips the per-sub-round O(m) rescans.
    ``policy`` is a deprecated alias for ``ctx``.
    """
    from repro.parallel.shm import active_process_backend
    from repro.triangles.support import parallel_support

    if peeling not in PEELING_MODES:
        raise InvalidParameterError(
            f"peeling must be one of {PEELING_MODES}, got {peeling!r}"
        )
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    if triangles is None:
        triangles = enumerate_triangles(graph, ctx=ctx)
    m = graph.num_edges
    with ctx.region(
        "TrussDecomp", work=0, rounds=0, intensity="memory"
    ) as handle:
        ctx.annotate(peeling=peeling)
        inc = EdgeTriangleIncidence(triangles, ctx=ctx)
        sup = parallel_support(triangles, ctx, dtype=np.int64)
        support0 = sup.copy()
        tau = np.full(m, 2, dtype=np.int64)
        alive_e = np.ones(m, dtype=bool)
        alive_t = np.ones(triangles.count, dtype=bool)
        e_uv, e_uw, e_vw = triangles.e_uv, triangles.e_uw, triangles.e_vw
        indptr, tri_ids = inc.indptr, inc.tri_ids

        backend = active_process_backend(ctx, m)
        shared = None
        scatter = None
        if backend is not None:
            if peeling == "scan":
                shared = _SharedPeelState(backend, ctx, sup, alive_e)
                sup, alive_e = shared.sup, shared.alive
            else:
                scatter = _SharedBucketScatter(backend, ctx)

        def scan(bound: int) -> np.ndarray:
            if shared is not None:
                return shared.scan_frontier(bound)
            return np.flatnonzero(alive_e & (sup < bound))

        def cascade(frontier: np.ndarray) -> np.ndarray:
            """Surviving member edges of triangles dying with ``frontier``.

            Triangles are touched with repetition when they lose 2–3
            edges at once; each dying triangle decrements each surviving
            member edge exactly once.
            """
            counts = indptr[frontier + 1] - indptr[frontier]
            total = int(counts.sum())
            if not total:
                return np.empty(0, dtype=np.int64)
            cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
            local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
            touched = tri_ids[np.repeat(indptr[frontier], counts) + local]
            dying = np.unique(touched[alive_t[touched]])
            alive_t[dying] = False
            sides = np.concatenate([e_uv[dying], e_uw[dying], e_vw[dying]])
            return sides[alive_e[sides]]

        rounds = 0
        level_scans = 0
        k = 3
        remaining = m
        frontier_peak = 0
        if peeling == "bucket":
            bq = _BucketQueue()
            bq.fill(sup)
            while remaining > 0:
                s_min = bq.peek_min_support(sup, alive_e)
                if s_min is None:  # pragma: no cover - guarded by `remaining`
                    break
                if s_min >= k - 2:
                    # Skip empty levels, exactly like the scan schedule:
                    # the next peel happens at k = s_min + 3, assigning
                    # those edges τ = s_min + 2.
                    k = max(k + 1, s_min + 3)
                bound = k - 2
                frontier = bq.collect(bound, sup, alive_e)
                while frontier.size:
                    rounds += 1
                    frontier_peak = max(frontier_peak, int(frontier.size))
                    handle.add_round(int(frontier.size))
                    metrics.observe(
                        "repro.truss.frontier_size",
                        float(frontier.size),
                        boundaries=FRONTIER_SIZE_BOUNDARIES,
                    )
                    tau[frontier] = k - 1
                    alive_e[frontier] = False
                    remaining -= frontier.size
                    sides = cascade(frontier)
                    if not sides.size:
                        break
                    metrics.inc("repro.truss.support_decrements", sides.size)
                    affected, dec = np.unique(sides, return_counts=True)
                    sup[affected] -= dec
                    vals = sup[affected]
                    # Only edges that dropped below the bound can join the
                    # frontier — no rescan. The rest are re-bucketed at
                    # their new support (edges dying next sub-round leave
                    # stale entries the lazy filter drops later).
                    keep = vals >= bound
                    stay = affected[keep]
                    if stay.size:
                        if scatter is not None and stay.size >= backend.min_items:
                            for v, chunk in scatter.group(stay, vals[keep]):
                                bq.push(v, chunk)
                        else:
                            metrics.inc("repro.truss.bucket_moves", stay.size)
                            bq.push_groups(stay, vals[keep])
                    frontier = affected[~keep]
                k += 1
        else:
            while remaining > 0:
                level_scans += 1
                frontier = scan(k - 2)
                if frontier.size == 0:
                    # Skip empty levels: the next peel happens at the level
                    # where the minimum surviving support s first satisfies
                    # s < k - 2 — i.e. k = s + 3, assigning those edges
                    # τ = s + 2. Incrementing k one level at a time here is
                    # pure waste on graphs with large trussness gaps.
                    s_min = int(sup[alive_e].min())
                    k = max(k + 1, s_min + 3)
                    continue
                while frontier.size:
                    rounds += 1
                    frontier_peak = max(frontier_peak, int(frontier.size))
                    handle.add_round(int(frontier.size))
                    metrics.observe(
                        "repro.truss.frontier_size",
                        float(frontier.size),
                        boundaries=FRONTIER_SIZE_BOUNDARIES,
                    )
                    tau[frontier] = k - 1
                    alive_e[frontier] = False
                    remaining -= frontier.size
                    sides = cascade(frontier)
                    if sides.size:
                        if shared is not None:
                            shared.decrement(sides)
                        else:
                            metrics.inc("repro.truss.support_decrements", sides.size)
                            sup -= np.bincount(sides, minlength=m)
                    frontier = scan(k - 2)
                k += 1

    result = TrussDecomposition(
        trussness=tau, support=support0, peel_rounds=rounds, level_scans=level_scans
    )
    metrics.inc("repro.truss.peel_rounds", rounds)
    metrics.inc("repro.truss.level_scans", level_scans)
    metrics.set_gauge_max("repro.truss.frontier_peak", frontier_peak)
    metrics.set_gauge("repro.truss.kmax", result.kmax)
    return result


def truss_decomposition_serial(
    graph: CSRGraph, triangles: TriangleSet | None = None
) -> TrussDecomposition:
    """Pure-Python bucket-queue peeling (Cohen's algorithm), reference.

    Processes one minimum-support edge at a time; exact but slow — use
    only on small graphs and for cross-validation of the vectorized
    variant.
    """
    if triangles is None:
        triangles = enumerate_triangles(graph)
    m = graph.num_edges
    inc = EdgeTriangleIncidence(triangles)
    sup = triangles.support().astype(np.int64)
    support0 = sup.copy()
    tau = np.full(m, 2, dtype=np.int64)
    alive_e = np.ones(m, dtype=bool)
    alive_t = np.ones(triangles.count, dtype=bool)
    mat = triangles.as_matrix()

    max_sup = int(sup.max()) if m else 0
    buckets: list[list[int]] = [[] for _ in range(max_sup + 1)]
    for e in range(m):
        buckets[int(sup[e])].append(e)

    level = 0  # current peel level = k - 2
    processed = 0
    cursor = 0
    rounds = 0
    while processed < m:
        while cursor <= max_sup and not buckets[cursor]:
            cursor += 1
        e = buckets[cursor].pop()
        if not alive_e[e] or int(sup[e]) != cursor:
            continue  # stale bucket entry (support changed since insertion)
        rounds += 1
        level = max(level, cursor)
        tau[e] = level + 2
        alive_e[e] = False
        processed += 1
        for t in inc.triangles_of(e).tolist():
            if not alive_t[t]:
                continue
            alive_t[t] = False
            for other in mat[t].tolist():
                if other != e and alive_e[other]:
                    new_sup = int(sup[other]) - 1
                    sup[other] = new_sup
                    if new_sup >= 0:
                        buckets[new_sup].append(other)
                        if new_sup < cursor:
                            cursor = new_sup
    return TrussDecomposition(trussness=tau, support=support0, peel_rounds=rounds)
