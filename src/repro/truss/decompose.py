"""Truss decomposition by support peeling.

Both implementations compute, for every edge, the largest k such that
the edge belongs to a k-truss (trussness, τ). Peeling invariant: at
level k, repeatedly discard edges whose remaining support is below
k - 2; edges discarded at level k have τ = k - 1; edges never discarded
before the graph empties at level k have τ = k - 1 as well (assigned
when they are finally peeled).

``truss_decomposition`` is the vectorized level-synchronous variant
(each sub-round peels the whole frontier at once and cascades support
decrements through dying triangles — the PKT structure); ``*_serial``
is a pure-Python bucket-queue reference used for cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.triangles.incidence import EdgeTriangleIncidence


@dataclass(frozen=True)
class TrussDecomposition:
    """Result of a truss decomposition.

    Attributes
    ----------
    trussness:
        ``int64[m]`` — τ(e) per edge id; 2 for triangle-free edges.
    support:
        ``int64[m]`` — initial (undamaged) support per edge.
    peel_rounds:
        Number of frontier sub-rounds the peeling took (the depth of the
        level-synchronous schedule).
    level_scans:
        Number of level-k frontier scans the outer loop performed; with
        level skipping this stays near twice the number of *populated*
        levels instead of growing with kmax across empty ones.
    """

    trussness: np.ndarray
    support: np.ndarray
    peel_rounds: int
    level_scans: int = 0

    @property
    def num_edges(self) -> int:
        return self.trussness.size

    @property
    def kmax(self) -> int:
        """Largest trussness present (2 for triangle-free graphs)."""
        return int(self.trussness.max()) if self.trussness.size else 2

    def k_classes(self) -> np.ndarray:
        """Sorted distinct trussness values ≥ 3 (the Φ_k levels)."""
        ks = np.unique(self.trussness)
        return ks[ks >= 3]

    def phi(self, k: int) -> np.ndarray:
        """Edge ids of the Φ_k set (trussness exactly k)."""
        return np.flatnonzero(self.trussness == k)

    def truss_sizes(self) -> dict[int, int]:
        """Number of edges per trussness level ≥ 3."""
        return {int(k): int((self.trussness == k).sum()) for k in self.k_classes()}


def k_truss_edge_mask(decomp: TrussDecomposition, k: int) -> np.ndarray:
    """Boolean mask of edges in the maximal k-truss (τ(e) ≥ k)."""
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    return decomp.trussness >= k


def truss_decomposition(
    graph: CSRGraph,
    triangles: TriangleSet | None = None,
    ctx: ExecutionContext | None = None,
    *,
    policy=None,
) -> TrussDecomposition:
    """Vectorized level-synchronous truss decomposition.

    Each sub-round removes the entire current frontier (edges whose
    support dropped below k - 2), kills every triangle containing a
    removed edge, and decrements the support of the surviving member
    edges — one ``bincount`` scatter per sub-round. The frontier rounds
    are the barrier-synchronized rounds recorded for the machine model.
    ``policy`` is a deprecated alias for ``ctx``.
    """
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    if triangles is None:
        triangles = enumerate_triangles(graph, ctx=ctx)
    m = graph.num_edges
    with ctx.region(
        "TrussDecomp", work=0, rounds=0, intensity="memory"
    ) as handle:
        inc = EdgeTriangleIncidence(triangles, ctx=ctx)
        sup = triangles.support().copy()
        support0 = sup.copy()
        tau = np.full(m, 2, dtype=np.int64)
        alive_e = np.ones(m, dtype=bool)
        alive_t = np.ones(triangles.count, dtype=bool)
        e_uv, e_uw, e_vw = triangles.e_uv, triangles.e_uw, triangles.e_vw
        indptr, tri_ids = inc.indptr, inc.tri_ids

        rounds = 0
        level_scans = 0
        k = 3
        remaining = m
        frontier_peak = 0
        while remaining > 0:
            level_scans += 1
            frontier = np.flatnonzero(alive_e & (sup < k - 2))
            if frontier.size == 0:
                # Skip empty levels: the next peel happens at the level
                # where the minimum surviving support s first satisfies
                # s < k - 2 — i.e. k = s + 3, assigning those edges
                # τ = s + 2. Incrementing k one level at a time here is
                # pure waste on graphs with large trussness gaps.
                s_min = int(sup[alive_e].min())
                k = max(k + 1, s_min + 3)
                continue
            while frontier.size:
                rounds += 1
                frontier_peak = max(frontier_peak, int(frontier.size))
                handle.add_round(int(frontier.size))
                tau[frontier] = k - 1
                alive_e[frontier] = False
                remaining -= frontier.size
                # Triangles touched by the frontier (with repetition when a
                # triangle loses 2–3 edges at once).
                counts = indptr[frontier + 1] - indptr[frontier]
                total = int(counts.sum())
                if total:
                    cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
                    local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
                    touched = tri_ids[np.repeat(indptr[frontier], counts) + local]
                    dying = np.unique(touched[alive_t[touched]])
                    alive_t[dying] = False
                    # Decrement surviving member edges of each dying triangle
                    # exactly once.
                    sides = np.concatenate([e_uv[dying], e_uw[dying], e_vw[dying]])
                    sides = sides[alive_e[sides]]
                    if sides.size:
                        sup -= np.bincount(sides, minlength=m)
                frontier = np.flatnonzero(alive_e & (sup < k - 2))
            k += 1

    result = TrussDecomposition(
        trussness=tau, support=support0, peel_rounds=rounds, level_scans=level_scans
    )
    metrics.inc("repro.truss.peel_rounds", rounds)
    metrics.inc("repro.truss.level_scans", level_scans)
    metrics.set_gauge_max("repro.truss.frontier_peak", frontier_peak)
    metrics.set_gauge("repro.truss.kmax", result.kmax)
    return result


def truss_decomposition_serial(
    graph: CSRGraph, triangles: TriangleSet | None = None
) -> TrussDecomposition:
    """Pure-Python bucket-queue peeling (Cohen's algorithm), reference.

    Processes one minimum-support edge at a time; exact but slow — use
    only on small graphs and for cross-validation of the vectorized
    variant.
    """
    if triangles is None:
        triangles = enumerate_triangles(graph)
    m = graph.num_edges
    inc = EdgeTriangleIncidence(triangles)
    sup = triangles.support().astype(np.int64)
    support0 = sup.copy()
    tau = np.full(m, 2, dtype=np.int64)
    alive_e = np.ones(m, dtype=bool)
    alive_t = np.ones(triangles.count, dtype=bool)
    mat = triangles.as_matrix()

    max_sup = int(sup.max()) if m else 0
    buckets: list[list[int]] = [[] for _ in range(max_sup + 1)]
    for e in range(m):
        buckets[int(sup[e])].append(e)

    level = 0  # current peel level = k - 2
    processed = 0
    cursor = 0
    rounds = 0
    while processed < m:
        while cursor <= max_sup and not buckets[cursor]:
            cursor += 1
        e = buckets[cursor].pop()
        if not alive_e[e] or int(sup[e]) != cursor:
            continue  # stale bucket entry (support changed since insertion)
        rounds += 1
        level = max(level, cursor)
        tau[e] = level + 2
        alive_e[e] = False
        processed += 1
        for t in inc.triangles_of(e).tolist():
            if not alive_t[t]:
                continue
            alive_t[t] = False
            for other in mat[t].tolist():
                if other != e and alive_e[other]:
                    new_sup = int(sup[other]) - 1
                    sup[other] = new_sup
                    if new_sup >= 0:
                        buckets[new_sup].append(other)
                        if new_sup < cursor:
                            cursor = new_sup
    return TrussDecomposition(trussness=tau, support=support0, peel_rounds=rounds)
