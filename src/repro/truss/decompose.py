"""Truss decomposition by support peeling.

Both implementations compute, for every edge, the largest k such that
the edge belongs to a k-truss (trussness, τ). Peeling invariant: at
level k, repeatedly discard edges whose remaining support is below
k - 2; edges discarded at level k have τ = k - 1; edges never discarded
before the graph empties at level k have τ = k - 1 as well (assigned
when they are finally peeled).

``truss_decomposition`` is the vectorized level-synchronous variant
(each sub-round peels the whole frontier at once and cascades support
decrements through dying triangles — the PKT structure); ``*_serial``
is a pure-Python bucket-queue reference used for cross-validation.

Under the process backend the two bandwidth-bound stages of every
sub-round go through the partition → privatize → reduce shape: the
support and liveness arrays live in shared memory for the whole
decomposition, frontier scans fan contiguous edge ranges out to the
persistent worker pool (each worker compacts its hits into a disjoint
slice of a shared output buffer), and the support decrements accumulate
per-worker ``bincount`` rows that the coordinator reduces with one sum —
no cross-process atomics, bit-identical trussness. Small rounds fall
back to the serial vectorized path automatically (the task round-trip
would dominate), which keeps the level-synchronous schedule unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.triangles.incidence import EdgeTriangleIncidence


@dataclass(frozen=True)
class TrussDecomposition:
    """Result of a truss decomposition.

    Attributes
    ----------
    trussness:
        ``int64[m]`` — τ(e) per edge id; 2 for triangle-free edges.
    support:
        ``int64[m]`` — initial (undamaged) support per edge.
    peel_rounds:
        Number of frontier sub-rounds the peeling took (the depth of the
        level-synchronous schedule).
    level_scans:
        Number of level-k frontier scans the outer loop performed; with
        level skipping this stays near twice the number of *populated*
        levels instead of growing with kmax across empty ones.
    """

    trussness: np.ndarray
    support: np.ndarray
    peel_rounds: int
    level_scans: int = 0

    @property
    def num_edges(self) -> int:
        return self.trussness.size

    @property
    def kmax(self) -> int:
        """Largest trussness present (2 for triangle-free graphs)."""
        return int(self.trussness.max()) if self.trussness.size else 2

    def k_classes(self) -> np.ndarray:
        """Sorted distinct trussness values ≥ 3 (the Φ_k levels)."""
        ks = np.unique(self.trussness)
        return ks[ks >= 3]

    def phi(self, k: int) -> np.ndarray:
        """Edge ids of the Φ_k set (trussness exactly k)."""
        return np.flatnonzero(self.trussness == k)

    def truss_sizes(self) -> dict[int, int]:
        """Number of edges per trussness level ≥ 3."""
        return {int(k): int((self.trussness == k).sum()) for k in self.k_classes()}


def k_truss_edge_mask(decomp: TrussDecomposition, k: int) -> np.ndarray:
    """Boolean mask of edges in the maximal k-truss (τ(e) ≥ k)."""
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    return decomp.trussness >= k


#: Frontier scans fan out only when the edge array is at least this many
#: times the backend's ``min_items`` — the scan is O(m) *every* round,
#: so the task round-trip must be amortized over a large m.
_SCAN_FANOUT_FACTOR = 8


def _w_frontier_chunk(sup_h, alive_h, lo: int, hi: int, bound: int, out_h):
    """Process-pool worker: compact frontier hits of one edge range.

    Writes the absolute edge ids whose support dropped below ``bound``
    into the worker's disjoint ``out[lo:lo+count]`` slice; returns the
    count. Concatenating the slices in worker order reproduces the
    serial ``flatnonzero`` exactly.
    """
    from repro.parallel.shm import attach

    sup = attach(sup_h)
    alive = attach(alive_h)
    idx = np.flatnonzero(alive[lo:hi] & (sup[lo:hi] < bound))
    out = attach(out_h)
    out[lo : lo + idx.size] = idx + lo
    return int(idx.size)


def _w_decrement_partial(sides_h, lo: int, hi: int, m: int, out_h, row: int):
    """Process-pool worker: privatized decrement counts for one range."""
    from repro.parallel.shm import attach

    sides = attach(sides_h)
    out = attach(out_h)
    np.copyto(out[row], np.bincount(sides[lo:hi], minlength=m))
    # worker-attributed partial: summed across tasks this equals the
    # serial path's sides.size exactly
    metrics.inc("repro.truss.support_decrements", hi - lo)
    return hi - lo


class _SharedPeelState:
    """Shared-memory mirror of the peeling state for the process backend.

    Owns the shared ``sup``/``alive`` arrays (the coordinator mutates
    them in place between rounds — workers only ever read during a
    task, so there are no races) plus the scratch buffers the two
    fan-out stages use.
    """

    def __init__(self, backend, ctx, sup: np.ndarray, alive: np.ndarray) -> None:
        self.backend = backend
        self.ctx = ctx
        self.m = sup.size
        pool = backend.pool
        self.sup, self.sup_h = pool.share("peel.sup", sup)
        self.alive, self.alive_h = pool.share("peel.alive", alive)
        self.scan_enabled = self.m >= backend.min_items * _SCAN_FANOUT_FACTOR
        if self.scan_enabled:
            self.frontier, self.frontier_h = pool.take(
                "peel.frontier", self.m, np.int64
            )

    def _ranges(self, n: int) -> list[tuple[int, int]]:
        from repro.parallel.partition import block_ranges

        return [
            (lo, hi)
            for lo, hi in block_ranges(n, self.ctx.num_workers)
            if hi > lo
        ]

    def scan_frontier(self, bound: int) -> np.ndarray:
        """``flatnonzero(alive & (sup < bound))`` via partitioned scans."""
        if not self.scan_enabled:
            return np.flatnonzero(self.alive & (self.sup < bound))
        ranges = self._ranges(self.m)
        if not ranges:
            return np.empty(0, dtype=np.int64)
        counts = self.backend.map_tasks(
            _w_frontier_chunk,
            [(self.sup_h, self.alive_h, lo, hi, bound, self.frontier_h) for lo, hi in ranges],
            ctx=self.ctx,
            work=[hi - lo for lo, hi in ranges],
            kernel="FrontierScan",
        )
        out = self.frontier
        return np.concatenate(
            [out[lo : lo + c] for (lo, _), c in zip(ranges, counts)]
        )

    def decrement(self, sides: np.ndarray) -> None:
        """``sup -= bincount(sides)`` via privatized partial rows."""
        if sides.size < self.backend.min_items:
            metrics.inc("repro.truss.support_decrements", sides.size)
            self.sup -= np.bincount(sides, minlength=self.m)
            return
        pool = self.backend.pool
        _, sides_h = pool.share("peel.sides", sides)
        ranges = self._ranges(sides.size)
        partials, out_h = pool.take("peel.partials", (len(ranges), self.m), np.int64)
        self.backend.map_tasks(
            _w_decrement_partial,
            [(sides_h, lo, hi, self.m, out_h, row) for row, (lo, hi) in enumerate(ranges)],
            ctx=self.ctx,
            work=[hi - lo for lo, hi in ranges],
            kernel="SupportDecrement",
        )
        self.sup -= partials.sum(axis=0)


def truss_decomposition(
    graph: CSRGraph,
    triangles: TriangleSet | None = None,
    ctx: ExecutionContext | None = None,
    *,
    policy=None,
) -> TrussDecomposition:
    """Vectorized level-synchronous truss decomposition.

    Each sub-round removes the entire current frontier (edges whose
    support dropped below k - 2), kills every triangle containing a
    removed edge, and decrements the support of the surviving member
    edges — one ``bincount`` scatter per sub-round. The frontier rounds
    are the barrier-synchronized rounds recorded for the machine model.
    ``policy`` is a deprecated alias for ``ctx``.
    """
    from repro.parallel.shm import active_process_backend
    from repro.triangles.support import parallel_support

    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    if triangles is None:
        triangles = enumerate_triangles(graph, ctx=ctx)
    m = graph.num_edges
    with ctx.region(
        "TrussDecomp", work=0, rounds=0, intensity="memory"
    ) as handle:
        inc = EdgeTriangleIncidence(triangles, ctx=ctx)
        sup = parallel_support(triangles, ctx, dtype=np.int64)
        support0 = sup.copy()
        tau = np.full(m, 2, dtype=np.int64)
        alive_e = np.ones(m, dtype=bool)
        alive_t = np.ones(triangles.count, dtype=bool)
        e_uv, e_uw, e_vw = triangles.e_uv, triangles.e_uw, triangles.e_vw
        indptr, tri_ids = inc.indptr, inc.tri_ids

        backend = active_process_backend(ctx, m)
        shared = None
        if backend is not None:
            shared = _SharedPeelState(backend, ctx, sup, alive_e)
            sup, alive_e = shared.sup, shared.alive

        def scan(bound: int) -> np.ndarray:
            if shared is not None:
                return shared.scan_frontier(bound)
            return np.flatnonzero(alive_e & (sup < bound))

        rounds = 0
        level_scans = 0
        k = 3
        remaining = m
        frontier_peak = 0
        while remaining > 0:
            level_scans += 1
            frontier = scan(k - 2)
            if frontier.size == 0:
                # Skip empty levels: the next peel happens at the level
                # where the minimum surviving support s first satisfies
                # s < k - 2 — i.e. k = s + 3, assigning those edges
                # τ = s + 2. Incrementing k one level at a time here is
                # pure waste on graphs with large trussness gaps.
                s_min = int(sup[alive_e].min())
                k = max(k + 1, s_min + 3)
                continue
            while frontier.size:
                rounds += 1
                frontier_peak = max(frontier_peak, int(frontier.size))
                handle.add_round(int(frontier.size))
                tau[frontier] = k - 1
                alive_e[frontier] = False
                remaining -= frontier.size
                # Triangles touched by the frontier (with repetition when a
                # triangle loses 2–3 edges at once).
                counts = indptr[frontier + 1] - indptr[frontier]
                total = int(counts.sum())
                if total:
                    cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
                    local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
                    touched = tri_ids[np.repeat(indptr[frontier], counts) + local]
                    dying = np.unique(touched[alive_t[touched]])
                    alive_t[dying] = False
                    # Decrement surviving member edges of each dying triangle
                    # exactly once.
                    sides = np.concatenate([e_uv[dying], e_uw[dying], e_vw[dying]])
                    sides = sides[alive_e[sides]]
                    if sides.size:
                        if shared is not None:
                            shared.decrement(sides)
                        else:
                            metrics.inc("repro.truss.support_decrements", sides.size)
                            sup -= np.bincount(sides, minlength=m)
                frontier = scan(k - 2)
            k += 1

    result = TrussDecomposition(
        trussness=tau, support=support0, peel_rounds=rounds, level_scans=level_scans
    )
    metrics.inc("repro.truss.peel_rounds", rounds)
    metrics.inc("repro.truss.level_scans", level_scans)
    metrics.set_gauge_max("repro.truss.frontier_peak", frontier_peak)
    metrics.set_gauge("repro.truss.kmax", result.kmax)
    return result


def truss_decomposition_serial(
    graph: CSRGraph, triangles: TriangleSet | None = None
) -> TrussDecomposition:
    """Pure-Python bucket-queue peeling (Cohen's algorithm), reference.

    Processes one minimum-support edge at a time; exact but slow — use
    only on small graphs and for cross-validation of the vectorized
    variant.
    """
    if triangles is None:
        triangles = enumerate_triangles(graph)
    m = graph.num_edges
    inc = EdgeTriangleIncidence(triangles)
    sup = triangles.support().astype(np.int64)
    support0 = sup.copy()
    tau = np.full(m, 2, dtype=np.int64)
    alive_e = np.ones(m, dtype=bool)
    alive_t = np.ones(triangles.count, dtype=bool)
    mat = triangles.as_matrix()

    max_sup = int(sup.max()) if m else 0
    buckets: list[list[int]] = [[] for _ in range(max_sup + 1)]
    for e in range(m):
        buckets[int(sup[e])].append(e)

    level = 0  # current peel level = k - 2
    processed = 0
    cursor = 0
    rounds = 0
    while processed < m:
        while cursor <= max_sup and not buckets[cursor]:
            cursor += 1
        e = buckets[cursor].pop()
        if not alive_e[e] or int(sup[e]) != cursor:
            continue  # stale bucket entry (support changed since insertion)
        rounds += 1
        level = max(level, cursor)
        tau[e] = level + 2
        alive_e[e] = False
        processed += 1
        for t in inc.triangles_of(e).tolist():
            if not alive_t[t]:
                continue
            alive_t[t] = False
            for other in mat[t].tolist():
                if other != e and alive_e[other]:
                    new_sup = int(sup[other]) - 1
                    sup[other] = new_sup
                    if new_sup >= 0:
                        buckets[new_sup].append(other)
                        if new_sup < cursor:
                            cursor = new_sup
    return TrussDecomposition(trussness=tau, support=support0, peel_rounds=rounds)
