"""Deep semantic verification of an EquiTruss index against its graph.

``EquiTrussIndex.validate()`` checks structural integrity;
:func:`verify_index_semantics` checks the *definitions*:

* supernodes are k-triangle-connected (Definition 8.2): the hook-pair
  graph restricted to each supernode is connected;
* supernodes are maximal (Definition 8.3): no hook pair crosses two
  different supernodes;
* superedges are exactly the triangle-certified pairs of Definition 9 /
  Algorithm 3: sound (every superedge has a certifying triangle) and
  complete (every certified pair appears);
* trussness matches an independent decomposition.

Independent of the construction code paths: derives everything from a
fresh triangle enumeration.
"""

from __future__ import annotations

import numpy as np

from repro.cc.core import minlabel_hook_rounds
from repro.equitruss.index import EquiTrussIndex
from repro.equitruss.levels import triangle_tables
from repro.errors import IndexIntegrityError
from repro.graph.csr import CSRGraph
from repro.triangles.enumerate import enumerate_triangles
from repro.truss.decompose import truss_decomposition


def verify_index_semantics(
    graph: CSRGraph, index: EquiTrussIndex, ctx=None
) -> None:
    """Raise :class:`IndexIntegrityError` on any definition violation.

    ``ctx`` (an optional :class:`~repro.parallel.context.ExecutionContext`)
    only configures execution of the re-derivation — the checks
    themselves are dtype-independent.
    """
    index.validate()
    tri = enumerate_triangles(graph, ctx=ctx)
    decomp = truss_decomposition(graph, triangles=tri, ctx=ctx)
    if not np.array_equal(decomp.trussness, index.trussness):
        raise IndexIntegrityError("index trussness disagrees with decomposition")

    hooks, ses, _ = triangle_tables(tri, decomp.trussness)
    sn = index.edge_supernode

    # Maximality: a hook pair (same k, triangle-connected in the k-truss)
    # must never span two supernodes.
    if hooks.shape[0]:
        if np.any(sn[hooks[:, 0]] != sn[hooks[:, 1]]):
            raise IndexIntegrityError(
                "k-triangle-connected edges split across supernodes (Def. 8.3)"
            )

    # Connectivity: within each supernode, the hook pairs connect all
    # member edges (Def. 8.2). Recompute CC on hook pairs and compare
    # partitions.
    comp = np.arange(graph.num_edges, dtype=np.int64)
    if hooks.shape[0]:
        minlabel_hook_rounds(comp, hooks[:, 0], hooks[:, 1], ctx=ctx)
    member = index.trussness >= 3
    roots = comp[member]
    sns = sn[member]
    # bijection between CC roots and supernode ids
    pairs = set(zip(roots.tolist(), sns.tolist()))
    if len({r for r, _ in pairs}) != len(pairs) or len({s for _, s in pairs}) != len(pairs):
        raise IndexIntegrityError(
            "supernodes are not the connected components of k-triangle "
            "connectivity (Def. 8.2)"
        )

    # Superedges: sound and complete w.r.t. the certified candidate pairs.
    expected = set()
    for lo, hi in zip(sn[ses[:, 0]].tolist(), sn[ses[:, 1]].tolist()):
        expected.add((min(lo, hi), max(lo, hi)))
    got = {(int(a), int(b)) for a, b in index.superedges.tolist()}
    if got != expected:
        missing = expected - got
        extra = got - expected
        raise IndexIntegrityError(
            f"superedge set mismatch: missing={sorted(missing)[:5]} "
            f"extra={sorted(extra)[:5]} (Def. 9)"
        )
