"""SpEdge and SmGraph kernels: superedge generation and merge.

``generate_superedges`` is Algorithm 3: for the level being processed,
each (lo, hi) candidate resolves to the component-root pair
(Π(lo), Π(hi)) and is appended to a worker-local subset (workers own
disjoint chunks, so no synchronization is needed — the paper's
``sp_edges[tid]`` vectors).

``merge_supergraph`` is Algorithm 4: every worker hashes its local
superedges to a destination partition, each partition is sorted and
deduplicated independently, and the partitions concatenate into the
final superedge list.

Pair keys (``lo · span + hi``) are always computed in int64 regardless
of the component array's dtype: with ``span ≈ m`` the product wraps an
int32 long before the ids themselves do (and NumPy's NEP 50 promotion
keeps ``int32_array * python_int`` at int32 — the cast must be
explicit).
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.parallel.partition import block_ranges
from repro.utils.validation import check_positive


def _w_superedge_chunk(comp_h, lo_h, hi_h, lo: int, hi: int, span: int):
    """Process-pool worker: one worker's deduplicated root-pair chunk.

    ``span`` is the coordinator-chosen key stride (``comp.size``, an
    upper bound on every root id). The encode/decode round trip is
    span-invariant for any span greater than the largest root, so the
    decoded pairs match the serial path bit for bit even though the
    serial path uses the data-dependent ``max + 1``.
    """
    from repro.parallel.shm import attach, export_array

    comp = attach(comp_h)
    a = comp[attach(lo_h)[lo:hi]]
    b = comp[attach(hi_h)[lo:hi]]
    keys = np.minimum(a, b).astype(np.int64) * span + np.maximum(a, b)
    local = np.unique(keys)  # the thread-local set
    # worker-attributed partial: summed across tasks this equals the
    # serial path's se_lo.size exactly
    metrics.inc("repro.equitruss.superedge_candidates", hi - lo)
    return export_array(np.stack([local // span, local % span], axis=1))


def generate_superedges(
    comp: np.ndarray,
    se_lo: np.ndarray,
    se_hi: np.ndarray,
    num_workers: int = 1,
    worker_subsets: list[list[np.ndarray]] | None = None,
    ctx: ExecutionContext | None = None,
) -> list[list[np.ndarray]]:
    """Resolve candidates to root pairs, appended per worker (Algorithm 3).

    Each worker owns a contiguous chunk of the candidates and inserts
    into its local ``set`` — duplicates within a worker's chunk collapse
    at insertion time, exactly like the paper's
    ``vector<set<compID1, compID2>>``. Returns ``worker_subsets`` — one
    list of (n_i, 2) deduplicated arrays per worker — creating it on
    first call so per-level invocations accumulate.
    """
    check_positive("num_workers", num_workers)
    ctx = ExecutionContext.ensure(ctx)
    if worker_subsets is None:
        worker_subsets = [[] for _ in range(num_workers)]
    ctx.add_round(max(int(se_lo.size), 1))
    if se_lo.size == 0:
        return worker_subsets

    from repro.parallel.shm import active_process_backend, import_array

    backend = active_process_backend(ctx, se_lo.size)
    if backend is not None:
        pool = backend.pool
        comp_h = pool.share("se.comp", comp)[1]
        cand_lo_h = pool.share("se.cand_lo", se_lo)[1]
        cand_hi_h = pool.share("se.cand_hi", se_hi)[1]
        span = comp.size  # span-invariant stride, > every root id
        tids, tasks = [], []
        for tid, (lo, hi) in enumerate(block_ranges(se_lo.size, num_workers)):
            if hi > lo:
                tids.append(tid)
                tasks.append((comp_h, cand_lo_h, cand_hi_h, lo, hi, span))
        handles = backend.map_tasks(
            _w_superedge_chunk,
            tasks,
            ctx=ctx,
            work=[t[4] - t[3] for t in tasks],
            kernel="SpEdge",
        )
        for tid, h in zip(tids, handles):
            worker_subsets[tid].append(import_array(h))
        return worker_subsets

    metrics.inc("repro.equitruss.superedge_candidates", int(se_lo.size))
    ws = ctx.workspace
    a = ws.gather("se.a", comp, se_lo)
    b = ws.gather("se.b", comp, se_hi)
    lo_id = ws.take("se.lo", a.size, comp.dtype)
    hi_id = ws.take("se.hi", a.size, comp.dtype)
    np.minimum(a, b, out=lo_id)
    np.maximum(a, b, out=hi_id)
    span = int(hi_id.max()) + 1
    keys = lo_id.astype(np.int64) * span + hi_id
    for tid, (lo, hi) in enumerate(block_ranges(keys.size, num_workers)):
        if hi > lo:
            local = np.unique(keys[lo:hi])  # the thread-local set
            worker_subsets[tid].append(
                np.stack([local // span, local % span], axis=1)
            )
    return worker_subsets


def merge_supergraph(
    worker_subsets: list[list[np.ndarray]],
    num_workers: int | None = None,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Hash-partitioned duplicate-free merge (Algorithm 4).

    Returns the final ``int64[SE, 2]`` root-pair array, sorted by the
    canonical (min, max) key.
    """
    num_workers = num_workers or max(len(worker_subsets), 1)
    ctx = ExecutionContext.ensure(ctx)
    locals_: list[np.ndarray] = []
    for subset in worker_subsets:
        if subset:
            locals_.append(np.concatenate(subset))
    if not locals_:
        return np.empty((0, 2), dtype=np.int64)
    all_pairs = np.concatenate(locals_)
    lo = np.minimum(all_pairs[:, 0], all_pairs[:, 1]).astype(np.int64)
    hi = np.maximum(all_pairs[:, 0], all_pairs[:, 1]).astype(np.int64)
    span = int(hi.max()) + 1 if hi.size else 1
    keys = lo * np.int64(span) + hi
    ctx.add_round(int(keys.size))
    # hash-partition by destination worker; each partition dedups locally
    dest = keys % num_workers
    merged_parts: list[np.ndarray] = []
    for t in range(num_workers):
        part = keys[dest == t]
        if part.size:
            merged_parts.append(np.unique(part))
    if not merged_parts:
        return np.empty((0, 2), dtype=np.int64)
    final_keys = np.sort(np.concatenate(merged_parts))
    return np.stack([final_keys // span, final_keys % span], axis=1)
