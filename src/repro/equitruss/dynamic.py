"""Dynamic EquiTruss: incremental index maintenance under edge updates.

The EquiTruss index exists to serve *online* community search, so the
natural extension (maintained in Akbas & Zhao's original formulation,
out of scope for the ICPP paper's parallel construction) is keeping it
correct as the graph changes without full reconstruction.

Soundness argument for the affected region
------------------------------------------
Support changes and peeling cascades propagate only through shared
triangles, so trussness can change only inside the *triangle-connected
component* (unrestricted — no k threshold) containing a modified edge:

* a triangle's three edges are pairwise triangle-connected, hence every
  triangle lies within one component;
* therefore the truss peeling of a component depends only on that
  component's own triangles;
* an inserted edge only creates triangles containing itself; those
  triangles may *join* previously separate components — the affected
  region is the union of the old components touched by any new triangle
  (plus the new edges);
* a deleted edge only destroys triangles inside its own old component.

Recomputing trussness on the subgraph induced by the affected edge set
therefore reproduces exactly the global values, and every other edge's
trussness is reused. Triangle triples are patched (appended for
insertions / filtered for deletions) instead of re-enumerated, so an
update costs O(local triangles + index rebuild) instead of
O(global triangle enumeration + global peeling).

The summary graph is then rebuilt from the patched triangles + merged
trussness with the ordinary parallel pipeline (its cost is small next
to Support/TrussDecomp — Figure 2). Tests validate every update
sequence against a from-scratch rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cc.core import minlabel_hook_rounds
from repro.equitruss.index import EquiTrussIndex
from repro.equitruss.pipeline import build_index
from repro.errors import EdgeNotFoundError, InvalidParameterError
from repro.graph.builder import build_edgelist
from repro.graph.csr import CSRGraph
from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.truss.decompose import TrussDecomposition, truss_decomposition


@dataclass(frozen=True)
class UpdateStats:
    """What the last update actually touched."""

    num_inserted: int
    num_removed: int
    affected_edges: int
    total_edges: int

    @property
    def affected_fraction(self) -> float:
        return self.affected_edges / self.total_edges if self.total_edges else 0.0


class DynamicEquiTruss:
    """An EquiTruss index that stays correct under edge updates.

    ``triangles``/``trussness``/``index`` may seed the instance from
    already-computed state (the store's journal-replay path builds one
    over an attached, read-only index without re-peeling the graph);
    when omitted they are computed from scratch. A seeded ``trussness``
    is copied into a private writable array.
    """

    def __init__(
        self,
        graph: CSRGraph,
        variant: str = "afforest",
        *,
        triangles: TriangleSet | None = None,
        trussness: np.ndarray | None = None,
        index: EquiTrussIndex | None = None,
    ) -> None:
        self.variant = variant
        self.graph = graph
        self.triangles = (
            triangles if triangles is not None else enumerate_triangles(graph)
        )
        if trussness is None:
            decomp = truss_decomposition(graph, triangles=self.triangles)
            trussness = decomp.trussness
        self.trussness = np.array(trussness, dtype=np.int64)
        self._tri_comp = self._triangle_components()
        self.index = index if index is not None else self._rebuild_index()
        self.last_update: UpdateStats | None = None
        self._invalidation_hooks: list = []
        self._journal = None

    # ------------------------------------------------------------------
    def publish_to(self, journal) -> None:
        """Mirror every update batch into a store journal.

        ``journal`` is a :class:`~repro.store.journal.StoreJournal`;
        after registration each ``insert_edges``/``remove_edges`` batch
        is durably appended (with its generation number) before the
        update returns, so attached readers of the companion store file
        can replay exactly the deltas this instance applied.
        """
        self._journal = journal

    def _publish(self, op: str, us: np.ndarray, vs: np.ndarray) -> None:
        if self._journal is not None:
            self._journal.append(op, us, vs)

    # ------------------------------------------------------------------
    def add_invalidation_hook(self, hook) -> None:
        """Register ``hook(new_index)`` to run after every edge update.

        This is how derived state (the serving layer's component tables
        and result caches — see :meth:`repro.serve.QueryEngine.attach`)
        stays consistent with the index: any answer computed from the
        pre-update index must be dropped before the update returns.
        """
        self._invalidation_hooks.append(hook)

    def _notify_invalidation(self) -> None:
        for hook in self._invalidation_hooks:
            hook(self.index)

    # ------------------------------------------------------------------
    def _triangle_components(self) -> np.ndarray:
        """Unrestricted triangle-connectivity components over edge ids."""
        comp = np.arange(self.graph.num_edges, dtype=np.int64)
        tri = self.triangles
        if tri.count:
            a = np.concatenate([tri.e_uv, tri.e_uv, tri.e_uw])
            b = np.concatenate([tri.e_uw, tri.e_vw, tri.e_vw])
            minlabel_hook_rounds(comp, a, b)
        return comp

    def _rebuild_index(self) -> EquiTrussIndex:
        decomp = TrussDecomposition(
            trussness=self.trussness,
            support=self.triangles.support(),
            peel_rounds=0,
        )
        return build_index(
            self.graph, self.variant, decomp=decomp, triangles=self.triangles
        ).index

    # ------------------------------------------------------------------
    def insert_edges(self, us, vs) -> UpdateStats:
        """Insert undirected edges; duplicates of existing edges are ignored."""
        us = np.asarray(us, dtype=np.int64).ravel()
        vs = np.asarray(vs, dtype=np.int64).ravel()
        if us.shape != vs.shape:
            raise InvalidParameterError("endpoint arrays must align")
        old_edges = self.graph.edges
        n = max(
            old_edges.num_vertices,
            int(us.max(initial=-1)) + 1,
            int(vs.max(initial=-1)) + 1,
        )
        new_edges = build_edgelist(
            np.concatenate([old_edges.u, us]),
            np.concatenate([old_edges.v, vs]),
            num_vertices=n,
        )
        new_graph = CSRGraph.from_edgelist(new_edges)
        # old edge id -> new edge id (all old edges survive insertion)
        old_to_new = new_edges.edge_ids(old_edges.u, old_edges.v)
        is_old = np.zeros(new_edges.num_edges, dtype=bool)
        is_old[old_to_new] = True
        fresh_ids = np.flatnonzero(~is_old)
        num_inserted = fresh_ids.size

        # triangles created by the fresh edges (each new triangle contains
        # at least one fresh edge); found by local intersection
        new_triples = _triangles_of_edges(new_graph, fresh_ids)
        # keep only triples not consisting of... every new triple has a
        # fresh edge by construction; dedupe triples discovered from
        # multiple fresh member edges
        if new_triples.shape[0]:
            canon = np.sort(new_triples, axis=1)
            _, first = np.unique(canon, axis=0, return_index=True)
            new_triples = new_triples[np.sort(first)]

        # remap old triples into new ids and append the new ones
        tri = self.triangles
        old_triples = np.stack(
            [old_to_new[tri.e_uv], old_to_new[tri.e_uw], old_to_new[tri.e_vw]],
            axis=1,
        ) if tri.count else np.empty((0, 3), dtype=np.int64)
        all_triples = np.concatenate([old_triples, new_triples])

        # affected region: fresh edges + every old component touched by a
        # new triangle
        affected = np.zeros(new_edges.num_edges, dtype=bool)
        affected[fresh_ids] = True
        if new_triples.size:
            members = new_triples.ravel()
            members = members[is_old[members]]
            if members.size:
                # map back to old ids to look up old components
                new_to_old = np.full(new_edges.num_edges, -1, dtype=np.int64)
                new_to_old[old_to_new] = np.arange(old_edges.num_edges)
                comps = np.unique(self._tri_comp[new_to_old[members]])
                comp_hit = np.zeros(old_edges.num_edges, dtype=bool)
                comp_hit[np.isin(self._tri_comp, comps)] = True
                affected[old_to_new[comp_hit]] = True

        # merge trussness: reuse old values, recompute the affected region
        tau = np.full(new_edges.num_edges, 2, dtype=np.int64)
        tau[old_to_new] = self.trussness
        tau = _recompute_region(new_graph, tau, affected)

        self.graph = new_graph
        self.triangles = TriangleSet(
            e_uv=np.ascontiguousarray(all_triples[:, 0]),
            e_uw=np.ascontiguousarray(all_triples[:, 1]),
            e_vw=np.ascontiguousarray(all_triples[:, 2]),
            num_edges=new_edges.num_edges,
        )
        self.trussness = tau
        self._tri_comp = self._triangle_components()
        self.index = self._rebuild_index()
        self.last_update = UpdateStats(
            num_inserted=num_inserted,
            num_removed=0,
            affected_edges=int(affected.sum()),
            total_edges=new_edges.num_edges,
        )
        self._publish("insert", us, vs)
        self._notify_invalidation()
        return self.last_update

    # ------------------------------------------------------------------
    def remove_edges(self, us, vs) -> UpdateStats:
        """Remove undirected edges; missing edges raise EdgeNotFoundError."""
        us = np.asarray(us, dtype=np.int64).ravel()
        vs = np.asarray(vs, dtype=np.int64).ravel()
        old_edges = self.graph.edges
        victim_ids = np.unique(old_edges.edge_ids(us, vs))
        if victim_ids.size == 0:
            raise EdgeNotFoundError("no edges to remove")
        keep = np.ones(old_edges.num_edges, dtype=bool)
        keep[victim_ids] = False
        new_edges = old_edges.subset(keep)
        new_graph = CSRGraph.from_edgelist(new_edges)
        old_to_new = np.full(old_edges.num_edges, -1, dtype=np.int64)
        old_to_new[np.flatnonzero(keep)] = np.arange(new_edges.num_edges)

        # affected region (in old ids): the old components of the victims
        comps = np.unique(self._tri_comp[victim_ids])
        affected_old = np.isin(self._tri_comp, comps)
        affected = np.zeros(new_edges.num_edges, dtype=bool)
        survivors = affected_old & keep
        affected[old_to_new[np.flatnonzero(survivors)]] = True

        # drop triples containing a victim, remap the rest
        tri = self.triangles
        if tri.count:
            triples = np.stack([tri.e_uv, tri.e_uw, tri.e_vw], axis=1)
            alive = keep[triples].all(axis=1)
            triples = old_to_new[triples[alive]]
        else:
            triples = np.empty((0, 3), dtype=np.int64)

        tau = self.trussness[keep].copy()
        tau = _recompute_region(new_graph, tau, affected)

        self.graph = new_graph
        self.triangles = TriangleSet(
            e_uv=np.ascontiguousarray(triples[:, 0]),
            e_uw=np.ascontiguousarray(triples[:, 1]),
            e_vw=np.ascontiguousarray(triples[:, 2]),
            num_edges=new_edges.num_edges,
        )
        self.trussness = tau
        self._tri_comp = self._triangle_components()
        self.index = self._rebuild_index()
        self.last_update = UpdateStats(
            num_inserted=0,
            num_removed=int(victim_ids.size),
            affected_edges=int(affected.sum()),
            total_edges=new_edges.num_edges,
        )
        self._publish("remove", us, vs)
        self._notify_invalidation()
        return self.last_update


def _triangles_of_edges(graph: CSRGraph, eids: np.ndarray) -> np.ndarray:
    """All triangles containing at least one of the given edges, as
    ``int64[T, 3]`` edge-id triples (first column = the seed edge)."""
    if eids.size == 0:
        return np.empty((0, 3), dtype=np.int64)
    deg = graph.degrees()
    eu, ev = graph.edges.u[eids], graph.edges.v[eids]
    swap = deg[eu] > deg[ev]
    x = np.where(swap, ev, eu)
    y = np.where(swap, eu, ev)
    counts = deg[x]
    total = int(counts.sum())
    if total == 0:
        return np.empty((0, 3), dtype=np.int64)
    indptr, indices, slot_eids = graph.indptr, graph.indices, graph.edge_ids
    cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
    local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
    w_pos = np.repeat(indptr[x], counts) + local
    w = indices[w_pos]
    y_rep = np.repeat(y, counts)
    slots = graph.locate_slots(y_rep, w)
    found = slots >= 0
    e_seed = np.repeat(eids, counts)[found]
    e1 = slot_eids[w_pos[found]]
    e2 = slot_eids[slots[found]]
    real = (e1 != e_seed) & (e2 != e_seed)
    return np.stack([e_seed[real], e1[real], e2[real]], axis=1)


def _recompute_region(
    graph: CSRGraph, tau: np.ndarray, affected: np.ndarray
) -> np.ndarray:
    """Recompute trussness of the affected edge-induced subgraph in place."""
    ids = np.flatnonzero(affected)
    if ids.size == 0:
        return tau
    sub = CSRGraph.from_edgelist(graph.edges.subset(ids))
    local = truss_decomposition(sub)
    tau = tau.copy()
    tau[ids] = local.trussness
    return tau
