"""Kernel naming and per-kernel timing breakdowns.

The paper decomposes index construction into the kernels reported in
Figures 2, 4, and 8. We use the same names so benchmark output lines up
with the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.instrument import Instrumentation

#: Kernel names in the paper's Figure 4 order.
SUPPORT = "Support"
TRUSS_DECOMP = "TrussDecomp"
INIT = "Init"
SP_NODE = "SpNode"
SP_EDGE = "SpEdge"
SM_GRAPH = "SmGraph"
SP_NODE_REMAP = "SpNodeRemap"

#: Index-construction kernels (Fig. 4); TrussDecomp is a pipeline
#: prerequisite reported separately (Fig. 2).
KERNELS = (SUPPORT, INIT, SP_NODE, SP_EDGE, SM_GRAPH, SP_NODE_REMAP)


@dataclass
class KernelBreakdown:
    """Seconds per kernel extracted from an instrumentation trace."""

    seconds: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_trace(cls, trace: Instrumentation) -> "KernelBreakdown":
        return cls(seconds=trace.by_name())

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def percentage(self, kernel: str) -> float:
        total = self.total
        return 100.0 * self.seconds.get(kernel, 0.0) / total if total else 0.0

    def index_construction_seconds(self) -> float:
        """Combined SpNode + SpEdge + SmGraph time (the paper's Table 4
        "major computational phases")."""
        return sum(self.seconds.get(k, 0.0) for k in (SP_NODE, SP_EDGE, SM_GRAPH))

    def rows(self) -> list[tuple[str, float, float]]:
        """(kernel, seconds, percent) rows in first-seen order."""
        return [
            (name, secs, self.percentage(name))
            for name, secs in self.seconds.items()
        ]
