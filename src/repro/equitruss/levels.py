"""Per-trussness-level structures derived from triangles + trussness.

The edge-induced graph of the paper's key observation is materialized
here. For a triangle with edge trussness values (τa, τb, τc) and
minimum κ = min(τa, τb, τc):

* every pair of member edges whose trussness both equal κ is a *hook
  pair* at level κ — the two edges are κ-triangle-connected inside the
  maximal κ-truss (the third edge has τ ≥ κ by construction), so the
  supernode CC must union them (Definition 8);
* every member edge with τ > κ contributes a *superedge candidate*
  (low = a κ edge of the triangle, high = the τ > κ edge), matching
  Algorithm 3's "create superedge downward" rule (Definition 9).

Pairs whose trussness values are equal but above the triangle minimum do
**not** hook: the triangle is absent from their maximal k-truss, exactly
the τ(u,w) ≥ k ∧ τ(v,w) ≥ k guard of Algorithm 1 line 21.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.triangles.enumerate import TriangleSet


@dataclass(frozen=True)
class LevelStructures:
    """Hook pairs and superedge candidates grouped by trussness level.

    ``hook_a/hook_b/hook_k`` are parallel arrays sorted by ``hook_k``
    (the triangle minimum κ). ``se_lo/se_hi/se_k`` hold superedge
    candidates: ``lo`` is an edge at the triangle minimum, ``hi`` the
    edge with larger trussness, and ``se_k = τ(hi)`` — the level at
    which Algorithm 3 emits the superedge (iterating e ∈ Φ_k and linking
    *downward*), by which time both endpoints' components are settled.
    ``levels`` holds the ascending distinct populated trussness values.
    """

    hook_a: np.ndarray
    hook_b: np.ndarray
    hook_k: np.ndarray
    se_lo: np.ndarray
    se_hi: np.ndarray
    se_k: np.ndarray
    levels: np.ndarray
    #: optional edge-graph CSR (indptr over all edge ids, neighbor edge
    #: ids) — since hook pairs join only equal-trussness edges, this is
    #: the disjoint union of every level's edge graph. Built when the
    #: Afforest variant asks for it.
    adj_indptr: np.ndarray | None = None
    adj_neighbors: np.ndarray | None = None

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self.adj_indptr is None or self.adj_neighbors is None:
            raise InvalidParameterError(
                "level structures were built without adjacency "
                "(pass with_adjacency=True)"
            )
        return self.adj_indptr, self.adj_neighbors

    def hook_pairs(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = _bounds(self.hook_k, k)
        return self.hook_a[lo:hi], self.hook_b[lo:hi]

    def superedge_candidates(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = _bounds(self.se_k, k)
        return self.se_lo[lo:hi], self.se_hi[lo:hi]

    @property
    def num_hook_pairs(self) -> int:
        return self.hook_a.size

    @property
    def num_superedge_candidates(self) -> int:
        return self.se_lo.size

    @property
    def nbytes(self) -> int:
        """Bytes held by all level tables (and the adjacency, if built)."""
        from repro.parallel.context import array_nbytes

        return array_nbytes(
            self.hook_a,
            self.hook_b,
            self.hook_k,
            self.se_lo,
            self.se_hi,
            self.se_k,
            self.levels,
            self.adj_indptr,
            self.adj_neighbors,
        )


def _bounds(sorted_k: np.ndarray, k: int) -> tuple[int, int]:
    lo = int(np.searchsorted(sorted_k, k, side="left"))
    hi = int(np.searchsorted(sorted_k, k, side="right"))
    return lo, hi


def _cat(parts: list) -> np.ndarray:
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def _triangle_columns(
    triangles: TriangleSet, trussness: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Columnar raw level tables: the fused Init's working layout.

    Returns ``(hook_a, hook_b, hook_k, se_lo, se_hi, se_k, kmin)`` as
    flat int64 arrays. Same element sequences as the stacked
    :func:`triangle_tables` columns — part order and in-part order are
    identical — but built column-wise: the three ``τ == κ`` masks are
    computed once and reused (``τ > κ`` is their complement, since
    ``τ ≥ κ`` by construction), and no (N, 3) row-major intermediate is
    ever materialized, so the later per-level sort can take each column
    with a cheap 1-D gather instead of reordering packed rows.
    """
    if trussness.shape[0] != triangles.num_edges:
        raise InvalidParameterError("trussness length must equal num_edges")
    sides = (triangles.e_uv, triangles.e_uw, triangles.e_vw)
    taus = tuple(trussness[s] for s in sides)
    kmin = np.minimum(np.minimum(taus[0], taus[1]), taus[2])
    at_min = tuple(t == kmin for t in taus)

    hook_a, hook_b, hook_k = [], [], []
    for i, j in ((0, 1), (0, 2), (1, 2)):
        mask = at_min[i] & at_min[j]
        if mask.any():
            hook_a.append(sides[i][mask])
            hook_b.append(sides[j][mask])
            hook_k.append(kmin[mask])

    se_lo, se_hi, se_k = [], [], []
    for hi_ix in range(3):
        above = ~at_min[hi_ix]
        if not above.any():
            continue
        # pick a representative κ-edge of the triangle as the low endpoint;
        # when two sides sit at κ both are emitted (they land in the same
        # supernode, so the superedge dedups — same as Algorithm 3).
        for lo_ix in range(3):
            if lo_ix == hi_ix:
                continue
            mask = above & at_min[lo_ix]
            if mask.any():
                se_lo.append(sides[lo_ix][mask])
                se_hi.append(sides[hi_ix][mask])
                se_k.append(taus[hi_ix][mask])
    return (
        _cat(hook_a), _cat(hook_b), _cat(hook_k),
        _cat(se_lo), _cat(se_hi), _cat(se_k), kmin,
    )


def triangle_tables(
    triangles: TriangleSet, trussness: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Raw (unsorted) hook pairs, superedge candidates, and triangle minima.

    Returns ``(hooks, ses, kmin)`` where ``hooks`` is ``int64[H, 3]``
    columns (a, b, κ), ``ses`` is ``int64[S, 3]`` columns
    (lo, hi, τ(hi)), and ``kmin`` the per-triangle minimum trussness.
    Exposed separately so the Baseline variant can re-derive pairs per
    round, as Algorithm 2 re-computes common neighbors inside its
    hooking loop. This is a stacking view over the columnar
    :func:`_triangle_columns` builder, which the build pipeline uses
    directly to avoid the (N, 3) packing.
    """
    ha, hb, hk, slo, shi, sk, kmin = _triangle_columns(triangles, trussness)
    hooks = np.stack([ha, hb, hk], axis=1) if ha.size else np.empty(
        (0, 3), dtype=np.int64
    )
    ses = np.stack([slo, shi, sk], axis=1) if slo.size else np.empty(
        (0, 3), dtype=np.int64
    )
    return hooks, ses, kmin


def build_level_structures(
    triangles: TriangleSet,
    trussness: np.ndarray,
    with_adjacency: bool = False,
    ctx=None,
) -> LevelStructures:
    """Sort and group the raw tables by level (the C-Optimal layout).

    ``with_adjacency=True`` additionally materializes the edge-graph CSR
    for Afforest's neighbor sampling. With a ``ctx`` whose dtype policy
    narrows, the edge-id columns (the dominant tables) are stored in the
    context's edge dtype; the ``k`` columns stay int64 (trussness values
    are tiny either way and compare against Python ints).
    """
    ha, hb, hk, slo, shi, sk, _ = _triangle_columns(triangles, trussness)
    h_order = np.argsort(hk, kind="stable")
    ha, hb, hk = ha[h_order], hb[h_order], hk[h_order]
    s_order = np.argsort(sk, kind="stable")
    slo, shi, sk = slo[s_order], shi[s_order], sk[s_order]
    levels = np.unique(np.concatenate([hk, sk, _populated_levels(trussness)]))
    if ctx is not None:
        from repro.parallel.context import ExecutionContext

        edge_dt = ExecutionContext.ensure(ctx).edge_dtype(triangles.num_edges)
    else:
        edge_dt = np.dtype(np.int64)
    adj_indptr = adj_neighbors = None
    if with_adjacency:
        from repro.cc.core import pairs_to_csr

        # indptr values reach 2·|hooks|; neighbors hold edge ids < m.
        if ctx is not None:
            from repro.parallel.context import ExecutionContext

            adj_dt = ExecutionContext.ensure(ctx).dtype.resolve(
                max(triangles.num_edges, 2 * int(ha.size), 1)
            )
        else:
            adj_dt = np.dtype(np.int64)
        adj_indptr, adj_neighbors = pairs_to_csr(
            triangles.num_edges, ha, hb, index_dtype=adj_dt
        )
    return LevelStructures(
        hook_a=np.ascontiguousarray(ha, dtype=edge_dt),
        hook_b=np.ascontiguousarray(hb, dtype=edge_dt),
        hook_k=np.ascontiguousarray(hk),
        se_lo=np.ascontiguousarray(slo, dtype=edge_dt),
        se_hi=np.ascontiguousarray(shi, dtype=edge_dt),
        se_k=np.ascontiguousarray(sk),
        levels=levels,
        adj_indptr=adj_indptr,
        adj_neighbors=adj_neighbors,
    )


def _populated_levels(trussness: np.ndarray) -> np.ndarray:
    ks = np.unique(trussness)
    return ks[ks >= 3]
