"""End-to-end parallel EquiTruss pipeline (Algorithms 2 + 3 + 4).

``build_index`` runs the full kernel sequence with per-kernel
instrumentation::

    Support → TrussDecomp → Init → (SpNode → SpEdge) per level
            → SmGraph → SpNodeRemap

and returns the canonical :class:`EquiTrussIndex` plus the region trace
that the benchmarks feed into the machine model.

Execution is configured by a single
:class:`~repro.parallel.context.ExecutionContext`: backend + workers,
the dtype policy that narrows every derived array to int32 when the
graph fits, and the scratch workspace the per-level loop reuses. After a
build the ``repro.mem.*`` gauges report the resident bytes of each major
structure plus the workspace high-water mark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.equitruss.index import EquiTrussIndex
from repro.equitruss.kernels import (
    INIT,
    KernelBreakdown,
    SM_GRAPH,
    SP_EDGE,
    SP_NODE,
    SP_NODE_REMAP,
    SUPPORT,
)
from repro.equitruss.levels import build_level_structures
from repro.equitruss.merge import generate_superedges, merge_supergraph
from repro.equitruss.variants import (
    spnode_afforest,
    spnode_baseline,
    spnode_coptimal,
)
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.parallel.instrument import Instrumentation
from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.truss.decompose import TrussDecomposition, truss_decomposition


@dataclass(frozen=True)
class VariantSpec:
    """Execution profile of one parallel EquiTruss variant."""

    name: str
    #: arithmetic-intensity class of the SpNode kernel for the machine
    #: model: Baseline's hash-probe-heavy rounds are compute-bound (they
    #: scale furthest — the paper's §4.3 observation), the optimized
    #: variants are progressively more bandwidth-bound.
    spnode_intensity: str
    description: str


VARIANTS: dict[str, VariantSpec] = {
    "baseline": VariantSpec(
        "baseline",
        "compute",
        "SV edge-CC, hash-map lookups, per-round triangle re-derivation",
    ),
    "coptimal": VariantSpec(
        "coptimal",
        "mixed",
        "SV edge-CC, contiguous buffers, prebuilt level tables, settled-pair skip",
    ),
    "afforest": VariantSpec(
        "afforest",
        "memory",
        "Afforest edge-CC with neighbor sampling and giant-component skip",
    ),
}


@dataclass
class BuildResult:
    """Index + instrumentation of one pipeline run."""

    index: EquiTrussIndex
    trace: Instrumentation
    variant: str
    num_workers: int
    #: the context the build ran under (dtype policy, workspace, backend).
    ctx: ExecutionContext | None = None
    #: where the persistent store artifact landed (``store_path=`` runs).
    store_path: object | None = None

    @property
    def breakdown(self) -> KernelBreakdown:
        return KernelBreakdown.from_trace(self.trace)

    @property
    def seconds(self) -> float:
        return self.trace.total_seconds


def _publish_mem_gauges(
    graph: CSRGraph, triangles, levels, comp, ctx: ExecutionContext
) -> dict[str, int]:
    mem = {
        "repro.mem.graph_bytes": graph.nbytes,
        "repro.mem.triangles_bytes": triangles.nbytes if triangles is not None else 0,
        "repro.mem.levels_bytes": levels.nbytes if levels is not None else 0,
        "repro.mem.comp_bytes": int(comp.nbytes),
        "repro.mem.workspace_high_water": ctx.workspace.high_water,
    }
    shared_pool = ctx.shared_pool
    if shared_pool is not None:
        mem["repro.mem.shared_pool_high_water"] = shared_pool.high_water
    for name, value in mem.items():
        metrics.set_gauge(name, value)  # repro: allow(REP004) — keys above are literal
    return mem


def build_index(
    graph: CSRGraph,
    variant: str = "afforest",
    decomp: TrussDecomposition | None = None,
    triangles: TriangleSet | None = None,
    ctx: ExecutionContext | None = None,
    num_workers: int | None = None,
    neighbor_rounds: int = 2,
    seed: int = 0,
    *,
    store_path=None,
    store_generation: int = 1,
    policy=None,
) -> BuildResult:
    """Construct the EquiTruss index with the chosen parallel variant.

    ``decomp``/``triangles`` may be passed to skip the prerequisite
    kernels (the paper's index-construction timings assume trussness is
    precomputed). All variants — and all dtype policies — return
    identical canonical indexes. ``num_workers`` defaults to the
    context's worker count; ``policy`` is a deprecated alias for ``ctx``.

    ``store_path`` additionally persists the result as a
    :mod:`repro.store` artifact (atomic swap; includes the precomputed
    serving component tables, so serving fleets attach in milliseconds
    instead of rebuilding). ``store_generation`` seeds the store's
    journal epoch — a rebuild swapping over a live store must pass a
    generation past every journal entry it absorbed.
    """
    if variant not in VARIANTS:
        raise InvalidParameterError(
            f"unknown variant {variant!r}; available: {sorted(VARIANTS)}"
        )
    spec = VARIANTS[variant]
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    if num_workers is None:
        num_workers = ctx.num_workers
    trace = ctx.trace
    edge_dt = ctx.edge_dtype(graph.num_edges)

    build_span = ctx.tracer.begin(
        "BuildIndex",
        variant=variant,
        num_workers=num_workers,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
        dtype=edge_dt.name,
    )
    levels = None
    try:
        # ----------------------------------------------------------- Support
        if triangles is None:
            with ctx.region(SUPPORT, work=graph.num_edges, intensity="mixed") as h:
                triangles = enumerate_triangles(graph, ctx=ctx)
                h.work = max(triangles.count, 1)

        # ------------------------------------------------------- TrussDecomp
        if decomp is None:
            decomp = truss_decomposition(graph, triangles=triangles, ctx=ctx)
        tau = decomp.trussness

        # -------------------------------------------------------------- Init
        with ctx.region(INIT, work=graph.num_edges, intensity="memory") as h:
            comp = np.arange(graph.num_edges, dtype=edge_dt)
            if variant == "baseline":
                # Baseline groups Φ_k sets only; triangle tables are
                # recomputed from the CSR when each level is processed.
                levels_arr = decomp.k_classes()
            else:
                levels = build_level_structures(
                    triangles, tau, with_adjacency=(variant == "afforest"), ctx=ctx
                )
                levels_arr = levels.levels
                h.work = graph.num_edges + levels.num_hook_pairs
                metrics.inc("repro.equitruss.hook_pairs", levels.num_hook_pairs)
        metrics.set_gauge("repro.equitruss.levels", int(levels_arr.size))

        # --------------------------------------------- per-level SpNode/SpEdge
        worker_subsets = None
        for k in levels_arr.tolist():
            level_edges = int((tau == k).sum())
            metrics.observe("repro.equitruss.level_edges", level_edges)
            with ctx.tracer.span("Level", k=int(k), edges=level_edges):
                ses_level: tuple[np.ndarray, np.ndarray] | None = None
                with ctx.region(
                    SP_NODE, work=0, rounds=0, intensity=spec.spnode_intensity
                ):
                    if variant == "baseline":
                        ses_level = spnode_baseline(comp, graph, tau, k, ctx=ctx)
                    elif variant == "coptimal":
                        spnode_coptimal(comp, levels, k, ctx=ctx)
                    else:
                        spnode_afforest(
                            comp,
                            levels,
                            k,
                            phi_nodes=decomp.phi(k),
                            neighbor_rounds=neighbor_rounds,
                            seed=seed,
                            ctx=ctx,
                        )
                with ctx.region(SP_EDGE, work=0, rounds=0, intensity="mixed"):
                    if ses_level is not None:
                        se_lo, se_hi = ses_level
                    else:
                        se_lo, se_hi = levels.superedge_candidates(k)
                    worker_subsets = generate_superedges(
                        comp, se_lo, se_hi, num_workers, worker_subsets, ctx=ctx
                    )

        # ----------------------------------------------------------- SmGraph
        with ctx.region(SM_GRAPH, work=0, rounds=0, intensity="memory"):
            raw_superedges = merge_supergraph(
                worker_subsets or [], num_workers, ctx=ctx
            )

        # ------------------------------------------------------- SpNodeRemap
        with ctx.region(SP_NODE_REMAP, work=graph.num_edges, intensity="memory"):
            index = EquiTrussIndex.from_parents(graph, tau, comp, raw_superedges)

        mem = _publish_mem_gauges(graph, triangles, levels, comp, ctx)
        build_span.set(
            ws_peak=mem["repro.mem.workspace_high_water"],
            mem_bytes=sum(mem.values()),
        )
    finally:
        ctx.tracer.end(build_span)

    metrics.inc("repro.pipeline.builds")
    metrics.set_gauge("repro.equitruss.supernodes", index.num_supernodes)
    metrics.set_gauge("repro.equitruss.superedges", index.num_superedges)
    if store_path is not None:
        # persist with the serving tables precomputed: attach then skips
        # both the build *and* the component sweep
        from repro.serve.components import LevelComponents
        from repro.store.writer import write_store

        with ctx.region("StoreWrite", work=graph.num_edges, parallel=False):
            components = LevelComponents(index, ctx=ctx)
            store_path = write_store(
                index, store_path, components=components,
                generation=store_generation, ctx=ctx,
            )
    return BuildResult(
        index=index, trace=trace, variant=variant, num_workers=num_workers,
        ctx=ctx, store_path=store_path,
    )
