"""End-to-end parallel EquiTruss pipeline (Algorithms 2 + 3 + 4).

``build_index`` runs the full kernel sequence with per-kernel
instrumentation::

    Support → TrussDecomp → Init → (SpNode → SpEdge) per level
            → SmGraph → SpNodeRemap

and returns the canonical :class:`EquiTrussIndex` plus the region trace
that the benchmarks feed into the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.equitruss.index import EquiTrussIndex
from repro.equitruss.kernels import (
    INIT,
    KernelBreakdown,
    SM_GRAPH,
    SP_EDGE,
    SP_NODE,
    SP_NODE_REMAP,
    SUPPORT,
)
from repro.equitruss.levels import build_level_structures
from repro.equitruss.merge import generate_superedges, merge_supergraph
from repro.equitruss.variants import (
    spnode_afforest,
    spnode_baseline,
    spnode_coptimal,
)
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.api import ExecutionPolicy
from repro.parallel.instrument import Instrumentation
from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.truss.decompose import TrussDecomposition, truss_decomposition


@dataclass(frozen=True)
class VariantSpec:
    """Execution profile of one parallel EquiTruss variant."""

    name: str
    #: arithmetic-intensity class of the SpNode kernel for the machine
    #: model: Baseline's hash-probe-heavy rounds are compute-bound (they
    #: scale furthest — the paper's §4.3 observation), the optimized
    #: variants are progressively more bandwidth-bound.
    spnode_intensity: str
    description: str


VARIANTS: dict[str, VariantSpec] = {
    "baseline": VariantSpec(
        "baseline",
        "compute",
        "SV edge-CC, hash-map lookups, per-round triangle re-derivation",
    ),
    "coptimal": VariantSpec(
        "coptimal",
        "mixed",
        "SV edge-CC, contiguous buffers, prebuilt level tables, settled-pair skip",
    ),
    "afforest": VariantSpec(
        "afforest",
        "memory",
        "Afforest edge-CC with neighbor sampling and giant-component skip",
    ),
}


@dataclass
class BuildResult:
    """Index + instrumentation of one pipeline run."""

    index: EquiTrussIndex
    trace: Instrumentation
    variant: str
    num_workers: int

    @property
    def breakdown(self) -> KernelBreakdown:
        return KernelBreakdown.from_trace(self.trace)

    @property
    def seconds(self) -> float:
        return self.trace.total_seconds


def build_index(
    graph: CSRGraph,
    variant: str = "afforest",
    decomp: TrussDecomposition | None = None,
    triangles: TriangleSet | None = None,
    policy: ExecutionPolicy | None = None,
    num_workers: int = 1,
    neighbor_rounds: int = 2,
    seed: int = 0,
) -> BuildResult:
    """Construct the EquiTruss index with the chosen parallel variant.

    ``decomp``/``triangles`` may be passed to skip the prerequisite
    kernels (the paper's index-construction timings assume trussness is
    precomputed). All variants return identical canonical indexes.
    """
    if variant not in VARIANTS:
        raise InvalidParameterError(
            f"unknown variant {variant!r}; available: {sorted(VARIANTS)}"
        )
    spec = VARIANTS[variant]
    policy = ExecutionPolicy.default(policy)
    trace = policy.trace

    build_span = trace.tracer.begin(
        "BuildIndex",
        variant=variant,
        num_workers=num_workers,
        vertices=graph.num_vertices,
        edges=graph.num_edges,
    )
    try:
        # ----------------------------------------------------------- Support
        if triangles is None:
            with trace.region(SUPPORT, work=graph.num_edges, intensity="mixed") as h:
                triangles = enumerate_triangles(graph)
                h.work = max(triangles.count, 1)

        # ------------------------------------------------------- TrussDecomp
        if decomp is None:
            decomp = truss_decomposition(graph, triangles=triangles, policy=policy)
        tau = decomp.trussness

        # -------------------------------------------------------------- Init
        with trace.region(INIT, work=graph.num_edges, intensity="memory") as h:
            comp = np.arange(graph.num_edges, dtype=np.int64)
            if variant == "baseline":
                # Baseline groups Φ_k sets only; triangle tables are
                # recomputed from the CSR when each level is processed.
                levels_arr = decomp.k_classes()
                levels = None
            else:
                levels = build_level_structures(
                    triangles, tau, with_adjacency=(variant == "afforest")
                )
                levels_arr = levels.levels
                h.work = graph.num_edges + levels.num_hook_pairs
                metrics.inc("repro.equitruss.hook_pairs", levels.num_hook_pairs)
        metrics.set_gauge("repro.equitruss.levels", int(levels_arr.size))

        # --------------------------------------------- per-level SpNode/SpEdge
        worker_subsets = None
        for k in levels_arr.tolist():
            level_edges = int((tau == k).sum())
            metrics.observe("repro.equitruss.level_edges", level_edges)
            with trace.tracer.span("Level", k=int(k), edges=level_edges):
                ses_level: tuple[np.ndarray, np.ndarray] | None = None
                with trace.region(
                    SP_NODE, work=0, rounds=0, intensity=spec.spnode_intensity
                ) as h:
                    if variant == "baseline":
                        ses_level = spnode_baseline(comp, graph, tau, k, handle=h)
                    elif variant == "coptimal":
                        spnode_coptimal(comp, levels, k, handle=h)
                    else:
                        spnode_afforest(
                            comp,
                            levels,
                            k,
                            phi_nodes=decomp.phi(k),
                            neighbor_rounds=neighbor_rounds,
                            seed=seed,
                            handle=h,
                        )
                with trace.region(SP_EDGE, work=0, rounds=0, intensity="mixed") as h:
                    if ses_level is not None:
                        se_lo, se_hi = ses_level
                    else:
                        se_lo, se_hi = levels.superedge_candidates(k)
                    worker_subsets = generate_superedges(
                        comp, se_lo, se_hi, num_workers, worker_subsets, handle=h
                    )

        # ----------------------------------------------------------- SmGraph
        with trace.region(SM_GRAPH, work=0, rounds=0, intensity="memory") as h:
            raw_superedges = merge_supergraph(
                worker_subsets or [], num_workers, handle=h
            )

        # ------------------------------------------------------- SpNodeRemap
        with trace.region(SP_NODE_REMAP, work=graph.num_edges, intensity="memory"):
            index = EquiTrussIndex.from_parents(graph, tau, comp, raw_superedges)
    finally:
        trace.tracer.end(build_span)

    metrics.inc("repro.pipeline.builds")
    metrics.set_gauge("repro.equitruss.supernodes", index.num_supernodes)
    metrics.set_gauge("repro.equitruss.superedges", index.num_superedges)
    return BuildResult(
        index=index, trace=trace, variant=variant, num_workers=num_workers
    )
