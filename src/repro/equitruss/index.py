"""The EquiTruss summary-graph index G(V, E).

Canonical form (identical across all construction variants, enabling
byte-level equality in tests):

* supernodes carry dense ids ordered by ``(trussness, min member edge id)``;
* member edge ids are sorted within each supernode;
* superedges are canonical ``(lo, hi)`` dense-id pairs, lexicographically
  sorted and duplicate-free.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import IndexIntegrityError, InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList


def _as_int64(arr: np.ndarray) -> np.ndarray:
    """``arr`` as contiguous int64 — aliasing, never copying, when the
    input already satisfies the contract.

    This is the zero-copy guarantee the mmap attach path depends on: a
    read-only int64 view into a mapped store file must flow into the
    index *as that view* so N attached processes share one page-cache
    copy. Only dtype or layout mismatches (legacy callers passing
    int32 or strided arrays) pay for a conversion.
    """
    a = np.asarray(arr)
    if a.dtype == np.int64 and a.flags["C_CONTIGUOUS"]:
        return a
    return np.ascontiguousarray(a, dtype=np.int64)


class EquiTrussIndex:
    """Summary graph: supernodes (edge groups) + superedges.

    Attributes
    ----------
    graph:
        The indexed :class:`CSRGraph`.
    trussness:
        ``int64[m]`` τ per edge id.
    edge_supernode:
        ``int64[m]`` dense supernode id per edge; ``-1`` for τ = 2 edges
        (triangle-free edges belong to no supernode).
    supernode_trussness:
        ``int64[S]`` τ of each supernode.
    supernode_indptr / supernode_edges:
        CSR mapping supernode id → sorted member edge ids.
    superedges:
        ``int64[SE, 2]`` canonical dense-id pairs.
    """

    __slots__ = (
        "graph",
        "trussness",
        "edge_supernode",
        "supernode_trussness",
        "supernode_indptr",
        "supernode_edges",
        "superedges",
        "_sn_adj",
    )

    def __init__(
        self,
        graph: CSRGraph,
        trussness: np.ndarray,
        edge_supernode: np.ndarray,
        supernode_trussness: np.ndarray,
        supernode_indptr: np.ndarray,
        supernode_edges: np.ndarray,
        superedges: np.ndarray,
    ) -> None:
        self.graph = graph
        self.trussness = _as_int64(trussness)
        self.edge_supernode = _as_int64(edge_supernode)
        self.supernode_trussness = _as_int64(supernode_trussness)
        self.supernode_indptr = _as_int64(supernode_indptr)
        self.supernode_edges = _as_int64(supernode_edges)
        self.superedges = _as_int64(superedges).reshape(-1, 2)
        self._sn_adj: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Construction from parallel-variant raw output
    # ------------------------------------------------------------------
    @classmethod
    def from_parents(
        cls,
        graph: CSRGraph,
        trussness: np.ndarray,
        parents: np.ndarray,
        raw_superedges: np.ndarray,
    ) -> "EquiTrussIndex":
        """Canonicalize CC output (this is the SpNodeRemap step).

        ``parents`` maps each edge to its component-root edge id (only
        meaningful where τ ≥ 3); ``raw_superedges`` holds root-id pairs
        (already deduplicated or not — duplicates are removed here).
        """
        m = graph.num_edges
        member = trussness >= 3
        roots = parents[member]
        uniq_roots, inv = np.unique(roots, return_inverse=True)
        # canonical order: by (trussness of root edge, root id); np.unique
        # gives ascending root id, so a stable sort by trussness suffices.
        order = np.argsort(trussness[uniq_roots], kind="stable")
        rank = np.empty_like(order)
        rank[order] = np.arange(order.size)
        edge_supernode = np.full(m, -1, dtype=np.int64)
        edge_supernode[member] = rank[inv]

        sn_truss = trussness[uniq_roots][order]
        # supernode -> member edges CSR (sorted by (sn, edge id))
        member_ids = np.flatnonzero(member)
        sn_of_member = edge_supernode[member_ids]
        csr_order = np.lexsort((member_ids, sn_of_member))
        sn_edges = member_ids[csr_order]
        counts = np.bincount(sn_of_member, minlength=uniq_roots.size)
        indptr = np.zeros(uniq_roots.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        # remap superedges root ids -> dense ids, canonicalize, dedupe
        raw = np.asarray(raw_superedges, dtype=np.int64).reshape(-1, 2)
        if raw.size:
            pos_a = rank[np.searchsorted(uniq_roots, raw[:, 0])]
            pos_b = rank[np.searchsorted(uniq_roots, raw[:, 1])]
            lo = np.minimum(pos_a, pos_b)
            hi = np.maximum(pos_a, pos_b)
            keys = np.unique(lo * np.int64(uniq_roots.size) + hi)
            superedges = np.stack(
                [keys // uniq_roots.size, keys % uniq_roots.size], axis=1
            )
        else:
            superedges = np.empty((0, 2), dtype=np.int64)
        return cls(
            graph=graph,
            trussness=trussness,
            edge_supernode=edge_supernode,
            supernode_trussness=sn_truss,
            supernode_indptr=indptr,
            supernode_edges=sn_edges,
            superedges=superedges,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_supernodes(self) -> int:
        return self.supernode_trussness.size

    @property
    def num_superedges(self) -> int:
        return self.superedges.shape[0]

    def edges_of(self, supernode: int) -> np.ndarray:
        """Sorted member edge ids of a supernode (view)."""
        return self.supernode_edges[
            self.supernode_indptr[supernode] : self.supernode_indptr[supernode + 1]
        ]

    def supernode_sizes(self) -> np.ndarray:
        return np.diff(self.supernode_indptr)

    def supernodes_of_vertex(self, v: int, k_min: int = 3) -> np.ndarray:
        """Distinct supernodes containing an edge incident to vertex ``v``
        with trussness ≥ ``k_min`` — the community-search anchors."""
        if not 0 <= v < self.graph.num_vertices:
            raise InvalidParameterError(f"vertex {v} out of range")
        eids = self.graph.neighbor_edge_ids(v)
        sns = self.edge_supernode[eids]
        sns = sns[sns >= 0]
        if sns.size:
            sns = sns[self.supernode_trussness[sns] >= k_min]
        return np.unique(sns)

    def supernode_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Symmetric CSR (indptr, neighbors) over supernodes (cached)."""
        if self._sn_adj is None:
            s = self.num_supernodes
            a = np.concatenate([self.superedges[:, 0], self.superedges[:, 1]])
            b = np.concatenate([self.superedges[:, 1], self.superedges[:, 0]])
            order = np.argsort(a * np.int64(max(s, 1)) + b, kind="stable")
            a, b = a[order], b[order]
            counts = np.bincount(a, minlength=s)
            indptr = np.zeros(s + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._sn_adj = (indptr, b)
        return self._sn_adj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EquiTrussIndex):
            return NotImplemented
        return (
            np.array_equal(self.trussness, other.trussness)
            and np.array_equal(self.edge_supernode, other.edge_supernode)
            and np.array_equal(self.supernode_trussness, other.supernode_trussness)
            and np.array_equal(self.supernode_indptr, other.supernode_indptr)
            and np.array_equal(self.supernode_edges, other.supernode_edges)
            and np.array_equal(self.superedges, other.superedges)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EquiTrussIndex(supernodes={self.num_supernodes}, "
            f"superedges={self.num_superedges}, edges={self.trussness.size})"
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural integrity checks; raises :class:`IndexIntegrityError`."""
        m = self.graph.num_edges
        s = self.num_supernodes
        if self.trussness.size != m or self.edge_supernode.size != m:
            raise IndexIntegrityError("per-edge arrays must have length m")
        member = self.trussness >= 3
        if np.any(self.edge_supernode[member] < 0):
            raise IndexIntegrityError("edge with trussness >= 3 lacks a supernode")
        if np.any(self.edge_supernode[~member] != -1):
            raise IndexIntegrityError("trussness-2 edge assigned to a supernode")
        if self.edge_supernode.size and self.edge_supernode.max(initial=-1) >= s:
            raise IndexIntegrityError("supernode id out of range")
        if self.supernode_indptr.size != s + 1:
            raise IndexIntegrityError("supernode_indptr has wrong length")
        if int(member.sum()) != self.supernode_edges.size:
            raise IndexIntegrityError("supernode membership does not partition edges")
        for sn in range(s):
            eids = self.edges_of(sn)
            if eids.size == 0:
                raise IndexIntegrityError(f"empty supernode {sn}")
            if not np.all(self.edge_supernode[eids] == sn):
                raise IndexIntegrityError(f"CSR/membership mismatch at supernode {sn}")
            if not np.all(self.trussness[eids] == self.supernode_trussness[sn]):
                raise IndexIntegrityError(f"mixed trussness in supernode {sn}")
        if s and not np.all(np.diff(self.supernode_trussness) >= 0):
            raise IndexIntegrityError("supernodes not ordered by trussness")
        se = self.superedges
        if se.size:
            if se.min() < 0 or se.max() >= s:
                raise IndexIntegrityError("superedge endpoint out of range")
            if np.any(se[:, 0] == se[:, 1]):
                raise IndexIntegrityError("self-loop superedge")
            same_k = (
                self.supernode_trussness[se[:, 0]]
                == self.supernode_trussness[se[:, 1]]
            )
            if np.any(same_k):
                raise IndexIntegrityError(
                    "superedge between equal-trussness supernodes (Definition 9)"
                )
            keys = se[:, 0] * np.int64(s) + se[:, 1]
            if np.unique(keys).size != keys.size:
                raise IndexIntegrityError("duplicate superedges")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist index + indexed edge list to a NumPy archive."""
        np.savez_compressed(
            path,
            u=self.graph.edges.u,
            v=self.graph.edges.v,
            num_vertices=np.int64(self.graph.num_vertices),
            trussness=self.trussness,
            edge_supernode=self.edge_supernode,
            supernode_trussness=self.supernode_trussness,
            supernode_indptr=self.supernode_indptr,
            supernode_edges=self.supernode_edges,
            superedges=self.superedges,
        )

    @classmethod
    def load(cls, path: str | Path) -> "EquiTrussIndex":
        with np.load(path) as data:
            edges = EdgeList(data["u"], data["v"], int(data["num_vertices"]))
            return cls(
                graph=CSRGraph.from_edgelist(edges),
                trussness=data["trussness"],
                edge_supernode=data["edge_supernode"],
                supernode_trussness=data["supernode_trussness"],
                supernode_indptr=data["supernode_indptr"],
                supernode_edges=data["supernode_edges"],
                superedges=data["superedges"],
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int | float]:
        sizes = self.supernode_sizes()
        return {
            "num_supernodes": self.num_supernodes,
            "num_superedges": self.num_superedges,
            "num_indexed_edges": int(self.supernode_edges.size),
            "max_supernode_size": int(sizes.max()) if sizes.size else 0,
            "mean_supernode_size": float(sizes.mean()) if sizes.size else 0.0,
            "kmax": int(self.supernode_trussness.max()) if self.num_supernodes else 2,
        }
