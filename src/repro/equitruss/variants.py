"""The three SpNode kernels: Baseline, C-Optimal, Afforest.

All three compute the same fixpoint — the per-level connected components
of the edge-induced graph — but with the different work profiles the
paper describes in §3.3:

* **Baseline** recomputes, for every edge of Φ_k, its triangles from the
  raw CSR adjacency when the level is processed (Algorithm 2 lines
  10–14), resolving partner edge ids through keyed searches — the
  "dictionary over the whole edge set" probing the paper optimizes
  away — and runs SV hooking that rescans the complete pair list each
  round (no settled-pair skip).
* **C-Optimal** consumes the per-level hook tables built once during
  Init (CSR/contiguous-buffer storage), and *skips settled pairs*: a
  pair whose endpoints already share a component is dropped from
  subsequent rounds, so per-round work shrinks monotonically.
* **Afforest** traverses the edge-graph adjacency (also materialized in
  Init): per level it opportunistically links the first few sampled
  neighbors of every node (work ∝ nodes, not pairs), detects the
  dominant component, and finishes only the nodes outside it — the
  subgraph-sampling skip of [43].

Every kernel takes an :class:`~repro.parallel.context.ExecutionContext`
(``ctx``): rounds are reported via ``ctx.add_round`` and the per-round
component gathers reuse the context workspace across levels.
"""

from __future__ import annotations

import numpy as np

from repro.cc.afforest import afforest_on_csr
from repro.cc.core import compress
from repro.equitruss.levels import LevelStructures
from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def _cat(parts: list[np.ndarray]) -> np.ndarray:
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def _level_tables_range(
    indptr: np.ndarray,
    indices: np.ndarray,
    slot_eids: np.ndarray,
    slot_keys: np.ndarray,
    deg: np.ndarray,
    eu: np.ndarray,
    ev: np.ndarray,
    trussness: np.ndarray,
    phi: np.ndarray,
    lo: int,
    hi: int,
    k: int,
    n: int,
    batch_edges: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[int]]:
    """Recompute level-``k`` tables for ``phi[lo:hi]``, batch by batch.

    Pure-array core shared by the serial loop and the process-pool
    workers — it replicates ``graph.locate_slots`` via a ``searchsorted``
    over the precomputed slot keys so only flat arrays cross the process
    boundary. Returns the concatenated parts plus the per-batch neighbor
    totals (replayed into ``ctx.add_round`` by the caller).
    """
    hook_parts_a: list[np.ndarray] = []
    hook_parts_b: list[np.ndarray] = []
    se_parts_lo: list[np.ndarray] = []
    se_parts_hi: list[np.ndarray] = []
    totals: list[int] = []
    kd = slot_keys.dtype
    for lo_ix in range(lo, hi, batch_edges):
        eids = phi[lo_ix : min(lo_ix + batch_edges, hi)]
        u, v = eu[eids], ev[eids]
        swap = deg[u] > deg[v]
        x = np.where(swap, v, u)       # expand the smaller endpoint
        y = np.where(swap, u, v)
        counts = deg[x]
        total = int(counts.sum())
        totals.append(total)
        if total == 0:
            continue
        cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
        local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
        w_pos = np.repeat(indptr[x], counts) + local
        w = indices[w_pos]
        y_rep = np.repeat(y, counts)
        # the "dictionary" probe: graph.locate_slots on flat arrays
        q = y_rep.astype(kd, copy=False) * kd.type(max(n, 1)) + w.astype(
            kd, copy=False
        )
        pos = np.searchsorted(slot_keys, q)
        pos_c = np.minimum(pos, max(slot_keys.size - 1, 0))
        if slot_keys.size == 0:
            slots = np.full(q.shape, -1, dtype=np.int64)
        else:
            slots = np.where(slot_keys[pos_c] == q, pos_c, -1)
        found = slots >= 0
        if not found.any():
            continue
        e_rep = np.repeat(eids, counts)[found]
        e1 = slot_eids[w_pos[found]]           # (x, w)
        e2 = slot_eids[slots[found]]           # (y, w)
        # drop the degenerate "triangle" where w is the other endpoint
        real = (e1 != e_rep) & (e2 != e_rep)
        e_rep, e1, e2 = e_rep[real], e1[real], e2[real]
        t1, t2 = trussness[e1], trussness[e2]
        both_ok = (t1 >= k) & (t2 >= k)
        h1 = both_ok & (t1 == k)
        h2 = both_ok & (t2 == k)
        hook_parts_a.extend((e_rep[h1], e_rep[h2]))
        hook_parts_b.extend((e1[h1], e2[h2]))
        lowest = np.minimum(np.minimum(t1, t2), k)
        below = lowest < k
        s1 = below & (t1 == lowest)
        s2 = below & (t2 == lowest)
        se_parts_lo.extend((e1[s1], e2[s2]))
        se_parts_hi.extend((e_rep[s1], e_rep[s2]))
    return (
        _cat(hook_parts_a),
        _cat(hook_parts_b),
        _cat(se_parts_lo),
        _cat(se_parts_hi),
        totals,
    )


def _w_level_tables(
    indptr_h, indices_h, eids_h, keys_h, deg_h, eu_h, ev_h, tau_h, phi_h,
    lo: int, hi: int, k: int, n: int, batch_edges: int,
):
    """Process-pool worker: level tables for one batch-aligned phi range."""
    from repro.parallel.shm import attach, export_array

    ha, hb, sl, sh, totals = _level_tables_range(
        attach(indptr_h), attach(indices_h), attach(eids_h), attach(keys_h),
        attach(deg_h), attach(eu_h), attach(ev_h), attach(tau_h),
        attach(phi_h), lo, hi, k, n, batch_edges,
    )
    return (
        export_array(ha), export_array(hb), export_array(sl), export_array(sh),
        totals,
    )


def recompute_level_tables(
    graph: CSRGraph,
    trussness: np.ndarray,
    k: int,
    batch_edges: int = 1 << 16,
    ctx: ExecutionContext | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Algorithm 2/3 per-level triangle recomputation.

    For every edge e(u, v) ∈ Φ_k, enumerate its triangles from the CSR
    adjacency (expanding the smaller endpoint's neighbor list, resolving
    the partner edges via keyed searches) and derive:

    * hook pairs ``(e, e')`` where τ(e') = k and the third side has
      τ ≥ k (k-triangle connectivity inside the maximal k-truss);
    * superedge candidates ``(lo, hi=e)`` where lo is a partner at the
      triangle minimum κ < k (Algorithm 3's downward rule).

    Returns ``(hook_a, hook_b, se_lo, se_hi)``. Duplicated hook pairs
    (a triangle seen from both its k-edges) are kept — SV is insensitive
    and the paper's per-edge loop produces them too.

    Under the process backend the Φ_k batches are split across workers
    at ``batch_edges``-aligned boundaries, so concatenating the worker
    parts in order reproduces the serial batch sequence exactly —
    bit-identical tables.
    """
    from repro.parallel.shm import active_process_backend, import_array

    ctx = ExecutionContext.ensure(ctx)
    phi = np.flatnonzero(trussness == k)
    deg = graph.degrees()
    indptr, indices, slot_eids = graph.indptr, graph.indices, graph.edge_ids
    eu, ev = graph.edges.u, graph.edges.v
    n = graph.num_vertices

    backend = active_process_backend(ctx, phi.size)
    if backend is None:
        ha, hb, sl, sh, totals = _level_tables_range(
            indptr, indices, slot_eids, graph.slot_keys, deg, eu, ev,
            trussness, phi, 0, phi.size, k, n, batch_edges,
        )
        for total in totals:
            ctx.add_round(max(total, 1))
        return ha, hb, sl, sh

    from repro.parallel.partition import block_ranges

    pool = backend.pool
    handles = (
        pool.share("lvl.indptr", indptr)[1],
        pool.share("lvl.indices", indices)[1],
        pool.share("lvl.eids", slot_eids)[1],
        pool.share("lvl.keys", graph.slot_keys)[1],
        pool.share("lvl.deg", deg)[1],
        pool.share("lvl.eu", eu)[1],
        pool.share("lvl.ev", ev)[1],
        pool.share("lvl.tau", trussness)[1],
        pool.share("lvl.phi", phi)[1],
    )
    num_batches = -(-phi.size // batch_edges)
    ranges = [
        (b_lo * batch_edges, min(b_hi * batch_edges, phi.size))
        for b_lo, b_hi in block_ranges(num_batches, ctx.num_workers)
        if b_hi > b_lo
    ]
    results = backend.map_tasks(
        _w_level_tables,
        [(*handles, lo, hi, k, n, batch_edges) for lo, hi in ranges],
        ctx=ctx,
        work=[hi - lo for lo, hi in ranges],
        kernel="LevelTables",
    )
    parts = [[], [], [], []]
    for ha_h, hb_h, sl_h, sh_h, totals in results:
        for dst, h in zip(parts, (ha_h, hb_h, sl_h, sh_h)):
            dst.append(import_array(h))
        for total in totals:
            ctx.add_round(max(total, 1))
    # drop empty worker parts: an idle worker's placeholder is int64 and
    # would otherwise promote the concatenated dtype
    return tuple(_cat([a for a in p if a.size]) for p in parts)


def sv_rounds_noskip(
    comp: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    ctx: ExecutionContext | None = None,
) -> int:
    """SV hooking/shortcut rounds that rescan the *complete* pair list
    every round (no settled-pair skip — the Baseline behavior)."""
    if a.size == 0:
        return 0
    ctx = ExecutionContext.ensure(ctx)
    ws = ctx.workspace
    touched = np.unique(np.concatenate([a, b]))
    rounds = 0
    while True:
        rounds += 1
        ctx.add_round(2 * a.size)
        ca = ws.gather("sp.ca", comp, a)
        cb = ws.gather("sp.cb", comp, b)
        hook_b = (ca < cb) & (comp[cb] == cb)
        hook_a = (cb < ca) & (comp[ca] == ca)
        changed = bool(hook_b.any() or hook_a.any())
        if hook_b.any():
            np.minimum.at(comp, cb[hook_b], ca[hook_b])
        if hook_a.any():
            np.minimum.at(comp, ca[hook_a], cb[hook_a])
        compress(comp, touched, ctx=ctx)
        if not changed:
            return rounds


def spnode_baseline(
    comp: np.ndarray,
    graph: CSRGraph,
    trussness: np.ndarray,
    k: int,
    ctx: ExecutionContext | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Baseline SpNode for level ``k``: recompute triangles, then
    unskipped SV. Returns the level's superedge candidates (recomputed
    here, consumed by the SpEdge kernel)."""
    ctx = ExecutionContext.ensure(ctx)
    hook_a, hook_b, se_lo, se_hi = recompute_level_tables(
        graph, trussness, k, ctx=ctx
    )
    metrics.inc("repro.equitruss.hook_pairs", int(hook_a.size))
    rounds = sv_rounds_noskip(comp, hook_a, hook_b, ctx=ctx)
    metrics.inc("repro.cc.sv_rounds", rounds)
    return se_lo, se_hi


# ----------------------------------------------------------------------
# C-Optimal
# ----------------------------------------------------------------------

def spnode_coptimal(
    comp: np.ndarray,
    levels: LevelStructures,
    k: int,
    ctx: ExecutionContext | None = None,
) -> int:
    """C-Optimal SV over level ``k``: prebuilt pairs + settled-pair skip.

    Like the paper's adaptation, every hooking round still scans the full
    pair list (SV has no per-pair memory between rounds); the §3.3
    optimization is the early-out — pairs whose endpoints already share a
    component do no further work within the round. Baseline's additional
    cost relative to this kernel is the per-level triangle recomputation.
    """
    a, b = levels.hook_pairs(k)
    if a.size == 0:
        return 0
    ctx = ExecutionContext.ensure(ctx)
    ws = ctx.workspace
    touched = np.unique(np.concatenate([a, b]))
    rounds = 0
    while True:
        rounds += 1
        metrics.inc("repro.cc.sv_rounds")
        ctx.add_round(2 * a.size)
        ca = ws.gather("sp.ca", comp, a)
        cb = ws.gather("sp.cb", comp, b)
        unsettled = ca != cb  # the Π(e) == Π(e1) early-out of §3.3
        if not unsettled.any():
            compress(comp, touched, ctx=ctx)
            return rounds
        ua, ub = ca[unsettled], cb[unsettled]
        hook_b = (ua < ub) & (comp[ub] == ub)
        hook_a = (ub < ua) & (comp[ua] == ua)
        changed = bool(hook_b.any() or hook_a.any())
        if hook_b.any():
            np.minimum.at(comp, ub[hook_b], ua[hook_b])
        if hook_a.any():
            np.minimum.at(comp, ua[hook_a], ub[hook_a])
        compress(comp, touched, ctx=ctx)
        if not changed:
            return rounds


# ----------------------------------------------------------------------
# Afforest
# ----------------------------------------------------------------------

def spnode_afforest(
    comp: np.ndarray,
    levels: LevelStructures,
    k: int,
    phi_nodes: np.ndarray,
    neighbor_rounds: int = 2,
    seed: int = 0,
    ctx: ExecutionContext | None = None,
) -> int:
    """Afforest over level ``k`` using the Init-built edge-graph CSR.

    ``phi_nodes`` are the edge ids of Φ_k (the level's nodes). Because
    hook pairs only ever join equal-trussness edges, the global
    adjacency restricted to these nodes is exactly the level's edge
    graph.
    """
    if phi_nodes.size == 0:
        return 0
    indptr, neighbors = levels.adjacency_arrays()
    return afforest_on_csr(
        comp,
        indptr,
        neighbors,
        phi_nodes,
        neighbor_rounds=neighbor_rounds,
        seed=seed,
        ctx=ctx,
    )
