"""EquiTruss index construction — the paper's core contribution.

Four implementations, all producing byte-identical canonical indexes
(the paper reports 100% output agreement across its variants; our tests
assert it):

* :func:`equitruss_serial` — Algorithm 1, the BFS-queue serial original
  (plays the role of the Akbas et al. reference implementation).
* :func:`build_index` with ``variant="baseline"`` — Algorithms 2–4 with
  Shiloach–Vishkin edge-CC and per-round triangle re-derivation
  (*Baseline EquiTruss*).
* ``variant="coptimal"`` — contiguous-buffer lookups, per-level hook
  pairs built once, settled-pair skipping (*C-Optimal EquiTruss*).
* ``variant="afforest"`` — Afforest edge-CC with neighbor sampling and
  giant-component skipping (*Afforest EquiTruss*).
"""

from repro.equitruss.index import EquiTrussIndex
from repro.equitruss.kernels import KERNELS, KernelBreakdown
from repro.equitruss.levels import LevelStructures, build_level_structures
from repro.equitruss.serial import equitruss_serial
from repro.equitruss.pipeline import VARIANTS, BuildResult, build_index
from repro.equitruss.dynamic import DynamicEquiTruss, UpdateStats
from repro.equitruss.verify import verify_index_semantics

__all__ = [
    "BuildResult",
    "DynamicEquiTruss",
    "EquiTrussIndex",
    "KERNELS",
    "KernelBreakdown",
    "LevelStructures",
    "UpdateStats",
    "VARIANTS",
    "build_index",
    "build_level_structures",
    "equitruss_serial",
    "verify_index_semantics",
]
