"""Serial EquiTruss index construction — Algorithm 1 of the paper.

A faithful transcription of the BFS-queue pseudocode (originally Akbas &
Zhao's EquiTruss): supernodes are grown one at a time by breadth-first
traversal over k-triangle connectivity; each edge keeps a list of
lower-trussness supernode ids that touched it, from which superedges are
emitted when the edge is dequeued in its own supernode.

Two lookup modes:

* ``lookup="array"`` — edge-id resolution through the CSR keyed-search
  (vectorized per dequeued edge); the fast serial reference.
* ``lookup="dict"`` — trussness and adjacency through Python hash maps,
  playing the role of the original Java implementation in Table 4
  (per-element hash probing, no contiguous buffers).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.equitruss.index import EquiTrussIndex
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.parallel.context import ExecutionContext
from repro.truss.decompose import TrussDecomposition, truss_decomposition


def equitruss_serial(
    graph: CSRGraph,
    decomp: TrussDecomposition | None = None,
    ctx: ExecutionContext | None = None,
    lookup: str = "array",
    *,
    policy=None,
) -> EquiTrussIndex:
    """Build the EquiTruss index with the serial Algorithm 1.

    Records ``Support``/``TrussDecomp`` regions when the decomposition is
    computed here, and a single serial ``EquiTruss`` region for the index
    construction itself (the paper's Figure 2 breakdown). ``policy`` is a
    deprecated alias for ``ctx``.
    """
    if lookup not in ("array", "dict"):
        raise InvalidParameterError(f"lookup must be 'array' or 'dict', got {lookup!r}")
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    if decomp is None:
        from repro.triangles.enumerate import enumerate_triangles

        with ctx.region("Support", work=graph.num_edges, intensity="mixed"):
            triangles = enumerate_triangles(graph, ctx=ctx)
        decomp = truss_decomposition(graph, triangles=triangles, ctx=ctx)
    tau = decomp.trussness

    with ctx.region("EquiTruss", work=graph.num_edges, parallel=False):
        parents, raw_superedges = _algorithm1(graph, tau, lookup)
    return EquiTrussIndex.from_parents(graph, tau, parents, raw_superedges)


def _algorithm1(
    graph: CSRGraph, tau: np.ndarray, lookup: str
) -> tuple[np.ndarray, np.ndarray]:
    m = graph.num_edges
    eu, ev = graph.edges.u, graph.edges.v
    processed = np.zeros(m, dtype=bool)
    elist: dict[int, set[int]] = {}
    # supernode id -> list of member edges; superedges as (lower id, this id)
    members: list[list[int]] = []
    superedges: set[tuple[int, int]] = set()

    if lookup == "dict":
        tau_map = {
            (int(a), int(b)): int(t)
            for a, b, t in zip(eu.tolist(), ev.tolist(), tau.tolist())
        }
        eid_map = {
            (int(a), int(b)): i for i, (a, b) in enumerate(zip(eu.tolist(), ev.tolist()))
        }
        adj: dict[int, set[int]] = {v: set() for v in range(graph.num_vertices)}
        for a, b in zip(eu.tolist(), ev.tolist()):
            adj[a].add(b)
            adj[b].add(a)

    ks = np.unique(tau)
    ks = ks[ks >= 3]
    for k in ks.tolist():
        phi = np.flatnonzero((tau == k) & ~processed)
        for seed in phi.tolist():
            if processed[seed]:
                continue
            processed[seed] = True
            sp_id = len(members)
            members.append([])
            queue: deque[int] = deque([seed])
            while queue:
                e = queue.popleft()
                members[sp_id].append(e)
                for lower_id in elist.pop(e, ()):  # noqa: B909 - single reader
                    superedges.add((lower_id, sp_id))
                u, v = int(eu[e]), int(ev[e])
                if lookup == "array":
                    w_all = np.intersect1d(
                        graph.neighbors(u), graph.neighbors(v), assume_unique=True
                    )
                    if w_all.size == 0:
                        continue
                    e1s = graph.edge_ids[
                        graph.locate_slots(np.full(w_all.size, u, np.int64), w_all)
                    ]
                    e2s = graph.edge_ids[
                        graph.locate_slots(np.full(w_all.size, v, np.int64), w_all)
                    ]
                    t1s, t2s = tau[e1s], tau[e2s]
                    valid = (t1s >= k) & (t2s >= k)
                    it = zip(
                        e1s[valid].tolist(),
                        e2s[valid].tolist(),
                        t1s[valid].tolist(),
                        t2s[valid].tolist(),
                    )
                else:
                    rows = []
                    for w in adj[u] & adj[v]:
                        key1 = (min(u, w), max(u, w))
                        key2 = (min(v, w), max(v, w))
                        t1, t2 = tau_map[key1], tau_map[key2]
                        if t1 >= k and t2 >= k:
                            rows.append((eid_map[key1], eid_map[key2], t1, t2))
                    it = iter(rows)
                for e1, e2, t1, t2 in it:
                    _process_edge(e1, t1, k, sp_id, processed, queue, elist)
                    _process_edge(e2, t2, k, sp_id, processed, queue, elist)

    parents = np.arange(m, dtype=np.int64)
    roots = [min(group) for group in members]
    for sp_id, group in enumerate(members):
        parents[group] = roots[sp_id]
    raw = np.array(
        [[roots[a], roots[b]] for a, b in sorted(superedges)], dtype=np.int64
    ).reshape(-1, 2)
    return parents, raw


def _process_edge(
    eid: int,
    t: int,
    k: int,
    sp_id: int,
    processed: np.ndarray,
    queue: deque,
    elist: dict[int, set[int]],
) -> None:
    """ProcessEdge of Algorithm 1 (lines 25–32)."""
    if t == k:
        if not processed[eid]:
            processed[eid] = True
            queue.append(eid)
    else:  # t > k: remember this supernode for a future superedge
        elist.setdefault(eid, set()).add(sp_id)
