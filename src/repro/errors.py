"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """An input edge list or graph file violates the expected format."""


class GraphConstructionError(ReproError):
    """A graph could not be built from the provided data."""


class EdgeNotFoundError(ReproError, KeyError):
    """An (u, v) pair does not correspond to an edge of the graph."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its documented domain."""


class IndexIntegrityError(ReproError):
    """An EquiTruss index failed internal validation."""


class StoreError(ReproError):
    """A persistent index-store operation failed."""


class CorruptStoreError(StoreError):
    """A store file failed structural or checksum verification."""


class StaleStoreError(StoreError):
    """An attached store generation no longer matches what is on disk."""


class ServeError(ReproError):
    """A serving front-end or shard-worker operation failed."""


class WireProtocolError(ServeError):
    """A frame on the serving wire violated the NDJSON protocol."""


class ShardUnavailableError(ServeError):
    """A shard worker died (or stayed dead) with requests in flight."""


class BackpressureError(ServeError):
    """The frontend's admission limit rejected a request (retry later)."""


class LoopStallError(ServeError):
    """The event-loop stall detector caught a blocking callback.

    Raised in strict mode (``REPRO_LOOP_CHECK=strict``) when a callback
    held the serving loop longer than the configured threshold — the
    runtime counterpart of the REP006 lint rule.
    """


class BackendError(ReproError):
    """A parallel execution backend failed or was misconfigured."""


class SharedMemoryRaceError(BackendError):
    """The write-set race detector found a shared-memory access hazard."""


class PartitionOverlapError(SharedMemoryRaceError):
    """Two workers of one fan-out wrote overlapping shared-segment ranges."""


class StaleReadError(SharedMemoryRaceError):
    """A worker read a shared range another worker of the same fan-out wrote."""
