"""Exact triangle enumeration via a degree-ordered DAG.

The *forward* algorithm [Schank & Wagner 2005, cited as [37] in the
paper]: orient every undirected edge from the endpoint of lower
(degree, id) rank to the higher one. Each triangle {u, v, w} then
appears exactly once as a pair of directed edges u→v, u→w plus the
closing edge v→w. Enumeration is vectorized: for every directed edge
(u, v) the candidate third vertices are N⁺(v), and membership of w in
N⁺(u) is tested for the whole batch at once with one ``searchsorted``
over the DAG's globally sorted (row·n + col) slot keys.

Work is O(Σ_(u,v) d⁺(v)) — the standard arboricity-bounded cost. Batches
cap peak memory for large graphs.

Under the process backend the slot selections are block-partitioned
across the persistent worker pool: the DAG arrays are shared once
(zero-copy ``multiprocessing.shared_memory``), each worker expands its
contiguous slot range with the same batched kernel and appends its
triple buffers to shared memory, and the coordinator concatenates the
per-worker parts *in worker order* — producing bit-identical output to
the serial batch loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TriangleSet:
    """All triangles of a graph, as edge-id triples.

    For triangle {u, v, w} with DAG orientation u→v, u→w, v→w:

    * ``e_uv`` — edge id of (u, v),
    * ``e_uw`` — edge id of (u, w),
    * ``e_vw`` — edge id of (v, w).

    Each triangle appears exactly once. ``num_edges`` is the edge count
    of the originating graph (needed to size support arrays).
    """

    e_uv: np.ndarray
    e_uw: np.ndarray
    e_vw: np.ndarray
    num_edges: int

    @property
    def count(self) -> int:
        return self.e_uv.size

    @property
    def nbytes(self) -> int:
        """Bytes held by the three edge-id columns."""
        return int(self.e_uv.nbytes + self.e_uw.nbytes + self.e_vw.nbytes)

    def as_matrix(self) -> np.ndarray:
        """``int64[T, 3]`` matrix of edge-id triples."""
        return np.stack([self.e_uv, self.e_uw, self.e_vw], axis=1)

    def support(self, dtype=None) -> np.ndarray:
        """Number of triangles per edge (Definition 2 of the paper).

        ``dtype`` narrows the accumulator (int32 under the auto dtype
        policy — halves the resident support array); the counts are
        identical to the default int64 accumulation since per-edge
        support is bounded by the edge count.
        """
        sup = np.zeros(self.num_edges, dtype=np.int64 if dtype is None else dtype)
        for arr in (self.e_uv, self.e_uw, self.e_vw):
            np.add(
                sup,
                np.bincount(arr, minlength=self.num_edges),
                out=sup,
                casting="unsafe",
            )
        return sup

    def canonical_sorted(self) -> np.ndarray:
        """Row-sorted triples in deterministic order (tests/comparisons)."""
        m = np.sort(self.as_matrix(), axis=1)
        order = np.lexsort((m[:, 2], m[:, 1], m[:, 0]))
        return m[order]


def _degree_ordered_dag(graph: CSRGraph):
    """Orient edges by (degree, id) rank; return DAG CSR arrays.

    Returns (indptr, heads, slot_eids, tails_per_slot) where rows are
    original vertex ids, columns sorted ascending, and ``slot_eids``
    carries the canonical undirected edge id of each directed slot.
    """
    n = graph.num_vertices
    deg = graph.degrees()
    # rank[u] < rank[v]  <=>  (deg[u], u) < (deg[v], v)
    rank = np.empty(n, dtype=np.int64)
    rank[np.lexsort((np.arange(n), deg))] = np.arange(n, dtype=np.int64)

    u, v = graph.edges.u, graph.edges.v
    u_first = rank[u] < rank[v]
    tails = np.where(u_first, u, v)
    heads = np.where(u_first, v, u)
    eids = np.arange(graph.num_edges, dtype=np.int64)

    order = np.argsort(tails * np.int64(max(n, 1)) + heads, kind="stable")
    tails, heads, eids = tails[order], heads[order], eids[order]
    counts = np.bincount(tails, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, heads, eids, tails


def _expand_selection(
    indptr: np.ndarray,
    heads: np.ndarray,
    slot_eids: np.ndarray,
    tails: np.ndarray,
    outdeg: np.ndarray,
    slot_keys: np.ndarray,
    n: int,
    slot_sel: np.ndarray,
    from_head: bool,
    batch_slots: int,
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Expand a slot selection into (uv, uw, vw) triple parts.

    The shared batched kernel behind both the serial loop and the
    process-backend workers. Output parts concatenate in slot-selection
    order, so any contiguous partitioning of ``slot_sel`` reproduces the
    full run's triple order exactly.
    """
    num_slots = heads.size
    parts_uv: list[np.ndarray] = []
    parts_uw: list[np.ndarray] = []
    parts_vw: list[np.ndarray] = []
    for lo in range(0, slot_sel.size, batch_slots):
        slots = slot_sel[lo : lo + batch_slots]
        b_heads = heads[slots]
        b_tails = tails[slots]
        expand = b_heads if from_head else b_tails
        other = b_tails if from_head else b_heads
        counts = outdeg[expand]
        total = int(counts.sum())
        if total == 0:
            continue
        # Grouped arange: for slot s, local offsets 0..counts[s]-1.
        cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
        local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
        w_pos = np.repeat(indptr[expand], counts) + local
        w = heads[w_pos]
        # Membership: is (other, w) a DAG edge?  One searchsorted.
        q = np.repeat(other, counts) * np.int64(max(n, 1)) + w
        pos = np.searchsorted(slot_keys, q)
        pos_c = np.minimum(pos, max(num_slots - 1, 0))
        found = slot_keys[pos_c] == q
        if not np.any(found):
            continue
        slot_rep = np.repeat(slots, counts)[found]
        e_pivot = slot_eids[slot_rep]           # edge (u, v)
        e_from_expand = slot_eids[w_pos[found]]  # edge (expand, w)
        e_from_other = slot_eids[pos_c[found]]   # edge (other, w)
        parts_uv.append(e_pivot)
        if from_head:
            # expanded from v: (v, w) is the closing edge, (u, w) = other side
            parts_uw.append(e_from_other)
            parts_vw.append(e_from_expand)
        else:
            parts_uw.append(e_from_expand)
            parts_vw.append(e_from_other)
    return parts_uv, parts_uw, parts_vw


def _cat(parts: list[np.ndarray]) -> np.ndarray:
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def _w_enumerate_chunk(
    indptr_h,
    heads_h,
    eids_h,
    tails_h,
    outdeg_h,
    keys_h,
    sel_h,
    lo: int,
    hi: int,
    from_head: bool,
    batch_slots: int,
    n: int,
):
    """Process-pool worker: expand slots ``sel[lo:hi]``, export triples."""
    from repro.parallel.shm import attach, export_array

    sel = attach(sel_h)[lo:hi]
    parts = _expand_selection(
        attach(indptr_h),
        attach(heads_h),
        attach(eids_h),
        attach(tails_h),
        attach(outdeg_h),
        attach(keys_h),
        n,
        sel,
        from_head,
        batch_slots,
    )
    return tuple(export_array(_cat(p)) for p in parts)


def _enumerate_process(
    backend,
    ctx,
    indptr,
    heads,
    slot_eids,
    tails,
    outdeg,
    slot_keys,
    n,
    selections,
    batch_slots,
):
    """Partition → privatize → reduce enumeration across the worker pool.

    Shares the DAG arrays once, fans each selection out as contiguous
    chunks, imports the per-worker append buffers, and concatenates them
    in worker order (bit-identical to the serial batch loop).

    Chunk boundaries follow the context's partition strategy: under
    ``balanced`` each selection is cut by its per-slot **wedge count**
    (the out-degree of the expanded endpoint — the work the expansion
    actually does) instead of the slot count, per the eager k-truss
    load-balancing study (arXiv:2009.07929). Results concatenate in
    range order either way, so the strategy never changes the output —
    only the per-worker ``work`` attrs, which record the estimated wedge
    share each task carried.
    """
    from repro.parallel.partition import range_weights
    from repro.parallel.shm import import_array

    pool = backend.pool
    handles = [
        pool.share(kind, arr)[1]
        for kind, arr in (
            ("enum.indptr", indptr),
            ("enum.heads", heads),
            ("enum.eids", slot_eids),
            ("enum.tails", tails),
            ("enum.outdeg", outdeg),
            ("enum.keys", slot_keys),
        )
    ]
    parts_uv: list[np.ndarray] = []
    parts_uw: list[np.ndarray] = []
    parts_vw: list[np.ndarray] = []
    for si, (sel, from_head) in enumerate(selections):
        if sel.size == 0:
            continue
        _, sel_h = pool.share(f"enum.sel{si}", sel)
        # per-slot wedge estimate: expanding slot s scans the expanded
        # endpoint's out-neighborhood, so its cost is that out-degree
        wedges = outdeg[heads[sel] if from_head else tails[sel]]
        ranges = ctx.partition_ranges(sel.size, weights=wedges)
        tasks = [
            (*handles, sel_h, lo, hi, from_head, batch_slots, n)
            for lo, hi in ranges
        ]
        results = backend.map_tasks(
            _w_enumerate_chunk,
            tasks,
            ctx=ctx,
            label="Worker",
            work=range_weights(wedges, ranges),
            kernel="Enumerate",
        )
        for uv_h, uw_h, vw_h in results:
            parts_uv.append(import_array(uv_h))
            parts_uw.append(import_array(uw_h))
            parts_vw.append(import_array(vw_h))
    return parts_uv, parts_uw, parts_vw


def enumerate_triangles(
    graph: CSRGraph, batch_slots: int = 1 << 18, ctx=None
) -> TriangleSet:
    """Enumerate every triangle of ``graph`` exactly once.

    ``batch_slots`` bounds how many directed edges are expanded per
    vectorized batch (peak temporary memory ≈ batch wedge count). The
    edge-id triples are stored in the dtype of ``ctx``'s policy (falling
    back to the graph's own index dtype) — they are the biggest derived
    arrays of the pipeline, so narrowing them matters most.

    When ``ctx`` runs the process backend with multiple workers (and the
    graph clears the backend's ``min_items`` floor), expansion fans out
    across the persistent worker pool; the result is bit-identical to
    the serial path.
    """
    check_positive("batch_slots", batch_slots)
    if ctx is not None:
        from repro.parallel.context import ExecutionContext

        ctx = ExecutionContext.ensure(ctx)
        out_dtype = ctx.edge_dtype(graph.num_edges)
    else:
        out_dtype = graph.index_dtype
    n = graph.num_vertices
    indptr, heads, slot_eids, tails = _degree_ordered_dag(graph)
    num_slots = heads.size
    outdeg = np.diff(indptr)
    slot_keys = tails * np.int64(max(n, 1)) + heads  # strictly increasing

    # For each DAG edge (u, v) we may expand either N⁺(v) (testing w
    # against N⁺(u)) or N⁺(u) (testing against N⁺(v)); both find the same
    # triangle. Expanding the smaller list bounds the wedge blow-up at
    # high-degree hubs.
    expand_head = outdeg[heads] <= outdeg[tails]
    all_slots = np.arange(num_slots, dtype=np.int64)
    selections = [
        (all_slots[expand_head], True),
        (all_slots[~expand_head], False),
    ]

    from repro.parallel.shm import active_process_backend

    backend = active_process_backend(ctx, num_slots)
    if backend is not None:
        parts_uv, parts_uw, parts_vw = _enumerate_process(
            backend, ctx, indptr, heads, slot_eids, tails, outdeg,
            slot_keys, n, selections, batch_slots,
        )
    else:
        parts_uv, parts_uw, parts_vw = [], [], []
        for sel, from_head in selections:
            uv, uw, vw = _expand_selection(
                indptr, heads, slot_eids, tails, outdeg, slot_keys,
                n, sel, from_head, batch_slots,
            )
            parts_uv.extend(uv)
            parts_uw.extend(uw)
            parts_vw.extend(vw)

    e_uv = _cat(parts_uv).astype(out_dtype, copy=False)
    e_uw = _cat(parts_uw).astype(out_dtype, copy=False)
    e_vw = _cat(parts_vw).astype(out_dtype, copy=False)
    if e_uv.size == 0:
        e_uv = e_uw = e_vw = np.empty(0, dtype=out_dtype)
    result = TriangleSet(e_uv=e_uv, e_uw=e_uw, e_vw=e_vw, num_edges=graph.num_edges)
    metrics.inc("repro.triangles.enumerated", result.count)
    metrics.inc("repro.triangles.enumerations")
    return result
