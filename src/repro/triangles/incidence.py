"""Edge → triangle incidence in CSR form.

The truss-peeling kernel needs, for each edge, the ids of every triangle
it participates in (to cascade support decrements when the edge is
removed). This builds that mapping once from a :class:`TriangleSet`.
"""

from __future__ import annotations

import numpy as np

from repro.triangles.enumerate import TriangleSet


class EdgeTriangleIncidence:
    """CSR mapping edge id → ids of incident triangles.

    ``triangles_of(e)`` is a zero-copy view; ``partners`` gives, for
    every (edge, triangle) incidence, the other two edges of that
    triangle — the arrays the peeling kernel gathers from.
    """

    __slots__ = ("indptr", "tri_ids", "num_edges", "_tri")

    def __init__(self, triangles: TriangleSet, ctx=None) -> None:
        m = triangles.num_edges
        t = triangles.count
        if ctx is not None:
            from repro.parallel.context import ExecutionContext

            # tri_ids holds triangle ids (< t), indptr offsets up to 3t.
            dt = ExecutionContext.ensure(ctx).dtype.resolve(max(3 * t, 1))
        else:
            dt = np.dtype(np.int64)
        eids = np.concatenate([triangles.e_uv, triangles.e_uw, triangles.e_vw])
        tids = np.concatenate([np.arange(t, dtype=dt)] * 3)
        order = np.argsort(eids, kind="stable")
        eids, tids = eids[order], tids[order]
        counts = np.bincount(eids, minlength=m)
        indptr = np.zeros(m + 1, dtype=dt)
        np.cumsum(counts, out=indptr[1:])
        self.indptr = indptr
        self.tri_ids = tids
        self.num_edges = m
        self._tri = triangles

    @property
    def triangles(self) -> TriangleSet:
        return self._tri

    def triangles_of(self, eid: int) -> np.ndarray:
        """Triangle ids containing edge ``eid`` (view)."""
        return self.tri_ids[self.indptr[eid] : self.indptr[eid + 1]]

    def degree(self) -> np.ndarray:
        """Incidence count per edge (equals the edge's support)."""
        return np.diff(self.indptr)

    def partners(self, eids: np.ndarray, tids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Other two edge ids of triangle ``tids[i]`` as seen from ``eids[i]``.

        Vectorized: for each (edge, triangle) incidence pair, returns the
        two remaining sides of the triangle.
        """
        tri = self._tri
        a = tri.e_uv[tids]
        b = tri.e_uw[tids]
        c = tri.e_vw[tids]
        is_a = a == eids
        is_b = b == eids
        first = np.where(is_a, b, a)
        second = np.where(is_a | is_b, c, b)
        return first, second
