"""Triangle kernels: enumeration, counting, per-edge support, incidence.

Triangle connectivity is the building block of the whole EquiTruss
formulation (Definitions 1–6 of the paper). The production path
enumerates each triangle exactly once via a degree-ordered DAG and fully
vectorized batch intersections, returning the *edge ids* of the three
sides — the representation every downstream kernel (truss peeling,
supernode CC, superedge generation) consumes.
"""

from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.triangles.count import (
    count_triangles,
    count_triangles_matrix,
    count_triangles_node_iterator,
)
from repro.triangles.support import compute_support, support_histogram
from repro.triangles.incidence import EdgeTriangleIncidence

__all__ = [
    "EdgeTriangleIncidence",
    "TriangleSet",
    "compute_support",
    "count_triangles",
    "count_triangles_matrix",
    "count_triangles_node_iterator",
    "enumerate_triangles",
    "support_histogram",
]
