"""Triangle counting: production, reference, and cross-check variants."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.triangles.enumerate import enumerate_triangles


def count_triangles(graph: CSRGraph) -> int:
    """Total triangles, via the vectorized DAG enumeration."""
    return enumerate_triangles(graph).count


def count_triangles_matrix(graph: CSRGraph) -> int:
    """Total triangles via sparse algebra: trace-free (A·A)∘A / 6.

    Independent of the enumeration code path — used to cross-validate.
    """
    a = graph.to_scipy().astype(np.int64)
    if graph.num_vertices == 0:
        return 0
    prod = (a @ a).multiply(a)
    return int(prod.sum() // 6)


def count_triangles_node_iterator(graph: CSRGraph) -> int:
    """Pure-Python node-iterator reference (small graphs / tests).

    For every vertex v and neighbor pair (u, w) with u < w, count the
    closing edge; each triangle is counted once at its smallest vertex.
    """
    total = 0
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors(v)
        higher = nbrs[nbrs > v]
        for i in range(higher.size):
            u = int(higher[i])
            u_nbrs = graph.neighbors(u)
            rest = higher[i + 1 :]
            total += int(np.isin(rest, u_nbrs, assume_unique=True).sum())
    return total
