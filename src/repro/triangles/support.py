"""Per-edge support (Definition 2) — the input to truss decomposition.

This is the paper's ``Support`` kernel (Figs. 2 and 4).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.api import ExecutionPolicy
from repro.triangles.enumerate import TriangleSet, enumerate_triangles


def compute_support(
    graph: CSRGraph,
    triangles: TriangleSet | None = None,
    policy: ExecutionPolicy | None = None,
) -> np.ndarray:
    """Support (triangle count) of every edge, indexed by edge id.

    Reuses a precomputed :class:`TriangleSet` when given; otherwise
    enumerates. When a policy is supplied, the enumeration cost is
    recorded as the ``Support`` region of its trace.
    """
    policy = ExecutionPolicy.default(policy)
    with policy.trace.region(
        "Support", work=graph.num_edges, intensity="mixed"
    ) as handle:
        if triangles is None:
            triangles = enumerate_triangles(graph)
        handle.work = max(triangles.count, graph.num_edges, 1)
        support = triangles.support()
        if support.size:
            metrics.set_gauge_max("repro.triangles.support_max", int(support.max()))
        return support


def support_histogram(support: np.ndarray) -> np.ndarray:
    """``hist[s]`` = number of edges with support ``s``."""
    if support.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(support)
