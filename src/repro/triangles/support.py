"""Per-edge support (Definition 2) — the input to truss decomposition.

This is the paper's ``Support`` kernel (Figs. 2 and 4). Under the
process backend the triple arrays are shared once and each worker
accumulates a *privatized* ``bincount`` row over its triangle range into
a shared partial matrix; the coordinator reduces the rows with one sum —
the PKT privatize-and-reduce shape, no cross-process atomics.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.triangles.enumerate import TriangleSet, enumerate_triangles


def _w_support_partial(uv_h, uw_h, vw_h, lo: int, hi: int, m: int, out_h, row: int):
    """Process-pool worker: privatized support counts for one triangle range."""
    from repro.parallel.shm import attach

    acc = attach(out_h)[row]
    acc[:] = 0
    for h in (uv_h, uw_h, vw_h):
        arr = attach(h)
        acc += np.bincount(arr[lo:hi], minlength=m)
    # worker-attributed partial: summed across tasks this equals the
    # serial path's 3 * triangles.count exactly
    metrics.inc("repro.triangles.support_updates", 3 * (hi - lo))
    return hi - lo


def parallel_support(
    triangles: TriangleSet, ctx: ExecutionContext | None = None, dtype=None
) -> np.ndarray:
    """Support array via partition → privatize → reduce when the process
    backend is active; the vectorized serial accumulation otherwise.

    Bit-identical to :meth:`TriangleSet.support` — integer partial sums
    reduce exactly regardless of the partitioning. Items are whole
    triangles (three ``bincount`` updates each, a uniform per-item
    cost), so the context's ``balanced`` and ``blocked`` partition
    strategies produce the same split here; the fan-out still routes
    through :meth:`ExecutionContext.partition_ranges` so the strategy is
    recorded uniformly on the worker spans.
    """
    from repro.parallel.shm import active_process_backend

    backend = active_process_backend(ctx, triangles.count)
    if backend is None:
        metrics.inc("repro.triangles.support_updates", 3 * triangles.count)
        return triangles.support(dtype=dtype)
    m = triangles.num_edges
    pool = backend.pool
    uv_h = pool.share("sup.uv", triangles.e_uv)[1]
    uw_h = pool.share("sup.uw", triangles.e_uw)[1]
    vw_h = pool.share("sup.vw", triangles.e_vw)[1]
    ranges = ctx.partition_ranges(triangles.count)
    partials, out_h = pool.take("sup.partials", (len(ranges), m), np.int64)
    tasks = [
        (uv_h, uw_h, vw_h, lo, hi, m, out_h, row)
        for row, (lo, hi) in enumerate(ranges)
    ]
    backend.map_tasks(
        _w_support_partial,
        tasks,
        ctx=ctx,
        work=[hi - lo for lo, hi in ranges],
        kernel="Support",
    )
    reduced = partials.sum(axis=0)
    return reduced.astype(dtype, copy=False) if dtype is not None else reduced


def compute_support(
    graph: CSRGraph,
    triangles: TriangleSet | None = None,
    ctx: ExecutionContext | None = None,
    *,
    policy=None,
    dtype=None,
) -> np.ndarray:
    """Support (triangle count) of every edge, indexed by edge id.

    Reuses a precomputed :class:`TriangleSet` when given; otherwise
    enumerates. The enumeration cost is recorded as the ``Support``
    region of the context's trace. ``dtype`` overrides the accumulator
    dtype; by default the context's :class:`DtypePolicy` picks it (int32
    under ``auto`` whenever it fits — half the resident bytes), always
    with identical counts. ``policy`` is a deprecated alias for ``ctx``
    (legacy :class:`ExecutionPolicy` call sites).
    """
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    if dtype is None:
        dtype = ctx.index_dtype(graph.num_vertices, graph.num_edges)
    with ctx.region(
        "Support", work=graph.num_edges, intensity="mixed"
    ) as handle:
        if triangles is None:
            triangles = enumerate_triangles(graph, ctx=ctx)
        handle.work = max(triangles.count, graph.num_edges, 1)
        support = parallel_support(triangles, ctx, dtype=dtype)
        if support.size:
            metrics.set_gauge_max("repro.triangles.support_max", int(support.max()))
        return support


def support_histogram(support: np.ndarray) -> np.ndarray:
    """``hist[s]`` = number of edges with support ``s``."""
    if support.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(support)
