"""Per-edge support (Definition 2) — the input to truss decomposition.

This is the paper's ``Support`` kernel (Figs. 2 and 4).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.triangles.enumerate import TriangleSet, enumerate_triangles


def compute_support(
    graph: CSRGraph,
    triangles: TriangleSet | None = None,
    ctx: ExecutionContext | None = None,
    *,
    policy=None,
) -> np.ndarray:
    """Support (triangle count) of every edge, indexed by edge id.

    Reuses a precomputed :class:`TriangleSet` when given; otherwise
    enumerates. The enumeration cost is recorded as the ``Support``
    region of the context's trace. ``policy`` is a deprecated alias for
    ``ctx`` (legacy :class:`ExecutionPolicy` call sites).
    """
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    with ctx.region(
        "Support", work=graph.num_edges, intensity="mixed"
    ) as handle:
        if triangles is None:
            triangles = enumerate_triangles(graph, ctx=ctx)
        handle.work = max(triangles.count, graph.num_edges, 1)
        support = triangles.support()
        if support.size:
            metrics.set_gauge_max("repro.triangles.support_max", int(support.max()))
        return support


def support_histogram(support: np.ndarray) -> np.ndarray:
    """``hist[s]`` = number of edges with support ``s``."""
    if support.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(support)
