"""Benchmark result files: one text report per experiment.

Benchmarks both print their tables (visible with ``pytest -s``) and
persist them under ``benchmarks/results/`` so EXPERIMENTS.md can cite
stable artifacts.
"""

from __future__ import annotations

from pathlib import Path


class ResultWriter:
    """Accumulates report sections and writes them to one file."""

    def __init__(self, experiment: str, directory: str | Path | None = None) -> None:
        self.experiment = experiment
        if directory is None:
            directory = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
        self.directory = Path(directory)
        self.sections: list[str] = []

    def add(self, text) -> None:
        """Append a section (anything with a sensible ``str()``)."""
        self.sections.append(str(text))

    def render(self) -> str:
        header = f"### {self.experiment} ###"
        return "\n\n".join([header, *self.sections]) + "\n"

    def write(self, echo: bool = True) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{self.experiment}.txt"
        text = self.render()
        path.write_text(text, encoding="utf-8")
        if echo:
            print(text)
        return path
