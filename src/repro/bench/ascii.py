"""ASCII bar/line renderings for the paper's figures.

Benchmarks regenerate each figure's *series*; these helpers make them
eyeball-comparable in a terminal or a text log.
"""

from __future__ import annotations


def bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scaled to the max value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    lines = [title] if title else []
    if not values:
        return "\n".join(lines + ["(empty)"])
    peak = max(max(values), 1e-12)
    label_w = max((len(x) for x in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def line_chart(
    xs: list,
    series: dict[str, list[float]],
    height: int = 12,
    title: str | None = None,
    logy: bool = False,
) -> str:
    """Multi-series line chart on a character grid (x = given points)."""
    import math

    cols = len(xs)
    if cols == 0 or not series:
        return title or "(empty)"
    for name, ys in series.items():
        if len(ys) != cols:
            raise ValueError(f"series {name!r} length mismatch")
    marks = "*o+x@%&$"
    all_vals = [v for ys in series.values() for v in ys]
    if logy:
        all_vals = [math.log10(max(v, 1e-12)) for v in all_vals]
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0
    grid = [[" "] * (cols * 6) for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = marks[si % len(marks)]
        for ci, y in enumerate(ys):
            val = math.log10(max(y, 1e-12)) if logy else y
            row = height - 1 - int((val - lo) / span * (height - 1))
            grid[row][ci * 6 + 2] = mark
    lines = [title] if title else []
    for row in grid:
        lines.append("".join(row).rstrip())
    lines.append("-" * (cols * 6))
    lines.append("".join(str(x).ljust(6) for x in xs))
    legend = "  ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend + ("   (log y)" if logy else ""))
    return "\n".join(lines)
