"""Published numbers from the paper, for side-by-side benchmark output.

All values transcribed from the ICPP 2023 paper's tables, figures, and
prose. Variant keys use our names: ``baseline`` / ``coptimal`` /
``afforest``; ``original`` is the Akbas et al. serial Java code.
"""

from __future__ import annotations

#: Table 3 — SNAP dataset sizes.
TABLE3_DATASETS: dict[str, tuple[int, int]] = {
    "amazon": (334_863, 925_872),
    "dblp": (317_080, 1_049_866),
    "youtube": (1_134_890, 2_987_624),
    "livejournal": (3_997_962, 34_681_189),
    "orkut": (3_072_441, 117_185_083),
    "friendster": (65_608_366, 1_806_067_135),
}

#: Table 4 — single-thread index-construction seconds
#: (SpNd + SpEdge + SmGraph). ``None`` = out of memory (MLE).
TABLE4_SERIAL_SECONDS: dict[str, dict[str, float | None]] = {
    "amazon": {"baseline": 6.77, "coptimal": 3.96, "afforest": 3.24, "original": 1.46},
    "dblp": {"baseline": 10.92, "coptimal": 7.37, "afforest": 6.57, "original": 2.33},
    "livejournal": {"baseline": 1549.0, "coptimal": 851.0, "afforest": 608.0, "original": 467.0},
    "orkut": {"baseline": 9631.0, "coptimal": 5268.0, "afforest": 2990.0, "original": None},
}

#: Table 5 — supernode/superedge counts and 1-thread vs 128-thread
#: times (seconds) with speedups, per variant.
TABLE5: dict[str, dict] = {
    "amazon": {
        "supernodes": 115_060,
        "superedges": 103_513,
        "baseline": (7.26, 0.52, 13.86),
        "coptimal": (4.45, 0.46, 9.7),
        "afforest": (3.74, 0.40, 9.16),
    },
    "dblp": {
        "supernodes": 126_904,
        "superedges": 105_409,
        "baseline": (11.52, 0.62, 18.53),
        "coptimal": (7.96, 0.51, 15.52),
        "afforest": (7.16, 0.49, 14.46),
    },
    "youtube": {
        "supernodes": 400_408,
        "superedges": 940_550,
        "baseline": (36.56, 2.62, 13.92),
        "coptimal": (21.60, 2.44, 8.82),
        "afforest": (16.07, 2.27, 7.06),
    },
    "livejournal": {
        "supernodes": 4_765_102,
        "superedges": 13_405_280,
        "baseline": (1593.43, 58.34, 27.31),
        "coptimal": (895.03, 40.21, 22.25),
        "afforest": (651.69, 33.33, 19.55),
    },
    "orkut": {
        "supernodes": 17_227_001,
        "superedges": 76_631_446,
        "baseline": (9924.57, 334.89, 29.63),
        "coptimal": (5561.59, 245.97, 22.61),
        "afforest": (3283.14, 179.64, 18.27),
    },
}

#: Figure 5 — single-thread SpNode speedup over Baseline.
FIG5_SPNODE_SPEEDUP: dict[str, dict[str, float]] = {
    "orkut": {"coptimal": 1.98, "afforest": 4.13},
    "livejournal": {"coptimal": 2.0, "afforest": 3.07},
    "youtube": {"coptimal": 2.07, "afforest": 3.62},
    "dblp": {"coptimal": 1.66, "afforest": 2.0},
}

#: Figure 5/8 prose — absolute single-thread SpNode seconds.
FIG5_SPNODE_SECONDS: dict[str, dict[str, float]] = {
    "orkut": {"baseline": 8655.0, "coptimal": 4371.0, "afforest": 2093.0},
    "livejournal": {"baseline": 1393.0, "coptimal": 696.0, "afforest": 453.0},
}

#: Figure 4 prose — Baseline parallel kernel shares (percent of total).
FIG4_SPNODE_SHARE: dict[str, float] = {"youtube": 79.0, "orkut": 87.0}
FIG4_SPEDGE_SHARE: dict[str, float] = {"dblp": 6.0, "youtube": 10.0}

#: Figure 6 prose — end-to-end seconds at 1 vs 128 threads.
FIG6_ENDPOINTS: dict[str, dict[str, tuple[float, float]]] = {
    "orkut": {
        "baseline": (9924.0, 334.0),
        "coptimal": (5561.0, 245.0),
        "afforest": (3283.0, 179.0),
    },
    "livejournal": {"coptimal": (895.0, 40.0)},
    "youtube": {"baseline": (36.56, 2.62)},
}

#: Figure 7 — Friendster SpNode seconds (Afforest), 1 vs 128 threads.
FIG7_FRIENDSTER_SPNODE: tuple[float, float] = (34_332.0, 612.0)

#: Figure 8 prose — Orkut Afforest / LiveJournal C-Opt SpNode seconds
#: at 1, 8, 32, 128 threads.
FIG8_SPNODE_SCALING: dict[str, dict[str, dict[int, float]]] = {
    "orkut": {"afforest": {1: 2093.0, 8: 407.0, 32: 127.0, 128: 60.0}},
    "livejournal": {"coptimal": {1: 696.0, 8: 140.0, 32: 42.0, 128: 16.0}},
}

#: Figure 9 prose — Orkut parallel efficiency (percent) at selected
#: thread counts.
FIG9_ORKUT_EFFICIENCY: dict[str, dict[int, float]] = {
    "coptimal": {2: 73.0, 32: 37.66, 64: 27.0, 128: 17.0},
    "afforest": {2: 70.0, 32: 32.0, 64: 22.0, 128: 14.0},
    "baseline": {32: 38.89},
}

#: Headline claims (abstract / §4.3).
HEADLINE_SPEEDUP_RANGE: tuple[float, float] = (19.0, 55.0)
MAX_THREADS = 128
