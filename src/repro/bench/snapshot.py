"""Machine-readable perf snapshots (``BENCH_pr<N>.json``).

The text reports under ``benchmarks/results/`` are for humans; this
module writes the companion JSON snapshot future PRs diff against to
track the performance trajectory. One snapshot file accumulates runs
from several experiments (the fig6 backend sweep, the fig8 kernel
sweep, the CI smoke job): each run is keyed by
``(experiment, dataset, variant, backend, workers)`` and re-recording a
key replaces the old entry, so re-running one bench never stales the
others.

The schema is deliberately small and validated by
:func:`validate_snapshot` — the CI smoke job runs the validator against
the artifact it uploads, so a drive-by field rename fails fast instead
of silently breaking downstream tooling.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

SNAPSHOT_SCHEMA_VERSION = 1

#: Fields every run entry must carry (``kernels`` / ``notes`` optional).
RUN_REQUIRED_FIELDS = {
    "experiment": str,
    "dataset": str,
    "variant": str,
    "backend": str,
    "workers": int,
    "mode": str,  # "measured" wall clock | "modeled" machine-model T(p)
    "seconds": float,
}

RUN_MODES = ("measured", "modeled")


def default_snapshot_path(name: str = "pr4") -> Path:
    """``benchmarks/results/BENCH_<name>.json`` at the repo root."""
    root = Path(__file__).resolve().parents[3]
    return root / "benchmarks" / "results" / f"BENCH_{name}.json"


def host_info() -> dict:
    """The hardware/runtime context measured numbers depend on.

    ``cpu_count`` matters most: measured speedups from a box with fewer
    cores than workers are IPC-overhead measurements, not scaling
    results, and consumers must be able to tell the difference.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
    }


class PerfSnapshot:
    """Accumulating writer for one ``BENCH_*.json`` snapshot."""

    def __init__(self, name: str = "pr4", path: str | Path | None = None) -> None:
        self.name = name
        self.path = Path(path) if path is not None else default_snapshot_path(name)
        self.doc = {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "snapshot": name,
            "host": host_info(),
            "generated_unix": time.time(),
            "runs": [],
            "derived": {},
        }
        if self.path.exists():
            try:
                prior = json.loads(self.path.read_text(encoding="utf-8"))
                validate_snapshot(prior)
                self.doc["runs"] = prior.get("runs", [])
                self.doc["derived"] = prior.get("derived", {})
                if "manifest" in prior:
                    self.doc["manifest"] = prior["manifest"]
            except (ValueError, OSError):
                pass  # unreadable/invalid prior snapshot: start fresh

    @staticmethod
    def _key(run: dict) -> tuple:
        return (
            run["experiment"], run["dataset"], run["variant"],
            run["backend"], run["workers"],
        )

    def add_run(
        self,
        experiment: str,
        dataset: str,
        variant: str,
        backend: str,
        workers: int,
        seconds: float,
        mode: str = "measured",
        kernels: dict | None = None,
        **notes,
    ) -> dict:
        """Record one run, replacing any prior entry with the same key."""
        if mode not in RUN_MODES:
            raise ValueError(f"mode must be one of {RUN_MODES}, got {mode!r}")
        run = {
            "experiment": experiment,
            "dataset": dataset,
            "variant": variant,
            "backend": backend,
            "workers": int(workers),
            "mode": mode,
            "seconds": float(seconds),
        }
        if kernels:
            run["kernels"] = {k: float(v) for k, v in kernels.items()}
        if notes:
            run["notes"] = notes
        key = self._key(run)
        self.doc["runs"] = [r for r in self.doc["runs"] if self._key(r) != key]
        self.doc["runs"].append(run)
        return run

    def derive(self, name: str, value) -> None:
        """Record a derived scalar (speedups, identity checks, ...)."""
        self.doc["derived"][name] = value

    def attach_manifest(self, manifest: dict) -> None:
        """Attach a run-provenance manifest (see :mod:`repro.obs.manifest`).

        The manifest is validated here and again at :meth:`write`, so a
        snapshot either carries a well-formed provenance record or none.
        """
        from repro.obs.manifest import validate_manifest

        validate_manifest(manifest)
        self.doc["manifest"] = manifest

    def speedup(
        self, experiment: str, dataset: str, variant: str,
        base_backend: str = "serial", backend: str = "process",
    ) -> float | None:
        """Measured ``base/new`` wall-clock ratio between two backends."""
        times = {}
        for run in self.doc["runs"]:
            if (
                run["experiment"] == experiment
                and run["dataset"] == dataset
                and run["variant"] == variant
                and run["mode"] == "measured"
            ):
                times[run["backend"]] = run["seconds"]
        if base_backend in times and backend in times and times[backend] > 0:
            return times[base_backend] / times[backend]
        return None

    def write(self) -> Path:
        validate_snapshot(self.doc)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(self.doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return self.path


def validate_snapshot(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed snapshot."""
    if not isinstance(doc, dict):
        raise ValueError("snapshot must be a JSON object")
    if doc.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"schema_version must be {SNAPSHOT_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    for field, typ in (("snapshot", str), ("host", dict), ("runs", list),
                       ("derived", dict)):
        if not isinstance(doc.get(field), typ):
            raise ValueError(f"snapshot field {field!r} must be {typ.__name__}")
    host = doc["host"]
    if not isinstance(host.get("cpu_count"), int) or host["cpu_count"] < 1:
        raise ValueError("host.cpu_count must be a positive integer")
    for i, run in enumerate(doc["runs"]):
        if not isinstance(run, dict):
            raise ValueError(f"runs[{i}] must be an object")
        for field, typ in RUN_REQUIRED_FIELDS.items():
            value = run.get(field)
            if typ is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            else:
                ok = isinstance(value, typ) and not isinstance(value, bool)
            if not ok:
                raise ValueError(
                    f"runs[{i}].{field} must be {typ.__name__}, got {value!r}"
                )
        if run["mode"] not in RUN_MODES:
            raise ValueError(f"runs[{i}].mode must be one of {RUN_MODES}")
        if run["seconds"] < 0:
            raise ValueError(f"runs[{i}].seconds must be >= 0")
        if "kernels" in run and not isinstance(run["kernels"], dict):
            raise ValueError(f"runs[{i}].kernels must be an object")
    if "manifest" in doc:
        from repro.errors import GraphFormatError
        from repro.obs.manifest import validate_manifest

        try:
            validate_manifest(doc["manifest"])
        except GraphFormatError as exc:
            raise ValueError(f"snapshot manifest invalid: {exc}") from exc


def load_snapshot(path: str | Path) -> dict:
    """Read and validate a snapshot file."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_snapshot(doc)
    return doc
