"""Benchmark harness: workloads, tables, ASCII figures, paper references.

Every table and figure of the paper's evaluation section has a bench
target under ``benchmarks/`` built from these pieces; results are
printed side-by-side with the paper's published numbers and written to
``benchmarks/results/``.
"""

from repro.bench.tables import TextTable
from repro.bench.ascii import bar_chart, line_chart
from repro.bench.workloads import Workload, get_workload, run_variant
from repro.bench.report import ResultWriter
from repro.bench.snapshot import PerfSnapshot, load_snapshot, validate_snapshot

__all__ = [
    "PerfSnapshot",
    "ResultWriter",
    "TextTable",
    "Workload",
    "bar_chart",
    "get_workload",
    "line_chart",
    "load_snapshot",
    "run_variant",
    "validate_snapshot",
]
