"""Plain-text result tables (aligned columns, optional CSV export)."""

from __future__ import annotations

from pathlib import Path


class TextTable:
    """Minimal column-aligned table renderer for benchmark output."""

    def __init__(self, columns: list[str], title: str | None = None) -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> None:
        import csv

        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.1f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(v)
