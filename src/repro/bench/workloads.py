"""Cached benchmark workloads: dataset → (graph, triangles, decomposition).

The prerequisite kernels (triangle enumeration, truss decomposition) are
shared by all variants of an experiment, so they are computed once per
dataset and memoized for the whole benchmark session.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.equitruss.pipeline import BuildResult, build_index
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.obs.trace import current_tracer
from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.truss.decompose import TrussDecomposition, truss_decomposition


@dataclass(frozen=True)
class Workload:
    """One dataset prepared for index-construction experiments."""

    name: str
    graph: CSRGraph
    triangles: TriangleSet
    decomp: TrussDecomposition

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


@lru_cache(maxsize=8)
def get_workload(name: str, scale_factor: float = 1.0) -> Workload:
    """Load a dataset stand-in and precompute triangles + trussness."""
    graph = CSRGraph.from_edgelist(load_dataset(name, scale_factor))
    triangles = enumerate_triangles(graph)
    decomp = truss_decomposition(graph, triangles=triangles)
    return Workload(name=name, graph=graph, triangles=triangles, decomp=decomp)


def run_variant(
    workload: Workload,
    variant: str,
    num_workers: int = 1,
    include_prereqs: bool = False,
) -> BuildResult:
    """Run one EquiTruss variant on a prepared workload.

    With ``include_prereqs=True`` the Support and TrussDecomp kernels are
    recomputed inside the run (their time appears in the trace); the
    default reuses the cached prerequisites so only the index-construction
    kernels (Init, SpNode, SpEdge, SmGraph, SpNodeRemap) are timed.
    """
    if include_prereqs:
        result = build_index(workload.graph, variant, num_workers=num_workers)
    else:
        result = build_index(
            workload.graph,
            variant,
            decomp=workload.decomp,
            triangles=workload.triangles,
            num_workers=num_workers,
        )
    ambient = current_tracer()
    if ambient is not None:
        # Graft this run's span tree under a labelled wrapper so a bench
        # driver that loops workloads × variants exports one combined
        # trace (the REPRO_TRACE_DIR hook in benchmarks/conftest.py).
        wrapper = ambient.add(
            "Run",
            result.trace.tracer.total_seconds,
            workload=workload.name,
            variant=variant,
            num_workers=num_workers,
        )
        wrapper.children.extend(result.trace.tracer.roots)
    return result
