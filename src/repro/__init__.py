"""repro — parallel EquiTruss index construction for k-truss-based local
community detection in large graphs.

Python reproduction of Faysal, Bremer, Chan, Shalf & Arifuzzaman,
"Fast Parallel Index Construction for Efficient K-truss-based Local
Community Detection in Large Graphs", ICPP 2023.

High-level flow::

    from repro import build_graph, build_index, search_communities

    graph = build_graph(src_ids, dst_ids)
    index = build_index(graph, variant="afforest").index
    communities = search_communities(index, query_vertex, k=5)

See README.md for the architecture overview and DESIGN.md /
EXPERIMENTS.md for the reproduction methodology and results.
"""

__version__ = "1.0.0"

from repro.errors import (
    BackendError,
    EdgeNotFoundError,
    GraphConstructionError,
    GraphFormatError,
    IndexIntegrityError,
    InvalidParameterError,
    ReproError,
)
from repro.graph import CSRGraph, EdgeList, build_edgelist, build_graph
from repro.triangles import compute_support, count_triangles, enumerate_triangles
from repro.truss import truss_decomposition, verify_trussness
from repro.cc import connected_components
from repro.equitruss import (
    BuildResult,
    DynamicEquiTruss,
    EquiTrussIndex,
    build_index,
    equitruss_serial,
    verify_index_semantics,
)
from repro.community import (
    Community,
    TCPIndex,
    max_k_communities,
    online_communities,
    search_communities,
    search_communities_multi,
    top_r_communities,
)
from repro.serve import QueryCache, QueryDispatcher, QueryEngine
from repro.core_decomp import core_decomposition, kcore_community
from repro.distributed import (
    distributed_components,
    distributed_support,
    distributed_triangle_count,
)
from repro.parallel import (
    DtypePolicy,
    ExecutionContext,
    ExecutionPolicy,
    Instrumentation,
    MachineProfile,
    SimulatedMachine,
    Workspace,
)

__all__ = [
    "__version__",
    # errors
    "BackendError",
    "EdgeNotFoundError",
    "GraphConstructionError",
    "GraphFormatError",
    "IndexIntegrityError",
    "InvalidParameterError",
    "ReproError",
    # graph substrate
    "CSRGraph",
    "EdgeList",
    "build_edgelist",
    "build_graph",
    # triangle / truss kernels
    "compute_support",
    "count_triangles",
    "enumerate_triangles",
    "truss_decomposition",
    "verify_trussness",
    # connected components
    "connected_components",
    # the index
    "BuildResult",
    "DynamicEquiTruss",
    "EquiTrussIndex",
    "build_index",
    "equitruss_serial",
    "verify_index_semantics",
    # community search
    "Community",
    "TCPIndex",
    "max_k_communities",
    "online_communities",
    "search_communities",
    "search_communities_multi",
    "top_r_communities",
    # query serving
    "QueryCache",
    "QueryDispatcher",
    "QueryEngine",
    # k-core comparator
    "core_decomposition",
    "kcore_community",
    # distributed substrate
    "distributed_components",
    "distributed_support",
    "distributed_triangle_count",
    # parallel runtime
    "DtypePolicy",
    "ExecutionContext",
    "ExecutionPolicy",
    "Instrumentation",
    "MachineProfile",
    "SimulatedMachine",
    "Workspace",
]
