"""Command-line interface: ``python -m repro`` / ``equitruss``.

Subcommands
-----------
generate
    Materialize a synthetic dataset stand-in or a generator model to a
    graph file (``.npz`` or SNAP text).
index
    Build the EquiTruss index for a graph file and persist it.
query
    Answer local community queries from a saved index.
serve
    Run the sharded TCP serving frontend over a persisted store.
loadgen
    Drive open/closed-loop load against a running frontend.
info
    Summarize a graph or index file, or (``--trace``) print the
    per-kernel breakdown of a saved JSONL trace.

``index`` accepts ``--trace-out``/``--metrics-out`` to export the run's
span trace (JSONL) and metrics snapshot (JSON); the global
``--log-level`` flag enables structured key=value logging.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro import __version__


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph import generators, io
    from repro.graph.datasets import DATASETS, load_dataset

    if args.model in DATASETS:
        edges = load_dataset(args.model, scale_factor=args.scale_factor)
    elif args.model == "rmat":
        edges = generators.rmat_graph(args.scale, args.edge_factor, seed=args.seed)
    elif args.model == "gnm":
        edges = generators.erdos_renyi_gnm(args.n, args.m, seed=args.seed)
    else:
        print(f"unknown model {args.model!r}", file=sys.stderr)
        return 2
    out = Path(args.out)
    if out.suffix == ".npz":
        io.save_npz(edges, out)
    else:
        io.write_snap_text(edges, out)
    print(f"wrote {edges.num_vertices} vertices / {edges.num_edges} edges -> {out}")
    return 0


def _make_context(args: argparse.Namespace):
    """ExecutionContext from the shared --backend/--workers/--dtype flags.

    ``--backend process`` degrades to the thread backend (with a warning
    on stderr) where ``fork`` or POSIX shared memory is unavailable, so
    scripted invocations keep working across platforms.
    """
    from repro.parallel.context import ExecutionContext

    backend = getattr(args, "backend", "serial")
    if backend == "process":
        from repro.parallel.shm import process_backend_available

        if not process_backend_available():
            print(
                "warning: process backend unavailable on this platform "
                "(no fork or POSIX shared memory); using thread backend",
                file=sys.stderr,
            )
            backend = "thread"
    return ExecutionContext(
        backend=backend,
        num_workers=getattr(args, "workers", 1) or 1,
        dtype=getattr(args, "dtype", "auto"),
    )


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.equitruss import build_index
    from repro.graph.io import load_graph
    from repro.obs.logging import get_logger, kv
    from repro.obs.metrics import get_registry, reset_metrics
    from repro.obs.report import format_bytes

    log = get_logger("cli")
    reset_metrics()  # the metrics file reflects this run only
    ctx = _make_context(args)
    graph = load_graph(args.graph, ctx=ctx)
    log.info(kv("load_graph", path=args.graph, vertices=graph.num_vertices,
                edges=graph.num_edges, dtype=graph.index_dtype.name))
    from repro.obs.exporter import emitter_from_env

    emitter = emitter_from_env()  # REPRO_METRICS_INTERVAL/_PATH opt-in
    if emitter is not None:
        emitter.start()
    result = build_index(
        graph, variant=args.variant, ctx=ctx,
        store_path=args.store_out, store_generation=args.store_generation,
    )
    index = result.index
    index.validate()
    index.save(args.out)
    stats = index.stats()
    if result.store_path is not None:
        size = Path(result.store_path).stat().st_size
        print(
            f"wrote store (gen {args.store_generation}, "
            f"{format_bytes(size)}) -> {result.store_path}"
        )
    log.info(kv("build_index", variant=args.variant, seconds=f"{result.seconds:.4f}",
                supernodes=stats["num_supernodes"],
                superedges=stats["num_superedges"]))
    print(
        f"built {args.variant} index in {result.seconds:.3f}s: "
        f"{stats['num_supernodes']} supernodes, {stats['num_superedges']} superedges, "
        f"kmax={stats['kmax']} -> {args.out}"
    )
    registry = get_registry()
    ws_peak = registry.gauge("repro.mem.workspace_high_water").value
    print(
        f"dtype={ctx.edge_dtype(graph.num_edges).name} "
        f"(policy {ctx.dtype.name}), peak workspace {format_bytes(ws_peak)}"
    )
    if args.breakdown:
        for name, secs in result.breakdown.seconds.items():
            print(f"  {name:<12} {secs:8.4f}s")
    if args.trace_out:
        from repro.obs.export import write_trace_jsonl

        path = write_trace_jsonl(result.trace.tracer, args.trace_out)
        print(f"wrote trace -> {path}")
        log.info(kv("trace_out", path=str(path), spans=len(result.trace.tracer)))
    if args.metrics_out:
        from repro.obs.export import write_metrics_json

        registry = get_registry()
        path = write_metrics_json(registry, args.metrics_out)
        print(f"wrote metrics ({len(registry.names())} names) -> {path}")
        log.info(kv("metrics_out", path=str(path), names=len(registry.names())))
    if args.prom_out:
        from repro.obs.exporter import render_prometheus

        Path(args.prom_out).write_text(
            render_prometheus(get_registry()), encoding="utf-8"
        )
        print(f"wrote prometheus exposition -> {args.prom_out}")
    manifest_out = args.manifest_out
    if manifest_out is None and args.trace_out:
        # every exported trace ships with its provenance record
        manifest_out = f"{args.trace_out}.manifest.json"
    if manifest_out:
        from repro.obs.manifest import collect_manifest, write_manifest

        doc = collect_manifest(
            ctx=ctx, graph=graph, dataset=str(args.graph),
            extra={"command": "index", "variant": args.variant},
        )
        path = write_manifest(doc, manifest_out)
        print(f"wrote manifest -> {path}")
        log.info(kv("manifest_out", path=str(path)))
    if emitter is not None:
        emitter.stop()
        print(f"wrote metrics stream -> {emitter.path}")
    ctx.close()  # release worker processes / shared segments promptly
    return 0


def _parse_batch_file(path: str, default_k: int | None) -> list[tuple[int, int]]:
    """Read ``vertex [k]`` request lines; blank lines and # comments ok."""
    requests: list[tuple[int, int]] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (1, 2):
            raise ValueError(f"{path}:{lineno}: expected 'vertex [k]', got {raw!r}")
        vertex = int(parts[0])
        k = int(parts[1]) if len(parts) == 2 else default_k
        if k is None:
            raise ValueError(
                f"{path}:{lineno}: no k on the line and no --k default given"
            )
        requests.append((vertex, k))
    return requests


def _print_communities(communities, label: str) -> None:
    for i, c in enumerate(communities):
        verts = c.vertices()
        head = ", ".join(map(str, verts[:12].tolist()))
        more = "" if verts.size <= 12 else f", ... ({verts.size} total)"
        print(f"[{i}] k={c.k} edges={c.num_edges} vertices={{{head}{more}}}")
    if not communities:
        print(f"{label}: no community at the requested level")


def _cmd_query(args: argparse.Namespace) -> int:
    import time

    from repro.community import (
        max_k_communities,
        search_communities,
        top_r_communities,
    )
    from repro.equitruss import EquiTrussIndex

    index = EquiTrussIndex.load(args.index)
    ctx = _make_context(args)
    use_components = args.engine == "components"
    if use_components and (args.max_k or args.top_r is not None):
        print("--max-k/--top-r require --engine bfs", file=sys.stderr)
        return 2

    engine = None
    if use_components:
        from repro.serve import QueryEngine

        engine = QueryEngine(index, ctx=ctx)
        if args.warm_cache:
            print(f"warmed {engine.warm()} communities")

    if args.batch_file:
        if args.vertex is not None:
            print("--batch-file and --vertex are mutually exclusive", file=sys.stderr)
            return 2
        try:
            requests = _parse_batch_file(args.batch_file, args.k)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        if use_components:
            from repro.serve import QueryDispatcher

            answers = QueryDispatcher(engine, ctx=ctx).run(requests)
        else:
            with ctx.region("ServeBatch", work=len(requests), parallel=False):
                answers = [search_communities(index, v, k, ctx=ctx) for v, k in requests]
        elapsed = time.perf_counter() - t0
        for (v, k), communities in zip(requests, answers):
            sizes = ",".join(str(c.num_edges) for c in communities)
            print(f"vertex {v} k={k}: {len(communities)} communities [{sizes}]")
        qps = len(requests) / elapsed if elapsed > 0 else float("inf")
        print(
            f"served {len(requests)} queries in {elapsed:.4f}s "
            f"({qps:.0f} q/s, engine={args.engine})"
        )
    else:
        if args.vertex is None:
            print("either --vertex or --batch-file is required", file=sys.stderr)
            return 2
        if args.max_k:
            k, communities = max_k_communities(index, args.vertex)
            if not communities:
                print(f"vertex {args.vertex}: no k-truss community")
                return 0
            print(f"vertex {args.vertex}: maximum cohesion k={k}")
        elif args.top_r is not None:
            communities = top_r_communities(index, args.vertex, args.top_r)
        else:
            if args.k is None:
                print("either --k, --top-r, or --max-k is required", file=sys.stderr)
                return 2
            if use_components:
                communities = engine.query(args.vertex, args.k)
            else:
                communities = search_communities(index, args.vertex, args.k, ctx=ctx)
        _print_communities(communities, f"vertex {args.vertex}")

    if engine is not None:
        s = engine.stats()
        print(
            f"cache: {s['cache_hits']} hits / {s['cache_misses']} misses, "
            f"{s['materialized_communities']} communities materialized"
        )
    if args.trace_out:
        from repro.obs.export import write_trace_jsonl

        path = write_trace_jsonl(ctx.tracer, args.trace_out)
        print(f"wrote trace -> {path}")
    ctx.close()
    return 0


def _cmd_attach(args: argparse.Namespace) -> int:
    """mmap-attach a store and (optionally) serve queries from it."""
    from repro.errors import StoreError
    from repro.obs.report import format_bytes
    from repro.store import attach_store

    ctx = _make_context(args)
    try:
        store = attach_store(args.store, verify=args.verify, ctx=ctx)
    except StoreError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    tables = "stored component tables" if store.components is not None \
        else "no component tables (sweep on demand)"
    print(
        f"attached {args.store} in {store.attach_ms:.2f} ms "
        f"(gen {store.generation}, {format_bytes(store.bytes_mapped)} mapped, "
        f"{tables})"
    )
    if args.refresh:
        report = store.refresh()
        what = "re-attached after swap" if report.swapped else \
            f"replayed {report.applied} journal entries"
        print(f"refresh: {what} (gen {report.generation})")
    else:
        lag = store.pending_updates()
        if lag:
            print(f"journal lag: {lag} unapplied update batches (--refresh applies)")
    if args.vertex is not None:
        if args.k is None:
            print("--vertex requires --k", file=sys.stderr)
            store.close()
            ctx.close()
            return 2
        engine = store.engine()
        communities = engine.query(args.vertex, args.k)
        _print_communities(communities, f"vertex {args.vertex}")
    ctx.close()  # releases the mapping via the registered closer
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the sharded serving frontend over a persisted store."""
    import asyncio

    from repro.errors import ServeError, StoreError
    from repro.serve.frontend import FrontendConfig, run_frontend

    config = FrontendConfig(
        store_path=args.store,
        num_shards=args.shards,
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        variant=args.variant,
        auto_refresh=args.auto_refresh,
    )

    def on_ready(frontend) -> None:
        print(
            f"serving {args.store} at {frontend.host}:{frontend.port} "
            f"with {args.shards} shards "
            f"(window {args.window_ms} ms, max batch {args.max_batch}, "
            f"admission limit {args.max_pending})"
        )
        if args.endpoint_file:
            Path(args.endpoint_file).write_text(
                f"{frontend.host} {frontend.port}\n", encoding="utf-8"
            )
        sys.stdout.flush()

    try:
        asyncio.run(
            run_frontend(config, duration=args.duration, on_ready=on_ready)
        )
    except (ServeError, StoreError) as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive open/closed-loop load against a running frontend."""
    import json

    from repro.errors import ServeError
    from repro.serve.loadgen import (
        closed_loop,
        default_ks,
        discover_universe,
        open_loop,
    )

    try:
        num_vertices, kmax = discover_universe(args.host, args.port)
    except (ServeError, OSError) as exc:
        print(f"FAILED: no frontend at {args.host}:{args.port} ({exc})",
              file=sys.stderr)
        return 1
    ks = default_ks(kmax)
    if args.mode == "closed":
        report = closed_loop(
            args.host, args.port, clients=args.clients, seconds=args.seconds,
            num_vertices=num_vertices, ks=ks, seed=args.seed,
        )
    else:
        if args.rate is None:
            print("--mode open requires --rate", file=sys.stderr)
            return 2
        report = open_loop(
            args.host, args.port, rate=args.rate, seconds=args.seconds,
            num_vertices=num_vertices, ks=ks, seed=args.seed,
        )
    summary = report.as_dict()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    offered = "closed loop" if report.offered_qps is None else \
        f"{report.offered_qps:.1f} qps offered"
    print(
        f"{report.mode} load ({offered}, {report.clients} clients, "
        f"{report.seconds:.1f}s): {report.achieved_qps:.1f} qps achieved"
    )
    print(
        f"  {report.ok} ok / {report.rejected} rejected / "
        f"{report.shard_errors + report.other_errors} errors"
    )
    for q in (50, 95, 99):
        p = summary[f"p{q}_ms"]
        if p is not None:
            print(f"  p{q} {p:.2f} ms")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Inspect / verify a store file without serving from it."""
    import json

    from repro.errors import StoreError
    from repro.store import inspect_store, verify_store

    try:
        if args.store_command == "verify":
            report = verify_store(args.store)
            print(
                f"OK: {report['sections']} sections, "
                f"{report['payload_bytes']} payload bytes, "
                f"generation {report['generation']}, checksums + fingerprint match"
            )
            return 0
        info = inspect_store(args.store)
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(f"store {info['path']} (format v{info['format_version']})")
        print(
            f"  generation {info['generation']}, "
            f"{info['num_vertices']} vertices / {info['num_edges']} edges, "
            f"dataset sha256 {info['dataset_sha256'][:12]}…"
        )
        print(
            f"  payload {info['payload_bytes']} bytes in "
            f"{len(info['sections'])} sections, components="
            f"{'yes' if info['has_components'] else 'no'}, "
            f"git {info['git_sha'] or 'unknown'}"
        )
        for name, entry in info["sections"].items():
            print(
                f"    {name:<28} {entry['dtype']:<5} "
                f"shape={entry['shape']} ({entry['nbytes']} bytes)"
            )
        return 0
    except StoreError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1


def _cmd_info(args: argparse.Namespace) -> int:
    if args.trace:
        from repro.equitruss.kernels import KERNELS, TRUSS_DECOMP
        from repro.errors import GraphFormatError
        from repro.obs.export import read_trace_jsonl
        from repro.obs.report import breakdown_table, flamegraph

        try:
            spans = read_trace_jsonl(args.trace)
        except GraphFormatError as exc:
            if "empty trace file" in str(exc):
                # a run that recorded nothing is a degenerate trace, not
                # an error — report it and exit cleanly
                print(f"{args.trace}: empty trace (no spans recorded)")
                return 0
            raise
        if not spans:
            print(f"{args.trace}: trace has no spans")
            return 0
        print(breakdown_table(spans, include=(*KERNELS, TRUSS_DECOMP),
                              title=f"per-kernel breakdown: {args.trace}"))
        if args.flame:
            print()
            print(flamegraph(spans))
        return 0
    if args.file is None:
        print("either a graph/index file or --trace is required", file=sys.stderr)
        return 2
    path = Path(args.file)
    with np.load(path) as data:
        is_index = "supernode_trussness" in data.files
    if is_index:
        from repro.equitruss import EquiTrussIndex

        index = EquiTrussIndex.load(path)
        print(f"EquiTruss index over {index.graph.num_vertices} vertices / "
              f"{index.graph.num_edges} edges")
        for key, value in index.stats().items():
            print(f"  {key}: {value}")
    else:
        from repro.graph.io import load_graph
        from repro.graph.properties import summarize

        graph = load_graph(path)
        s = summarize(graph.edges)
        print(f"graph: {s.num_vertices} vertices, {s.num_edges} edges, "
              f"max degree {s.max_degree}, mean degree {s.mean_degree:.2f}, "
              f"{s.num_isolated} isolated")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.equitruss import EquiTrussIndex
    from repro.equitruss.verify import verify_index_semantics
    from repro.errors import IndexIntegrityError

    index = EquiTrussIndex.load(args.index)
    try:
        verify_index_semantics(index.graph, index, ctx=_make_context(args))
    except IndexIntegrityError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {index.num_supernodes} supernodes / {index.num_superedges} "
        f"superedges satisfy Definitions 8 and 9"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.__main__ import main as lint_main

    forwarded: list[str] = list(args.paths)
    if args.baseline is not None:
        forwarded.append("--baseline")
        if args.baseline != "":
            forwarded.append(args.baseline)
    if args.write_baseline is not None:
        forwarded.append("--write-baseline")
        if args.write_baseline != "":
            forwarded.append(args.write_baseline)
    if args.rules:
        forwarded.extend(["--rules", args.rules])
    if args.format != "text":
        forwarded.extend(["--format", args.format])
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="equitruss",
        description="Parallel EquiTruss index construction and local community search",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--log-level", default=None, choices=["debug", "info", "warning", "error"],
        help="enable structured key=value logging at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="materialize a synthetic graph")
    gen.add_argument("model", help="dataset name (amazon..friendster) or rmat|gnm")
    gen.add_argument("--out", required=True, help="output file (.npz or .txt)")
    gen.add_argument("--scale-factor", type=float, default=1.0)
    gen.add_argument("--scale", type=int, default=10, help="rmat: log2(vertices)")
    gen.add_argument("--edge-factor", type=int, default=8, help="rmat: edges per vertex")
    gen.add_argument("--n", type=int, default=1000, help="gnm: vertices")
    gen.add_argument("--m", type=int, default=5000, help="gnm: edges")
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    def add_context_flags(p: argparse.ArgumentParser) -> None:
        """The shared ExecutionContext flags (--backend/--workers/--dtype)."""
        p.add_argument("--backend", default="serial",
                       choices=["serial", "thread", "process"],
                       help="execution backend for the kernels (process = "
                            "persistent fork workers over shared memory)")
        p.add_argument("--workers", type=int, default=1,
                       help="worker count for the chosen backend")
        p.add_argument("--dtype", default="auto", choices=["auto", "int32", "int64"],
                       help="index dtype policy (auto narrows to int32 when safe)")

    idx = sub.add_parser("index", help="build and save an EquiTruss index")
    idx.add_argument("graph", help="graph file (.npz or SNAP text)")
    idx.add_argument("--out", required=True, help="output index .npz")
    idx.add_argument("--variant", default="afforest",
                     choices=["baseline", "coptimal", "afforest"])
    add_context_flags(idx)
    idx.add_argument("--breakdown", action="store_true",
                     help="print the per-kernel timing breakdown")
    idx.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write the hierarchical span trace as JSONL")
    idx.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the run's metrics snapshot as JSON")
    idx.add_argument("--prom-out", default=None, metavar="PATH",
                     help="write the metrics in Prometheus text exposition format")
    idx.add_argument("--manifest-out", default=None, metavar="PATH",
                     help="write a run-provenance manifest (defaults to "
                          "<trace-out>.manifest.json when --trace-out is given)")
    idx.add_argument("--store-out", default=None, metavar="PATH",
                     help="also persist a binary mmap-attach store (atomic "
                          "swap; includes the precomputed serving tables)")
    idx.add_argument("--store-generation", type=int, default=1,
                     help="journal epoch of the store artifact (bump past "
                          "absorbed journal entries when swapping a live store)")
    idx.set_defaults(func=_cmd_index)

    att = sub.add_parser(
        "attach",
        help="mmap-attach a persisted store and serve queries in milliseconds",
    )
    att.add_argument("store", help="store file from index --store-out")
    att.add_argument("--vertex", type=int, default=None)
    att.add_argument("--k", type=int, default=None)
    att.add_argument("--verify", action="store_true",
                     help="check every section checksum before serving")
    att.add_argument("--refresh", action="store_true",
                     help="replay journal entries / re-attach after a swap "
                          "before answering")
    add_context_flags(att)
    att.set_defaults(func=_cmd_attach)

    srv = sub.add_parser(
        "serve",
        help="run the sharded TCP serving frontend over a persisted store",
    )
    srv.add_argument("store", help="persisted .eqtsidx store file")
    srv.add_argument("--shards", type=int, default=2,
                     help="shard worker processes (default 2)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0,
                     help="TCP port (0 picks an ephemeral one)")
    srv.add_argument("--window-ms", type=float, default=2.0,
                     help="request-coalescing window in milliseconds")
    srv.add_argument("--max-batch", type=int, default=64,
                     help="flush a coalesced batch at this size")
    srv.add_argument("--max-pending", type=int, default=1024,
                     help="admission limit before backpressure rejections")
    srv.add_argument("--cache-size", type=int, default=1024,
                     help="per-shard engine LRU result-cache entries")
    srv.add_argument("--variant", default="afforest",
                     help="variant for journal-replay refresh")
    srv.add_argument("--auto-refresh", action="store_true",
                     help="shards check the update journal before every batch")
    srv.add_argument("--duration", type=float, default=None,
                     help="serve for this many seconds (default: forever)")
    srv.add_argument("--endpoint-file", default=None, metavar="PATH",
                     help="write 'host port' here once the socket is bound")
    srv.set_defaults(func=_cmd_serve)

    lg = sub.add_parser(
        "loadgen", help="drive open/closed-loop load against a frontend"
    )
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, required=True)
    lg.add_argument("--mode", choices=["closed", "open"], default="closed")
    lg.add_argument("--clients", type=int, default=4,
                    help="closed-loop concurrent connections")
    lg.add_argument("--rate", type=float, default=None,
                    help="open-loop offered arrival rate (qps)")
    lg.add_argument("--seconds", type=float, default=5.0)
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--json", action="store_true",
                    help="print the report as JSON instead of text")
    lg.set_defaults(func=_cmd_loadgen)

    st = sub.add_parser("store", help="inspect or verify a persisted store file")
    st_sub = st.add_subparsers(dest="store_command", required=True)
    st_inspect = st_sub.add_parser(
        "inspect", help="print the header: generation, sections, provenance"
    )
    st_inspect.add_argument("store")
    st_inspect.add_argument("--json", action="store_true",
                            help="machine-readable header dump")
    st_inspect.set_defaults(func=_cmd_store)
    st_verify = st_sub.add_parser(
        "verify", help="full integrity check: section checksums + fingerprint"
    )
    st_verify.add_argument("store")
    st_verify.set_defaults(func=_cmd_store)

    q = sub.add_parser("query", help="local community search from a saved index")
    q.add_argument("index", help="index .npz from the index subcommand")
    q.add_argument("--vertex", type=int, default=None)
    q.add_argument("--k", type=int, default=None)
    q.add_argument("--top-r", type=int, default=None,
                   help="return the r most cohesive communities")
    q.add_argument("--max-k", action="store_true",
                   help="query at the vertex's maximum cohesion level")
    q.add_argument("--engine", default="bfs", choices=["bfs", "components"],
                   help="bfs: per-query supergraph BFS; components: the "
                        "precomputed-component serving engine")
    q.add_argument("--batch-file", default=None, metavar="PATH",
                   help="serve a batch: one 'vertex [k]' request per line "
                        "(k falls back to --k)")
    q.add_argument("--warm-cache", action="store_true",
                   help="components engine: materialize every community "
                        "up front before serving")
    q.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write the per-request span trace as JSONL")
    add_context_flags(q)
    q.set_defaults(func=_cmd_query)

    info = sub.add_parser("info", help="summarize a graph, index, or trace file")
    info.add_argument("file", nargs="?", default=None)
    info.add_argument("--trace", default=None, metavar="PATH",
                      help="print the per-kernel breakdown of a saved JSONL trace")
    info.add_argument("--flame", action="store_true",
                      help="with --trace: also print the span-tree flamegraph")
    info.set_defaults(func=_cmd_info)

    ver = sub.add_parser(
        "verify", help="deep semantic verification of a saved index"
    )
    ver.add_argument("index", help="index .npz (embeds its graph)")
    add_context_flags(ver)
    ver.set_defaults(func=_cmd_verify)

    lint = sub.add_parser(
        "lint",
        help="run the contract linter (alias of python -m repro.analysis)",
    )
    lint.add_argument("paths", nargs="*", default=[],
                      help="files or directories (default: src/repro)")
    lint.add_argument("--baseline", nargs="?", const="", default=None,
                      metavar="PATH",
                      help="only findings absent from the baseline fail")
    lint.add_argument("--write-baseline", nargs="?", const="", default=None,
                      metavar="PATH", help="grandfather the current findings")
    lint.add_argument("--rules", default=None, metavar="REP001,REP003",
                      help="comma-separated rule ids to run")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"])
    lint.add_argument("--list-rules", action="store_true",
                      help="print every rule id with its contract")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        from repro.obs.logging import setup_logging

        setup_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
