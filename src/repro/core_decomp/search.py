"""K-core-based local community search (the weaker comparator).

Returns the connected component of the query vertex inside the maximal
k-core — the community model of [5, 34, 42] the paper contrasts with.
Two structural weaknesses the paper cites, both observable with this
implementation (see ``benchmarks/bench_ablation_kcore_vs_ktruss.py``):

* one community per (vertex, k) — no overlapping membership;
* weak cohesion — a k-core can chain loosely-attached vertices that a
  k-truss (triangle-support-based) community excludes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.community.model import Community
from repro.core_decomp.kcore import CoreDecomposition, core_decomposition
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


def kcore_community(
    graph: CSRGraph,
    query_vertex: int,
    k: int,
    decomp: CoreDecomposition | None = None,
) -> Community | None:
    """The k-core community of ``query_vertex``, or ``None``.

    Returned as a :class:`Community` over the edges of the component
    (both endpoints with coreness ≥ k) so it compares directly with
    k-truss communities under the shared quality metrics.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if not 0 <= query_vertex < graph.num_vertices:
        raise InvalidParameterError(f"vertex {query_vertex} out of range")
    if decomp is None:
        decomp = core_decomposition(graph)
    member = decomp.coreness >= k
    if not member[query_vertex]:
        return None
    # BFS inside the k-core from the query vertex
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[query_vertex] = True
    queue: deque[int] = deque([query_vertex])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v).tolist():
            if member[w] and not seen[w]:
                seen[w] = True
                queue.append(w)
    u, v = graph.edges.u, graph.edges.v
    edge_mask = seen[u] & seen[v]
    edge_ids = np.flatnonzero(edge_mask)
    if edge_ids.size == 0:
        return None
    return Community(k=k, edge_ids=edge_ids, graph=graph)
