"""K-core decomposition: coreness per vertex.

The k-core is the maximal subgraph in which every vertex has degree
≥ k; the *coreness* of a vertex is the largest k whose k-core contains
it. Structure mirrors :mod:`repro.truss.decompose`: a vectorized
level-synchronous peeling (production) and a bucket-queue serial
reference for cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of a core decomposition.

    ``coreness[v]`` is the largest k such that v belongs to a k-core
    (0 for isolated vertices).
    """

    coreness: np.ndarray
    peel_rounds: int

    @property
    def num_vertices(self) -> int:
        return self.coreness.size

    @property
    def degeneracy(self) -> int:
        """Largest coreness (the graph's degeneracy)."""
        return int(self.coreness.max()) if self.coreness.size else 0

    def core_sizes(self) -> dict[int, int]:
        """Number of vertices with coreness exactly k, for k ≥ 1."""
        ks = np.unique(self.coreness)
        return {int(k): int((self.coreness == k).sum()) for k in ks if k >= 1}


def k_core_vertex_mask(decomp: CoreDecomposition, k: int) -> np.ndarray:
    """Boolean mask of vertices in the maximal k-core."""
    if k < 0:
        raise InvalidParameterError(f"k must be >= 0, got {k}")
    return decomp.coreness >= k


def core_decomposition(graph: CSRGraph) -> CoreDecomposition:
    """Vectorized level-synchronous core peeling.

    At level k, repeatedly remove every remaining vertex of degree < k;
    removed vertices have coreness k - 1. Degree decrements are one
    ``bincount`` scatter per sub-round.
    """
    n = graph.num_vertices
    deg = graph.degrees().astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    coreness = np.zeros(n, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    remaining = n
    rounds = 0
    k = 1
    while remaining > 0:
        frontier = np.flatnonzero(alive & (deg < k))
        if frontier.size == 0:
            k += 1
            continue
        while frontier.size:
            rounds += 1
            coreness[frontier] = k - 1
            alive[frontier] = False
            remaining -= frontier.size
            counts = indptr[frontier + 1] - indptr[frontier]
            total = int(counts.sum())
            if total:
                cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
                local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
                nbrs = indices[np.repeat(indptr[frontier], counts) + local]
                nbrs = nbrs[alive[nbrs]]
                if nbrs.size:
                    deg -= np.bincount(nbrs, minlength=n)
            frontier = np.flatnonzero(alive & (deg < k))
        k += 1
    return CoreDecomposition(coreness=coreness, peel_rounds=rounds)


def core_decomposition_serial(graph: CSRGraph) -> CoreDecomposition:
    """Bucket-queue reference (Batagelj–Zaversnik style)."""
    n = graph.num_vertices
    deg = graph.degrees().astype(np.int64).copy()
    coreness = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    max_deg = int(deg.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[int(deg[v])].append(v)
    cursor = 0
    processed = 0
    level = 0
    rounds = 0
    while processed < n:
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        v = buckets[cursor].pop()
        if not alive[v] or int(deg[v]) != cursor:
            continue
        rounds += 1
        level = max(level, cursor)
        coreness[v] = level
        alive[v] = False
        processed += 1
        for w in graph.neighbors(v).tolist():
            if alive[w]:
                new_deg = int(deg[w]) - 1
                deg[w] = new_deg
                buckets[new_deg].append(w)
                if new_deg < cursor:
                    cursor = new_deg
    return CoreDecomposition(coreness=coreness, peel_rounds=rounds)
