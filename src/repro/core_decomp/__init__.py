"""K-core decomposition and k-core-based local community search.

The paper motivates k-truss by contrast with k-core (§1, §5): k-core is
polynomially solvable but "lacks cohesion" [11] and "cannot detect
overlapping membership communities" [5, 49]. This package implements
that comparator so the claim can be demonstrated quantitatively: core
decomposition (vectorized peeling + serial reference) and a k-core
community search returning the connected component of the query vertex
inside the maximal k-core.
"""

from repro.core_decomp.kcore import (
    CoreDecomposition,
    core_decomposition,
    core_decomposition_serial,
    k_core_vertex_mask,
)
from repro.core_decomp.search import kcore_community

__all__ = [
    "CoreDecomposition",
    "core_decomposition",
    "core_decomposition_serial",
    "k_core_vertex_mask",
    "kcore_community",
]
