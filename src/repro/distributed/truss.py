"""Distributed truss decomposition (level-synchronous PKT over ranks).

The shared-nothing layout of distributed k-truss systems [10, 31]:

* edges are partitioned; each rank owns the support counters and
  liveness flags of its edge slice;
* every triangle is assigned to exactly one rank (the owner of its
  ``e_uv`` side), which tracks the triangle's liveness;
* one peel sub-round = owners detect their local frontier (edges whose
  support fell below k - 2), the frontier is ``allgather``-ed, triangle
  owners kill the triangles hit and route support decrements to the
  owners of the surviving side edges (``alltoall``), and a changed-flag
  ``allreduce`` closes the round.

Triangle discovery reuses :func:`repro.distributed.triangles` exchange
machinery implicitly by accepting a precomputed
:class:`~repro.triangles.enumerate.TriangleSet` (or enumerating
locally); the measured quantity of interest is the per-round decrement
traffic.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import CommStats, SimComm, run_spmd
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.obs import trace as obs_trace
from repro.triangles.enumerate import TriangleSet, enumerate_triangles
from repro.truss.decompose import TrussDecomposition


def _truss_rank(
    comm: SimComm, edges: EdgeList, triples: np.ndarray, sup0: np.ndarray
) -> np.ndarray:
    m = edges.num_edges
    size = comm.size
    # block edge ownership
    block = -(-m // size) or 1
    owner = np.minimum(np.arange(m, dtype=np.int64) // block, size - 1)
    mine = owner == comm.rank

    # triangle assignment: owner of the e_uv side
    tri_mine = owner[triples[:, 0]] == comm.rank if triples.size else np.empty(0, bool)
    my_tris = triples[tri_mine] if triples.size else triples.reshape(0, 3)
    tri_alive = np.ones(my_tris.shape[0], dtype=bool)
    # local incidence: edge -> triangle rows (only for my triangles)
    sup = np.where(mine, sup0, 0).astype(np.int64)
    alive = np.ones(m, dtype=bool)  # liveness replicated via frontier broadcast
    tau = np.full(m, 2, dtype=np.int64)

    remaining = int(comm.allreduce(int(mine.sum()), op="sum"))
    k = 3
    while remaining > 0:
        while True:
            local_frontier = np.flatnonzero(mine & alive & (sup < k - 2))
            frontier_parts = comm.allgather(local_frontier)
            frontier = np.concatenate(frontier_parts)
            if frontier.size == 0:
                break
            tau[frontier[mine[frontier]]] = k - 1
            alive[frontier] = False
            remaining -= int(comm.allreduce(int(mine[frontier].sum()), op="sum"))
            # kill my triangles hit by the global frontier; decrement the
            # surviving sides, routing each decrement to its edge's owner
            if my_tris.shape[0]:
                hit = tri_alive & (~alive[my_tris]).any(axis=1)
                dying = my_tris[hit]
                tri_alive[hit] = False
                sides = dying.ravel()
                sides = sides[alive[sides]]
            else:
                sides = np.empty(0, dtype=np.int64)
            dest = owner[sides] if sides.size else np.empty(0, np.int64)
            buckets = [sides[dest == r] for r in range(size)]
            incoming = comm.alltoall(buckets)
            for arr in incoming:
                if arr.size:
                    sup -= np.bincount(arr, minlength=m)
        k += 1
    # merge per-rank tau slices (every edge has exactly one owner)
    return comm.allreduce(np.where(mine, tau, 0), op="sum")


def distributed_truss_decomposition(
    edges: EdgeList,
    num_ranks: int,
    triangles: TriangleSet | None = None,
) -> tuple[TrussDecomposition, CommStats]:
    """Trussness per edge computed by ``num_ranks`` SPMD ranks.

    ``triangles`` may be precomputed (e.g. by
    :func:`repro.distributed.triangles.distributed_support`'s exchange);
    otherwise enumerated once up front.
    """
    with obs_trace.span("DistTrussDecomp", ranks=num_ranks):
        if triangles is None:
            triangles = enumerate_triangles(CSRGraph.from_edgelist(edges))
        triples = (
            np.stack([triangles.e_uv, triangles.e_uw, triangles.e_vw], axis=1)
            if triangles.count
            else np.empty((0, 3), dtype=np.int64)
        )
        sup0 = triangles.support()
        results, stats = run_spmd(num_ranks, _truss_rank, edges, triples, sup0)
        tau = results[0]
        return (
            TrussDecomposition(trussness=tau, support=sup0, peel_rounds=0),
            stats,
        )
