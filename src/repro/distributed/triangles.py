"""Distributed triangle counting / support over a 1-D edge partition.

The distributed analog of the pipeline's Support kernel, shaped after
shared-nothing triangle counting (the paper's distributed k-truss
citations [10, 31] all start here):

1. global degrees by ``allreduce`` of per-rank degree counts;
2. degree-order the edges into a DAG and *redistribute* every directed
   edge to the owner of its tail (one ``alltoall``) — after this, each
   rank holds the complete out-adjacency N⁺(v) of its owned vertices;
3. each rank requests the out-lists of the distinct heads appearing in
   its slice from their owners (request + response ``alltoall``);
4. local vectorized intersection (same keyed-searchsorted kernel as the
   single-node enumeration), each triangle found exactly once;
5. ``allreduce`` merges per-edge support (attributed by global edge id).

Steps 3–4 carry the dominant communication volume, which the benchmark
reports as a function of rank count.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import CommStats, SimComm, run_spmd
from repro.distributed.partition import VertexOwnership, partition_edges
from repro.graph.edgelist import EdgeList
from repro.obs import trace as obs_trace


def _triangle_rank(
    comm: SimComm, edges: EdgeList, strategy: str
) -> tuple[int, np.ndarray]:
    n = edges.num_vertices
    ownership = VertexOwnership(n, comm.size)
    parts = partition_edges(edges, comm.size, strategy=strategy)
    part = parts[comm.rank]

    # -- 1. global degrees ------------------------------------------------
    local_deg = np.bincount(part.u, minlength=n) + np.bincount(part.v, minlength=n)
    deg = comm.allreduce(local_deg, op="sum")
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[np.lexsort((np.arange(n), deg))] = np.arange(n, dtype=np.int64)

    # -- 2. orient and redistribute to tail owners ------------------------
    u_first = rank_of[part.u] < rank_of[part.v]
    tails = np.where(u_first, part.u, part.v)
    heads = np.where(u_first, part.v, part.u)
    eids = part.edge_ids
    dest = ownership.owner_of(tails)
    buckets = []
    for r in range(comm.size):
        sel = dest == r
        buckets.append((tails[sel], heads[sel], eids[sel]))
    incoming = comm.alltoall(buckets)
    tails = np.concatenate([b[0] for b in incoming])
    heads = np.concatenate([b[1] for b in incoming])
    eids = np.concatenate([b[2] for b in incoming])

    # local DAG CSR over owned tails, columns sorted
    order = np.argsort(tails * np.int64(max(n, 1)) + heads, kind="stable")
    tails, heads, eids = tails[order], heads[order], eids[order]
    slot_keys = tails * np.int64(max(n, 1)) + heads

    # -- 3. fetch out-lists of distinct heads ------------------------------
    need = np.unique(heads)
    req_dest = ownership.owner_of(need)
    req_buckets = [need[req_dest == r] for r in range(comm.size)]
    requests = comm.alltoall(req_buckets)
    replies = []
    for verts in requests:
        # respond with (vertex, its out-neighbors) pairs, concatenated
        out_lists = []
        counts = []
        for x in np.asarray(verts, dtype=np.int64):
            sel_lo = np.searchsorted(tails, x)
            sel_hi = np.searchsorted(tails, x, side="right")
            out_lists.append(heads[sel_lo:sel_hi])
            counts.append(sel_hi - sel_lo)
        replies.append(
            (
                np.asarray(verts, dtype=np.int64),
                np.asarray(counts, dtype=np.int64),
                np.concatenate(out_lists) if out_lists else np.empty(0, np.int64),
            )
        )
    responses = comm.alltoall(replies)
    head_adj: dict[int, np.ndarray] = {}
    for verts, counts, flat in responses:
        offset = 0
        for x, c in zip(verts.tolist(), counts.tolist()):
            head_adj[x] = flat[offset : offset + c]
            offset += c

    # -- 4. local intersection ---------------------------------------------
    sup = np.zeros(edges.num_edges, dtype=np.int64)
    count = 0
    if tails.size:
        cand_counts = np.array([head_adj[int(h)].size for h in heads], dtype=np.int64)
        total = int(cand_counts.sum())
        if total:
            w = np.concatenate([head_adj[int(h)] for h in heads])
            t_rep = np.repeat(tails, cand_counts)
            q = t_rep * np.int64(max(n, 1)) + w
            pos = np.searchsorted(slot_keys, q)
            pos_c = np.minimum(pos, slot_keys.size - 1)
            found = slot_keys[pos_c] == q
            count = int(found.sum())
            if count:
                # attribute support to the three global edge ids
                e_uv = np.repeat(eids, cand_counts)[found]
                e_uw = eids[pos_c[found]]
                e_vw = edges.edge_ids(
                    np.repeat(heads, cand_counts)[found], w[found]
                )
                for arr in (e_uv, e_uw, e_vw):
                    sup += np.bincount(arr, minlength=edges.num_edges)
    # -- 5. merge ------------------------------------------------------------
    total_count = comm.allreduce(count, op="sum")
    total_sup = comm.allreduce(sup, op="sum")
    return int(total_count), total_sup


def distributed_triangle_count(
    edges: EdgeList, num_ranks: int, strategy: str = "hash"
) -> tuple[int, CommStats]:
    """Exact global triangle count over ``num_ranks`` SPMD ranks."""
    with obs_trace.span("DistTriangleCount", ranks=num_ranks, strategy=strategy):
        results, stats = run_spmd(num_ranks, _triangle_rank, edges, strategy)
        return results[0][0], stats


def distributed_support(
    edges: EdgeList, num_ranks: int, strategy: str = "hash"
) -> tuple[np.ndarray, CommStats]:
    """Per-edge support (global edge ids) over ``num_ranks`` ranks."""
    with obs_trace.span("DistSupport", ranks=num_ranks, strategy=strategy):
        results, stats = run_spmd(num_ranks, _triangle_rank, edges, strategy)
        return results[0][1], stats
