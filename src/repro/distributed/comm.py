"""In-process SPMD communicator with mpi4py-shaped collectives.

``run_spmd(size, fn)`` launches ``size`` rank threads, each receiving a
:class:`SimComm` handle. Point-to-point messages travel through per-pair
queues; collectives are built on shared slot arrays and a reusable
barrier. Every transfer is accounted in :class:`CommStats`
(messages/bytes), which is what the distributed benchmarks report —
on one physical core the interesting measurable quantity is
communication volume, not wall-clock.
"""

from __future__ import annotations

import pickle
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import BackendError, InvalidParameterError
from repro.obs import metrics
from repro.utils.validation import check_positive


def _payload_bytes(obj: Any) -> int:
    """Estimated wire size of a message payload."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_bytes(x) for x in obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - exotic payloads
        return 64


@dataclass
class CommStats:
    """Aggregate communication counters for one SPMD run (all ranks)."""

    messages: int = 0
    bytes: int = 0
    collectives: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += nbytes
        metrics.inc("repro.dist.messages")
        metrics.inc("repro.dist.bytes_sent", nbytes)

    def record_collective(self) -> None:
        with self._lock:
            self.collectives += 1
        metrics.inc("repro.dist.collectives")


class _World:
    """Shared state of one SPMD world."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.queues = {
            (src, dst): queue.Queue() for src in range(size) for dst in range(size)
        }
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.stats = CommStats()


class SimComm:
    """Per-rank communicator handle."""

    def __init__(self, world: _World, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size

    # -------------------------------------------------- point-to-point
    def send(self, dst: int, obj: Any, tag: int = 0) -> None:
        if not 0 <= dst < self.size:
            raise InvalidParameterError(f"bad destination rank {dst}")
        self._world.stats.record(_payload_bytes(obj))
        self._world.queues[(self.rank, dst)].put((tag, obj))

    def recv(self, src: int, tag: int = 0, timeout: float = 30.0) -> Any:
        if not 0 <= src < self.size:
            raise InvalidParameterError(f"bad source rank {src}")
        try:
            got_tag, obj = self._world.queues[(src, self.rank)].get(timeout=timeout)
        except queue.Empty:
            raise BackendError(
                f"rank {self.rank} timed out receiving from {src} (tag {tag})"
            ) from None
        if got_tag != tag:
            raise BackendError(
                f"rank {self.rank}: expected tag {tag} from {src}, got {got_tag}"
            )
        return obj

    # ------------------------------------------------------ collectives
    def barrier(self) -> None:
        self._world.barrier.wait()

    def allgather(self, obj: Any) -> list[Any]:
        """Every rank contributes one object; all receive the full list."""
        world = self._world
        world.slots[self.rank] = obj
        world.stats.record((self.size - 1) * _payload_bytes(obj))
        world.stats.record_collective()
        self.barrier()
        out = list(world.slots)
        self.barrier()
        return out

    def bcast(self, obj: Any, root: int = 0) -> Any:
        world = self._world
        if self.rank == root:
            world.slots[root] = obj
            world.stats.record((self.size - 1) * _payload_bytes(obj))
        world.stats.record_collective()
        self.barrier()
        out = world.slots[root]
        self.barrier()
        return out

    def alltoall(self, bucket_per_rank: list[Any]) -> list[Any]:
        """Personalized exchange: element i goes to rank i; returns what
        every rank sent to this one (indexed by source rank)."""
        if len(bucket_per_rank) != self.size:
            raise InvalidParameterError(
                f"alltoall needs {self.size} buckets, got {len(bucket_per_rank)}"
            )
        world = self._world
        world.slots[self.rank] = bucket_per_rank
        for dst, payload in enumerate(bucket_per_rank):
            if dst != self.rank:
                world.stats.record(_payload_bytes(payload))
        world.stats.record_collective()
        self.barrier()
        out = [world.slots[src][self.rank] for src in range(self.size)]
        self.barrier()
        return out

    def allreduce(self, value, op: str = "sum"):
        """Reduce a scalar / ndarray across ranks; everyone gets the result."""
        parts = self.allgather(value)
        if op == "sum":
            out = parts[0]
            for p in parts[1:]:
                out = out + p
            return out
        if op == "min":
            out = parts[0]
            for p in parts[1:]:
                out = np.minimum(out, p) if isinstance(out, np.ndarray) else min(out, p)
            return out
        if op == "max":
            out = parts[0]
            for p in parts[1:]:
                out = np.maximum(out, p) if isinstance(out, np.ndarray) else max(out, p)
            return out
        if op == "lor":
            return any(bool(p) for p in parts)
        raise InvalidParameterError(f"unknown reduction op {op!r}")

    @property
    def stats(self) -> CommStats:
        return self._world.stats


def run_spmd(size: int, fn: Callable[..., Any], *args: Any) -> tuple[list[Any], CommStats]:
    """Run ``fn(comm, *args)`` on ``size`` rank threads.

    Returns (per-rank results, communication stats). Any rank exception
    aborts the world and re-raises.
    """
    check_positive("size", size)
    world = _World(size)
    results: list[Any] = [None] * size
    errors: list[BaseException] = []

    def runner(rank: int) -> None:
        comm = SimComm(world, rank)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:
            errors.append(exc)
            world.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,)) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        # prefer the root cause over secondary BrokenBarrierError noise
        for exc in errors:
            if not isinstance(exc, threading.BrokenBarrierError):
                raise exc
        raise errors[0]
    return results, world.stats
