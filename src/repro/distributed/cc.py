"""Distributed connected components (Pregel-style label propagation).

Shared-nothing: every rank owns a contiguous vertex block and an
arbitrary slice of the edges. Each round, ranks compute min-label
proposals from their local edges, ship each proposal to the endpoint's
owner (``alltoall``), owners apply the minima, and a changed-flag
``allreduce`` decides termination — the structure of the Pregel
connectivity algorithms the paper cites [50].

The per-round ``allgather`` of owned label blocks stands in for the
halo exchange of a production implementation; the communication
counters still expose the volume/round scaling the benchmark reports.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.comm import SimComm, run_spmd
from repro.distributed.partition import EdgePartition, partition_edges
from repro.graph.edgelist import EdgeList
from repro.obs import trace as obs_trace


def _cc_rank(comm: SimComm, parts: list[EdgePartition]) -> np.ndarray:
    part = parts[comm.rank]
    ownership = part.ownership
    lo, hi = ownership.owned_range(comm.rank)
    labels = np.arange(lo, hi, dtype=np.int64)
    u, v = part.u, part.v
    while True:
        full = np.concatenate(comm.allgather(labels)) if comm.size > 1 else labels
        lu, lv = full[u], full[v]
        left = lu > lv   # u should adopt v's label
        right = lv > lu  # v should adopt u's label
        prop_vertex = np.concatenate([u[left], v[right]])
        prop_label = np.concatenate([lv[left], lu[right]])
        # route proposals to owners
        dest = ownership.owner_of(prop_vertex)
        buckets = []
        for r in range(comm.size):
            sel = dest == r
            buckets.append((prop_vertex[sel], prop_label[sel]))
        incoming = comm.alltoall(buckets)
        changed = False
        for verts, labs in incoming:
            if verts.size == 0:
                continue
            local_idx = verts - lo
            before = labels[local_idx].copy()
            np.minimum.at(labels, local_idx, labs)
            changed = changed or bool(np.any(labels[local_idx] != before))
        if not comm.allreduce(changed, op="lor"):
            break
    return labels


def distributed_components(
    edges: EdgeList, num_ranks: int, strategy: str = "hash"
) -> tuple[np.ndarray, "CommStats"]:
    """Connected-component label per vertex, computed by ``num_ranks``
    SPMD ranks. Returns (labels, communication stats).

    Labels are propagation minima — each vertex ends with the smallest
    *reachable* vertex id, matching the single-node LP/SV outputs.
    """
    from repro.distributed.comm import CommStats  # re-export for type

    with obs_trace.span("DistCC", ranks=num_ranks, strategy=strategy):
        parts = partition_edges(edges, num_ranks, strategy=strategy)
        results, stats = run_spmd(num_ranks, _cc_rank, parts)
        return np.concatenate(results), stats
