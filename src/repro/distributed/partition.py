"""Graph partitioning for the shared-nothing algorithms.

Vertices are block-owned (contiguous ranges, GAP/Pregel style); edges
are partitioned either by owner-of-min-endpoint (locality) or by hash
(balance). Each rank materializes only its edge slice plus the local
CSR of its owned vertices' adjacency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.edgelist import EdgeList
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class VertexOwnership:
    """Contiguous block ownership of vertex ids."""

    num_vertices: int
    num_ranks: int

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Owning rank per vertex id (vectorized)."""
        block = -(-self.num_vertices // self.num_ranks) or 1
        return np.minimum(
            np.asarray(vertices, dtype=np.int64) // block, self.num_ranks - 1
        )

    def owned_range(self, rank: int) -> tuple[int, int]:
        block = -(-self.num_vertices // self.num_ranks) or 1
        lo = min(rank * block, self.num_vertices)
        hi = self.num_vertices if rank == self.num_ranks - 1 else min(lo + block, self.num_vertices)
        return lo, hi


@dataclass(frozen=True)
class EdgePartition:
    """One rank's slice of the global canonical edge list."""

    rank: int
    ownership: VertexOwnership
    u: np.ndarray
    v: np.ndarray
    #: global edge ids of the local slice
    edge_ids: np.ndarray

    @property
    def num_local_edges(self) -> int:
        return self.u.size


def partition_edges(
    edges: EdgeList, num_ranks: int, strategy: str = "owner"
) -> list[EdgePartition]:
    """Split a canonical edge list into per-rank partitions.

    ``owner``: edge lives with the owner of its smaller endpoint
    (locality for per-vertex aggregation). ``hash``: round-robin by a
    mixed hash of the endpoints (load balance for skewed graphs).
    """
    check_positive("num_ranks", num_ranks)
    ownership = VertexOwnership(edges.num_vertices, num_ranks)
    if strategy == "owner":
        assign = ownership.owner_of(edges.u)
    elif strategy == "hash":
        mix = edges.u * np.int64(0x9E3779B1) + edges.v * np.int64(0x85EBCA77)
        assign = np.abs(mix) % num_ranks
    else:
        raise InvalidParameterError(f"unknown strategy {strategy!r}")
    out = []
    for rank in range(num_ranks):
        sel = np.flatnonzero(assign == rank)
        out.append(
            EdgePartition(
                rank=rank,
                ownership=ownership,
                u=edges.u[sel],
                v=edges.v[sel],
                edge_ids=sel,
            )
        )
    return out
