"""Distributed-memory substrate (SPMD message-passing emulation).

The paper situates itself against distributed k-truss work [10, 16, 31]
and Pregel-style connectivity [50], and lists distributed execution as
the natural scale-out path. There is no MPI in this environment, so
this package provides an in-process SPMD harness with mpi4py-shaped
collectives (:class:`SimComm`: send/recv, barrier, bcast, allgather,
alltoallv, allreduce) that *counts every message and byte*, plus
shared-nothing algorithms built on it:

* :func:`distributed_components` — Pregel-style label-propagation CC
  over block-owned vertices with proposal exchange,
* :func:`distributed_triangle_count` — adjacency-shipping triangle
  counting over a 1-D edge partition,
* :func:`distributed_support` — per-edge support from the same
  exchange, the distributed analog of the pipeline's Support kernel.

Communication-volume scaling is benchmarked in
``benchmarks/bench_distributed_scaling.py``.
"""

from repro.distributed.comm import CommStats, SimComm, run_spmd
from repro.distributed.partition import EdgePartition, VertexOwnership, partition_edges
from repro.distributed.cc import distributed_components
from repro.distributed.triangles import distributed_support, distributed_triangle_count
from repro.distributed.truss import distributed_truss_decomposition

__all__ = [
    "CommStats",
    "EdgePartition",
    "SimComm",
    "VertexOwnership",
    "distributed_components",
    "distributed_support",
    "distributed_triangle_count",
    "distributed_truss_decomposition",
    "partition_edges",
    "run_spmd",
]
