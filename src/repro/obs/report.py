"""ASCII renderings of a trace: per-kernel breakdown and flamegraph.

Accepts either a live :class:`~repro.obs.trace.Tracer` or the span
records loaded by :func:`repro.obs.export.read_trace_jsonl`, so the same
renderers serve ``equitruss index --breakdown`` output and
``equitruss info --trace run.jsonl`` on a saved file. Bar scaling
follows :mod:`repro.bench.ascii` conventions.
"""

from __future__ import annotations

from repro.obs.trace import Tracer


def _as_records(trace) -> list[dict]:
    if isinstance(trace, Tracer):
        from repro.obs.export import trace_records

        return [r for r in trace_records(trace) if r["type"] == "span"]
    return [r for r in trace if r.get("type", "span") == "span"]


def _collapsed_name(rec: dict) -> str:
    """Span name with the per-worker index folded away.

    Worker fan-out spans carry a stable ``worker_id`` attribute (set by
    ``map_tasks``); collapsing rewrites ``Worker[3]`` → ``Worker[*]`` so
    aggregations and diffs key on the fan-out, not on how many workers a
    particular machine happened to run.
    """
    name = rec["name"]
    attrs = rec.get("attrs") or {}
    if "worker_id" in attrs and name.endswith("]") and "[" in name:
        return name[: name.rindex("[")] + "[*]"
    return name


def aggregate_spans(trace, include=None, collapse_workers: bool = False) -> dict[str, float]:
    """Seconds per span name in first-seen order.

    A parent span's time includes its children's; pass ``include`` (an
    iterable of names, e.g. the paper's kernel list) to keep only the
    rows that are meaningful side by side. ``collapse_workers=True``
    folds per-worker fan-out spans (``Worker[0]``, ``Worker[1]``, ...)
    into a single ``Worker[*]`` row keyed on their stable ``worker_id``
    attribute, so traces from runs with different worker counts stay
    comparable.
    """
    keep = set(include) if include is not None else None
    out: dict[str, float] = {}
    for rec in _as_records(trace):
        name = _collapsed_name(rec) if collapse_workers else rec["name"]
        if keep is not None and name not in keep and rec["name"] not in keep:
            continue
        out[name] = out.get(name, 0.0) + rec["seconds"]
    return out


def per_worker_kernels(trace) -> dict[str, float]:
    """Seconds per worker-local kernel span, keyed ``w{id}.{kernel}``.

    Walks the records for spans whose *parent* is a worker fan-out span
    (carries ``worker_id``); the children are the kernel spans the
    worker recorded inside its own process and shipped back in the task
    envelope. The result is the per-worker kernel breakdown that the
    bench-smoke snapshot publishes.
    """
    records = _as_records(trace)
    by_id = {r["id"]: r for r in records if "id" in r}
    out: dict[str, float] = {}
    for rec in records:
        parent = by_id.get(rec.get("parent"))
        if parent is None:
            continue
        wid = (parent.get("attrs") or {}).get("worker_id")
        if wid is None:
            continue
        key = f"w{wid}.{rec['name']}"
        out[key] = out.get(key, 0.0) + rec["seconds"]
    return out


def format_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GiB"  # pragma: no cover - unreachable


def peak_memory_by_name(trace, include=None) -> dict[str, float]:
    """Peak ``ws_peak`` span attribute per name (workspace high-water).

    Regions record the execution context's workspace high-water mark at
    close; aggregating the maximum per kernel name gives the memory
    column of ``equitruss info --trace``. Names without the attribute
    are omitted.
    """
    keep = set(include) if include is not None else None
    out: dict[str, float] = {}
    for rec in _as_records(trace):
        if keep is not None and rec["name"] not in keep:
            continue
        attrs = rec.get("attrs") or {}
        if "ws_peak" in attrs:
            out[rec["name"]] = max(out.get(rec["name"], 0.0), float(attrs["ws_peak"]))
    return out


def breakdown_table(trace, include=None, width: int = 40, title=None) -> str:
    """Per-kernel seconds as a bar chart plus percentage column.

    When spans carry ``ws_peak`` attributes (runs under an
    ``ExecutionContext``), each row also shows the workspace high-water
    bytes observed by the end of that kernel.
    """
    from repro.bench.ascii import bar_chart

    agg = aggregate_spans(trace, include=include)
    if not agg:
        return "(no spans)"
    mem = peak_memory_by_name(trace, include=include)
    total = sum(agg.values()) or 1.0
    labels = []
    for name, secs in agg.items():
        label = f"{name} {100.0 * secs / total:5.1f}%"
        if name in mem:
            label += f" ws={format_bytes(mem[name])}"
        labels.append(label)
    chart = bar_chart(labels, list(agg.values()), width=width, title=title, unit="s")
    summary = f"\ntotal {total:.4f}s over {len(agg)} span names"
    if mem:
        summary += f", peak workspace {format_bytes(max(mem.values()))}"
    return chart + summary


def flamegraph(trace, width: int = 40) -> str:
    """Indented span tree with bars proportional to each span's share.

    The classic flamegraph turned sideways: depth is indentation, bar
    length is the span's fraction of the total root time.
    """
    records = _as_records(trace)
    if not records:
        return "(no spans)"
    total = sum(r["seconds"] for r in records if r["parent"] is None) or 1.0
    label_w = max(2 * r["depth"] + len(r["name"]) for r in records)
    lines = []
    for rec in records:
        label = "  " * rec["depth"] + rec["name"]
        frac = rec["seconds"] / total
        bar = "#" * min(max(int(round(width * frac)), 1 if rec["seconds"] > 0 else 0), width)
        attrs = rec.get("attrs") or {}
        suffix = ""
        if "k" in attrs:
            suffix = f" k={attrs['k']}"
        lines.append(
            f"{label.ljust(label_w)} | {rec['seconds']:9.4f}s {100 * frac:5.1f}% "
            f"{bar}{suffix}"
        )
    return "\n".join(lines)
