"""Run provenance manifests.

A manifest is the "where did this number come from" record written
alongside every exported trace: git revision, host, backend and worker
count, dtype policy, a content hash of the input dataset, the run's
peak workspace / shared-memory bytes, and the schema versions of every
sibling artifact. Benchmarks attach it to their ``BENCH_*.json``
snapshots (:mod:`repro.bench.snapshot`), the CLI writes it next to
``--trace-out`` files, and CI uploads it with the bench-smoke
artifacts — so any perf figure can be traced back to the exact code,
data, and machine that produced it.

All collectors degrade gracefully: no git checkout → ``git_sha: null``,
no context → the execution block is ``null``, and so on. Validation
(:func:`validate_manifest`) checks shape, not completeness.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import GraphFormatError
from repro.obs.metrics import METRICS_SCHEMA_VERSION
from repro.obs.trace import TRACE_SCHEMA_VERSION

MANIFEST_SCHEMA = "repro.manifest"
MANIFEST_SCHEMA_VERSION = 1


def git_sha(cwd=None) -> str | None:
    """The checked-out git revision, or ``None`` outside a work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else str(Path(__file__).resolve().parent),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - no git binary
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def dataset_fingerprint(graph, name: str | None = None) -> dict:
    """Content identity of an input graph: sizes + edge-array sha256.

    Accepts a :class:`~repro.graph.csr.CSRGraph` (hashes its canonical
    edge list) or anything with ``u``/``v`` arrays. The hash covers the
    raw bytes of both endpoint arrays, so a re-generated dataset with
    identical edges fingerprints identically regardless of file path.
    """
    edges = getattr(graph, "edges", graph)
    u, v = edges.u, edges.v
    digest = hashlib.sha256()
    digest.update(u.tobytes())
    digest.update(v.tobytes())
    return {
        "name": name,
        "vertices": int(getattr(graph, "num_vertices", edges.num_vertices)),
        "edges": int(getattr(graph, "num_edges", edges.num_edges)),
        "sha256": digest.hexdigest(),
    }


def schema_versions() -> dict:
    """Schema versions of every artifact family a run can emit."""
    from repro.bench.snapshot import SNAPSHOT_SCHEMA_VERSION
    from repro.store.format import STORE_FORMAT_VERSION
    from repro.store.journal import JOURNAL_SCHEMA_VERSION

    return {
        "trace": TRACE_SCHEMA_VERSION,
        "metrics": METRICS_SCHEMA_VERSION,
        "manifest": MANIFEST_SCHEMA_VERSION,
        "snapshot": SNAPSHOT_SCHEMA_VERSION,
        "store": STORE_FORMAT_VERSION,
        "journal": JOURNAL_SCHEMA_VERSION,
    }


def collect_manifest(
    ctx=None, graph=None, dataset: str | None = None, extra: dict | None = None
) -> dict:
    """Assemble a manifest document for one run.

    ``ctx`` (an :class:`~repro.parallel.context.ExecutionContext`)
    contributes the execution block — backend, workers, dtype policy,
    ``ws_peak`` and shared-memory high-water; ``graph`` + ``dataset``
    the input fingerprint; ``extra`` free-form caller facts (experiment
    name, CLI arguments, ...).
    """
    doc: dict = {
        "schema": MANIFEST_SCHEMA,
        "version": MANIFEST_SCHEMA_VERSION,
        "generated_unix": time.time(),
        "git_sha": git_sha(),
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        "execution": ctx.provenance() if ctx is not None else None,
        "dataset": (
            dataset_fingerprint(graph, name=dataset) if graph is not None else None
        ),
        "schema_versions": schema_versions(),
    }
    if extra:
        doc["extra"] = dict(extra)
    return doc


def validate_manifest(doc: dict) -> None:
    """Raise :class:`GraphFormatError` unless ``doc`` is a manifest."""
    if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_SCHEMA:
        raise GraphFormatError(f"not a {MANIFEST_SCHEMA!r} document")
    if doc.get("version") != MANIFEST_SCHEMA_VERSION:
        raise GraphFormatError(
            f"manifest version must be {MANIFEST_SCHEMA_VERSION}, "
            f"got {doc.get('version')!r}"
        )
    host = doc.get("host")
    if not isinstance(host, dict) or not isinstance(host.get("cpu_count"), int):
        raise GraphFormatError("manifest host.cpu_count must be an integer")
    versions = doc.get("schema_versions")
    if not isinstance(versions, dict):
        raise GraphFormatError("manifest schema_versions must be an object")
    for field in ("trace", "metrics", "manifest"):
        if not isinstance(versions.get(field), int):
            raise GraphFormatError(f"manifest schema_versions.{field} must be an int")


def write_manifest(doc: dict, path) -> Path:
    """Validate and write a manifest document; returns the path."""
    validate_manifest(doc)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def read_manifest(path) -> dict:
    """Load and validate a manifest file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"{path}: invalid JSON: {exc}") from exc
    validate_manifest(doc)
    return doc
