"""Unified observability layer: spans, metrics, exporters, reports.

* :mod:`repro.obs.trace` — hierarchical span tracer backing both
  :class:`repro.parallel.instrument.Instrumentation` and
  :class:`repro.utils.timing.KernelTimer`;
* :mod:`repro.obs.metrics` — process-wide counters / gauges / histograms
  under the stable ``repro.*`` namespace;
* :mod:`repro.obs.export` — JSONL trace + JSON metrics files;
* :mod:`repro.obs.report` — ASCII breakdown table and flamegraph;
* :mod:`repro.obs.diff` — per-kernel regression diffing of two traces;
* :mod:`repro.obs.logging` — structured ``key=value`` logging setup.

Only the light ``trace``/``metrics`` symbols are re-exported here — the
exporters and reports import the bench layer and are pulled in by path
(``from repro.obs.export import ...``) to keep the core import-cycle
free (``parallel.instrument`` imports this package at interpreter
startup).
"""

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    inc,
    observe,
    reset_metrics,
    set_gauge,
    set_gauge_max,
    use_registry,
)
from repro.obs.trace import Span, Tracer, current_tracer, span, use_tracer

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "current_tracer",
    "get_registry",
    "inc",
    "observe",
    "reset_metrics",
    "set_gauge",
    "set_gauge_max",
    "span",
    "use_registry",
    "use_tracer",
]
