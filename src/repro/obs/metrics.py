"""Metrics registry: counters, gauges, and histograms.

Metric names are stable, dotted, and namespaced under ``repro.*``
(``repro.triangles.enumerated``, ``repro.truss.peel_rounds``, ...); the
full catalogue lives in the Observability section of
``docs/architecture.md``. Algorithms report through the module-level
helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`) which target
the *active* registry — the process-wide default, unless a test or a
driver installs its own with :func:`use_registry`.

All mutation goes through a per-registry lock so the thread backend and
the SPMD simulator can report concurrently.
"""

from __future__ import annotations

import re
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError

#: Schema version stamped into exported metric files.
METRICS_SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise InvalidParameterError(
            f"metric name must be dotted lower_snake (e.g. 'repro.truss.kmax'), "
            f"got {name!r}"
        )
    return name


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise InvalidParameterError(f"counter {self.name} increment < 0: {n}")
        self.value += n

    def as_value(self):
        return self.value


@dataclass
class Gauge:
    """Last-written (or maximum) instantaneous value."""

    name: str
    value: float = 0

    def set(self, v: float) -> None:
        self.value = v

    def set_max(self, v: float) -> None:
        """Keep the running maximum (peak frontier size, high-water marks)."""
        self.value = max(self.value, v)

    def as_value(self):
        return self.value


@dataclass
class Histogram:
    """Streaming distribution summary (count/sum/min/max/mean).

    Keeps the first ``keep`` raw observations for tests and reports;
    beyond that only the running summary is updated.
    """

    name: str
    keep: int = 1024
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: list = field(default_factory=list)

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        if len(self.samples) < self.keep:
            self.samples.append(v)

    def as_value(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0, "min": None, "max": None, "mean": None}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
        }


class MetricsRegistry:
    """Name → instrument table with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        _check_name(name)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                existing = self._metrics[name] = cls(name=name)
            elif not isinstance(existing, cls):
                raise InvalidParameterError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def as_dict(self) -> dict:
        """Flat JSON-able snapshot: name → value (or histogram summary)."""
        with self._lock:
            return {name: m.as_value() for name, m in self._metrics.items()}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# Active registry + reporting helpers
# ----------------------------------------------------------------------

_DEFAULT = MetricsRegistry()
_ACTIVE: MetricsRegistry = _DEFAULT


def get_registry() -> MetricsRegistry:
    """The registry reporting helpers currently target."""
    return _ACTIVE


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route :func:`inc`/:func:`set_gauge`/:func:`observe` to ``registry``."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = prev


def reset_metrics() -> None:
    """Clear the active registry (start of a CLI run / test)."""
    _ACTIVE.reset()


def inc(name: str, n: float = 1) -> None:
    _ACTIVE.counter(name).inc(n)


def set_gauge(name: str, v: float) -> None:
    _ACTIVE.gauge(name).set(v)


def set_gauge_max(name: str, v: float) -> None:
    _ACTIVE.gauge(name).set_max(v)


def observe(name: str, v: float) -> None:
    _ACTIVE.histogram(name).observe(v)
