"""Metrics registry: counters, gauges, and histograms.

Metric names are stable, dotted, and namespaced under ``repro.*``
(``repro.triangles.enumerated``, ``repro.truss.peel_rounds``, ...); the
full catalogue lives in the Observability section of
``docs/architecture.md``. Algorithms report through the module-level
helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`) which target
the *active* registry — the process-wide default, unless a test or a
driver installs its own with :func:`use_registry`.

All mutation goes through a per-registry lock so the thread backend and
the SPMD simulator can report concurrently.

Histograms come in two flavors: summary-only (count/sum/min/max/mean
plus p50/p95/p99 from the retained sample prefix) and **fixed-boundary**
(``registry.histogram(name, boundaries=...)``), which additionally
maintains Prometheus-style bucket counts so percentiles stay available
after raw samples are dropped and snapshots merge exactly across
processes (see :mod:`repro.obs.worker`).
"""

from __future__ import annotations

import re
import threading
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.obs.histogram import (
    SUMMARY_QUANTILES,
    bucket_index,
    bucket_percentile,
    check_boundaries,
    percentile,
)

#: Schema version stamped into exported metric files. v2 added the
#: p50/p95/p99 summary quantiles and optional bucket export to
#: histogram values.
METRICS_SCHEMA_VERSION = 2

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise InvalidParameterError(
            f"metric name must be dotted lower_snake (e.g. 'repro.truss.kmax'), "
            f"got {name!r}"
        )
    return name


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise InvalidParameterError(f"counter {self.name} increment < 0: {n}")
        self.value += n

    def as_value(self):
        return self.value


@dataclass
class Gauge:
    """Last-written (or maximum) instantaneous value."""

    name: str
    value: float = 0

    def set(self, v: float) -> None:
        self.value = v

    def set_max(self, v: float) -> None:
        """Keep the running maximum (peak frontier size, high-water marks)."""
        self.value = max(self.value, v)

    def as_value(self):
        return self.value


@dataclass
class Histogram:
    """Streaming distribution summary with optional fixed buckets.

    Keeps the first ``keep`` raw observations for tests and reports;
    beyond that only the running summary (and, when ``boundaries`` are
    configured, the bucket counts) is updated. Percentiles are exact
    (NumPy ``linear`` method) while every observation is retained, then
    estimated by bucket interpolation — or, with no buckets, from the
    retained prefix — once observations have been dropped.
    """

    name: str
    keep: int = 1024
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: list = field(default_factory=list)
    boundaries: tuple[float, ...] | None = None
    bucket_counts: list[int] = field(default_factory=list)

    def with_boundaries(self, boundaries: Sequence[float]) -> "Histogram":
        """Configure fixed bucket upper bounds (first call wins).

        Re-configuring with the *same* boundaries is a no-op; different
        boundaries raise. Configuring after observations were dropped
        (``count > len(samples)``) raises too — the bucket counts could
        not be backfilled honestly.
        """
        bounds = check_boundaries(boundaries)
        if self.boundaries is not None:
            if self.boundaries != bounds:
                raise InvalidParameterError(
                    f"histogram {self.name!r} already has boundaries "
                    f"{self.boundaries}, cannot change to {bounds}"
                )
            return self
        if self.count > len(self.samples):
            raise InvalidParameterError(
                f"histogram {self.name!r} dropped raw observations; bucket "
                f"boundaries must be configured before the first observe()"
            )
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        for v in self.samples:
            self.bucket_counts[bucket_index(bounds, v)] += 1
        return self

    def observe(self, v: float) -> None:
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        if len(self.samples) < self.keep:
            self.samples.append(v)
        if self.boundaries is not None:
            self.bucket_counts[bucket_index(self.boundaries, v)] += 1

    def percentile(self, q: float) -> float | None:
        """The ``q``-th percentile, or ``None`` when empty."""
        if self.count == 0:
            return None
        if self.count <= len(self.samples) or self.boundaries is None:
            return percentile(sorted(self.samples), q)
        return bucket_percentile(
            self.boundaries, self.bucket_counts, q, self.min, self.max
        )

    def merge(self, state: dict) -> None:
        """Fold a serialized histogram state (``dump_state`` shape) in.

        Counts, sums, and bucket counts add exactly; min/max combine;
        the other state's retained samples extend this one's up to
        ``keep``. Mismatched boundaries raise.
        """
        other_count = int(state.get("count", 0))
        if other_count == 0:
            return
        other_bounds = state.get("boundaries")
        if other_bounds is not None:
            self.with_boundaries(other_bounds)
        elif self.boundaries is not None:
            raise InvalidParameterError(
                f"histogram {self.name!r} has boundaries but the merged "
                f"state does not"
            )
        self.count += other_count
        self.total += float(state.get("sum", 0.0))
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))
        for v in state.get("samples", ()):
            if len(self.samples) >= self.keep:
                break
            self.samples.append(v)
        if self.boundaries is not None:
            for i, c in enumerate(state.get("bucket_counts", ())):
                self.bucket_counts[i] += int(c)

    def as_value(self) -> dict:
        if self.count == 0:
            out: dict = {"count": 0, "sum": 0, "min": None, "max": None, "mean": None}
            out.update({f"p{q}": None for q in SUMMARY_QUANTILES})
        else:
            out = {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count,
            }
            out.update({f"p{q}": self.percentile(q) for q in SUMMARY_QUANTILES})
        if self.boundaries is not None:
            out["buckets"] = {
                "le": list(self.boundaries),
                "counts": list(self.bucket_counts),
            }
        return out

    def dump_state(self) -> dict:
        """Full picklable/JSON-able state for cross-process merging."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "samples": list(self.samples),
            "boundaries": list(self.boundaries) if self.boundaries else None,
            "bucket_counts": list(self.bucket_counts) if self.boundaries else None,
        }


class MetricsRegistry:
    """Name → instrument table with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        _check_name(name)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                existing = self._metrics[name] = cls(name=name)
            elif not isinstance(existing, cls):
                raise InvalidParameterError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, boundaries: Sequence[float] | None = None
    ) -> Histogram:
        hist = self._get(name, Histogram)
        if boundaries is not None:
            hist.with_boundaries(boundaries)
        return hist

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """Snapshot of the registered instruments (for exporters)."""
        with self._lock:
            return list(self._metrics.values())

    def as_dict(self) -> dict:
        """Flat JSON-able snapshot: name → value (or histogram summary)."""
        with self._lock:
            return {name: m.as_value() for name, m in self._metrics.items()}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Cross-process state transfer (the worker telemetry envelope)
    # ------------------------------------------------------------------
    def dump_state(self) -> dict:
        """Typed, picklable snapshot: the worker side of the envelope."""
        with self._lock:
            items = list(self._metrics.items())
        state: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in items:
            if isinstance(inst, Counter):
                state["counters"][name] = inst.value
            elif isinstance(inst, Gauge):
                state["gauges"][name] = inst.value
            else:
                state["histograms"][name] = inst.dump_state()
        return state

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`dump_state` snapshot into this registry.

        Counters add (so per-worker totals reduce exactly to the serial
        totals), gauges combine by maximum (they report peaks), and
        histograms merge count/sum/bucket-exactly.
        """
        for name, v in (state.get("counters") or {}).items():
            self.counter(name).inc(v)
        for name, v in (state.get("gauges") or {}).items():
            self.gauge(name).set_max(v)
        for name, h in (state.get("histograms") or {}).items():
            self.histogram(name).merge(h)


# ----------------------------------------------------------------------
# Active registry + reporting helpers
# ----------------------------------------------------------------------

_DEFAULT = MetricsRegistry()
_ACTIVE: MetricsRegistry = _DEFAULT


def get_registry() -> MetricsRegistry:
    """The registry reporting helpers currently target."""
    return _ACTIVE


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route :func:`inc`/:func:`set_gauge`/:func:`observe` to ``registry``."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = prev


def reset_metrics() -> None:
    """Clear the active registry (start of a CLI run / test)."""
    _ACTIVE.reset()


def inc(name: str, n: float = 1) -> None:
    _ACTIVE.counter(name).inc(n)


def set_gauge(name: str, v: float) -> None:
    _ACTIVE.gauge(name).set(v)


def set_gauge_max(name: str, v: float) -> None:
    _ACTIVE.gauge(name).set_max(v)


def observe(name: str, v: float, boundaries: Sequence[float] | None = None) -> None:
    _ACTIVE.histogram(name, boundaries=boundaries).observe(v)
