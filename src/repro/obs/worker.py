"""Worker-side telemetry capture and coordinator-side merge.

The process backend forks workers, so the coordinator's ambient tracer
and metrics registry are invisible inside a task — before this module,
every in-worker kernel ran as an opaque ``Worker[i]`` timing. The fix
is an explicit **telemetry envelope** carried home in the task result:

1. :func:`capture_task` (worker side) installs a *fresh* tracer and
   registry as the ambient pair, opens a root span named after the
   kernel (attrs: ``pid``), runs the task, and serializes whatever the
   task recorded — span records, counters, gauges, histograms — into a
   small picklable dict.
2. :func:`merge_envelope` (coordinator side, at reduce time) rebuilds
   the span forest and grafts it under the matching ``Worker[i]`` span,
   then folds the metrics state into the coordinator registry: counters
   add (per-worker partials reduce exactly to the serial totals),
   gauges take the maximum, histograms merge bucket-exactly.

Span ``start`` offsets inside an envelope are relative to the *task's*
epoch (the worker tracer is constructed at task start), not the
coordinator's — renderers only use ``seconds`` and nesting, so grafted
trees display correctly; absolute alignment is intentionally not
promised across processes.

The same capture/merge pair runs in inline-fallback mode (no fork), so
traces and metric totals are identical whether or not the platform can
actually fork.
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.obs.export import spans_from_records, trace_records
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Span, Tracer, use_tracer

#: Version stamped into every envelope (bump on shape changes).
WORKER_ENVELOPE_VERSION = 1


def capture_task(kernel: str, fn: Callable, args: tuple) -> tuple:
    """Run ``fn(*args)`` under a fresh ambient tracer + registry.

    Returns ``(result, seconds, envelope)`` where ``seconds`` is the
    root span's wall-clock and ``envelope`` is the picklable telemetry
    dict (``version``, ``pid``, ``spans``, ``metrics``). The root span
    is named ``kernel`` so every task ships at least one in-worker
    kernel span even when the task body records nothing itself.
    """
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        with tracer.span(kernel, pid=os.getpid()) as root:
            out = fn(*args)
    envelope = {
        "version": WORKER_ENVELOPE_VERSION,
        "pid": os.getpid(),
        "spans": [r for r in trace_records(tracer) if r["type"] == "span"],
        "metrics": registry.dump_state(),
    }
    return out, root.seconds, envelope


def merge_envelope(
    envelope: dict | None,
    parent: Span | None,
    registry: MetricsRegistry | None,
) -> None:
    """Adopt one task's envelope into the coordinator's telemetry.

    ``parent`` is the task's ``Worker[i]`` span (the rebuilt in-worker
    spans become its children and the worker's counter partials are
    attached as its ``counters`` attr); ``registry`` receives the
    envelope's metrics state. Either may be ``None`` to skip that half.
    """
    if not envelope:
        return
    if parent is not None:
        parent.children.extend(spans_from_records(envelope.get("spans") or ()))
        pid = envelope.get("pid")
        if pid is not None:
            parent.attrs.setdefault("pid", pid)
        counters = (envelope.get("metrics") or {}).get("counters") or {}
        if counters:
            parent.attrs["counters"] = dict(counters)
    if registry is not None:
        registry.merge_state(envelope.get("metrics") or {})
