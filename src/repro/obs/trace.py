"""Hierarchical span tracer — the timing substrate of the repo.

A :class:`Tracer` records a tree of named :class:`Span` objects, each
carrying wall-clock ``seconds`` plus free-form ``attrs`` (kernel name,
level ``k``, work items, rounds, intensity, bytes touched, ...). It
subsumes the two older mechanisms:

* :class:`repro.utils.timing.KernelTimer` is now a flat-aggregation
  adapter over a tracer;
* :class:`repro.parallel.instrument.Instrumentation` opens one span per
  recorded region, so every ``ExecutionPolicy`` run yields a full span
  tree for free.

Span start times are seconds relative to the owning tracer's epoch
(``time.perf_counter`` at construction). Traces export to JSONL via
:mod:`repro.obs.export` and render via :mod:`repro.obs.report`.

An *ambient* tracer can be installed with :func:`use_tracer`; code that
is not threaded through an ``ExecutionPolicy`` (e.g. the distributed
drivers) opens spans on it through the module-level :func:`span`
helper, which degrades to a no-op when no tracer is active.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Schema version stamped into exported traces.
TRACE_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One timed, named section of a run.

    ``start`` is relative to the owning tracer's epoch; ``seconds`` is
    filled in when the span closes (0.0 while still open). ``attrs``
    holds JSON-serializable metadata only.
    """

    name: str
    start: float = 0.0
    seconds: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def set(self, **attrs) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    @property
    def self_seconds(self) -> float:
        """Seconds not accounted to any child span."""
        return max(self.seconds - sum(c.seconds for c in self.children), 0.0)

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Depth-first (pre-order) traversal yielding ``(span, depth)``."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


class Tracer:
    """Collects a forest of spans for one run."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------ recording

    def begin(self, name: str, **attrs) -> Span:
        """Open a span; it nests under the currently open span, if any."""
        sp = Span(name=name, start=time.perf_counter() - self.epoch, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        self._stack.append(sp)
        return sp

    def end(self, sp: Span) -> Span:
        """Close ``sp`` (and any still-open spans nested inside it)."""
        while self._stack:
            top = self._stack.pop()
            top.seconds = (time.perf_counter() - self.epoch) - top.start
            if top is sp:
                return sp
        raise RuntimeError(f"Tracer.end() for span {sp.name!r} that is not open")

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Context-managed :meth:`begin`/:meth:`end` pair."""
        sp = self.begin(name, **attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    def add(self, name: str, seconds: float, **attrs) -> Span:
        """Record an already-measured span (no clock involved).

        It nests under the currently open span like :meth:`begin` and
        starts where the measurement was reported.
        """
        sp = Span(
            name=name,
            start=time.perf_counter() - self.epoch,
            seconds=float(seconds),
            attrs=dict(attrs),
        )
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)
        return sp

    def graft(self, other: "Tracer") -> None:
        """Adopt another tracer's root spans (used by ``Instrumentation.extend``).

        Grafted spans keep their original epoch-relative start offsets.
        """
        self.roots.extend(other.roots)

    # ----------------------------------------------------------- inspection

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first traversal of every recorded span with its depth."""
        for root in self.roots:
            yield from root.walk(0)

    def by_name(self, names=None) -> dict[str, float]:
        """Seconds aggregated per span name, in first-seen order.

        Note: a parent's time includes its children's, so filtering with
        ``names`` (an iterable of span names to keep) is how callers
        avoid double counting structural wrapper spans.
        """
        keep = set(names) if names is not None else None
        out: dict[str, float] = {}
        for sp, _ in self.walk():
            if keep is not None and sp.name not in keep:
                continue
            out[sp.name] = out.get(sp.name, 0.0) + sp.seconds
        return out

    @property
    def total_seconds(self) -> float:
        """Sum of root span durations (children are included in parents)."""
        return sum(r.seconds for r in self.roots)

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())


# ----------------------------------------------------------------------
# Ambient tracer
# ----------------------------------------------------------------------

_ACTIVE: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The ambient tracer installed by :func:`use_tracer`, or ``None``."""
    return _ACTIVE


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = prev


@contextmanager
def span(name: str, **attrs) -> Iterator[Span | None]:
    """Open a span on the ambient tracer; no-op when none is active."""
    tracer = _ACTIVE
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as sp:
        yield sp
