"""Fixed-boundary bucket math and percentile estimation for histograms.

Pure helper layer under :class:`repro.obs.metrics.Histogram`:

* **boundaries** — a strictly increasing tuple of bucket upper bounds
  (Prometheus ``le`` semantics: observation ``v`` lands in the first
  bucket with ``v <= boundary``, or the overflow bucket past the last
  one, so ``bucket_counts`` has ``len(boundaries) + 1`` entries).
* **percentiles** — :func:`percentile` reproduces NumPy's default
  ``linear`` interpolation over retained raw samples (the oracle the
  tests compare against); :func:`bucket_percentile` estimates a
  quantile from bucket counts alone by linear interpolation inside the
  covering bucket, used once a histogram has dropped raw samples.

Kept free of NumPy on purpose: this module runs inside fork workers
where the observation path must stay allocation-light.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

from repro.errors import InvalidParameterError

#: Default bucket upper bounds for millisecond latency histograms
#: (``repro.serve.latency_ms``, ``repro.parallel.task_ms``): log-spaced
#: 1-2.5-5 decades from 50 µs to 10 s.
DEFAULT_MS_BOUNDARIES: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: The summary quantiles exported with every histogram snapshot.
SUMMARY_QUANTILES: tuple[int, ...] = (50, 95, 99)


def check_boundaries(boundaries: Sequence[float]) -> tuple[float, ...]:
    """Validate bucket upper bounds: non-empty, strictly increasing."""
    bounds = tuple(float(b) for b in boundaries)
    if not bounds:
        raise InvalidParameterError("histogram boundaries must be non-empty")
    for lo, hi in zip(bounds, bounds[1:]):
        if hi <= lo:
            raise InvalidParameterError(
                f"histogram boundaries must be strictly increasing, got {bounds}"
            )
    return bounds


def bucket_index(boundaries: Sequence[float], v: float) -> int:
    """Index of the bucket observation ``v`` falls into (``v <= le``).

    Returns ``len(boundaries)`` for the overflow bucket.
    """
    return bisect_left(boundaries, v)


def _lerp(a: float, b: float, t: float) -> float:
    # mirrors numpy's _lerp: the symmetric form for t >= 0.5 keeps the
    # result monotone and bit-compatible with np.percentile(..., 'linear')
    diff = b - a
    out = a + diff * t
    if t >= 0.5:
        out = b - diff * (1 - t)
    return out


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """``q``-th percentile of pre-sorted samples, NumPy 'linear' method."""
    n = len(sorted_samples)
    if n == 0:
        raise InvalidParameterError("percentile of an empty sample set")
    if not 0 <= q <= 100:
        raise InvalidParameterError(f"percentile q must be in [0, 100], got {q}")
    if n == 1:
        return float(sorted_samples[0])
    rank = (q / 100.0) * (n - 1)
    lo = int(rank)
    frac = rank - lo
    if frac == 0.0 or lo + 1 >= n:
        return float(sorted_samples[lo])
    return _lerp(float(sorted_samples[lo]), float(sorted_samples[lo + 1]), frac)


def bucket_percentile(
    boundaries: Sequence[float],
    bucket_counts: Sequence[int],
    q: float,
    lo_clamp: float,
    hi_clamp: float,
) -> float:
    """Estimate the ``q``-th percentile from bucket counts alone.

    Linear interpolation inside the covering bucket (the Prometheus
    ``histogram_quantile`` model: observations uniform within a
    bucket). The first bucket's lower edge and the overflow bucket's
    upper edge are unknowable from counts, so they clamp to the
    observed ``lo_clamp``/``hi_clamp`` (min/max).
    """
    count = sum(bucket_counts)
    if count == 0:
        raise InvalidParameterError("percentile of an empty histogram")
    target = (q / 100.0) * count
    cum = 0.0
    for i, c in enumerate(bucket_counts):
        if c == 0:
            continue
        prev = cum
        cum += c
        if cum >= target:
            lo_edge = boundaries[i - 1] if i > 0 else lo_clamp
            hi_edge = boundaries[i] if i < len(boundaries) else hi_clamp
            lo_edge = max(min(lo_edge, hi_clamp), lo_clamp)
            hi_edge = max(min(hi_edge, hi_clamp), lo_clamp)
            frac = (target - prev) / c
            return lo_edge + frac * (hi_edge - lo_edge)
    return float(hi_clamp)
