"""Trace / metrics file formats.

Two artifacts, both line- or document-oriented JSON so they diff and
grep cleanly:

* **Trace JSONL** (``--trace-out``): first line is a meta record
  ``{"type": "meta", "schema": "repro.trace", "version": 1}``; every
  following line is one span::

      {"type": "span", "id": 3, "parent": 1, "depth": 2,
       "name": "SpNode", "start": 0.0123, "seconds": 0.0045,
       "attrs": {"work": 812, "rounds": 3, "intensity": "memory"}}

  Ids are assigned depth-first at export time; ``parent`` is ``null``
  for roots. ``start`` is seconds relative to the tracer epoch.

* **Metrics JSON** (``--metrics-out``): one document
  ``{"schema": "repro.metrics", "version": 1, "metrics": {...}}`` with
  the flat name → value snapshot of a :class:`~repro.obs.metrics.MetricsRegistry`.

``read_*`` validate the schema header and per-record shape, raising
:class:`~repro.errors.GraphFormatError` on malformed input, so a
round-trip is also a validation pass.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphFormatError
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.trace import TRACE_SCHEMA_VERSION, Span, Tracer

TRACE_SCHEMA = "repro.trace"
METRICS_SCHEMA = "repro.metrics"

_SPAN_FIELDS = {"type", "id", "parent", "depth", "name", "start", "seconds", "attrs"}


def trace_records(tracer: Tracer) -> list[dict]:
    """Flatten a tracer's span forest into export records (meta first)."""
    records: list[dict] = [
        {"type": "meta", "schema": TRACE_SCHEMA, "version": TRACE_SCHEMA_VERSION}
    ]
    next_id = 0

    def emit(sp, parent_id, depth) -> None:
        nonlocal next_id
        sid = next_id
        next_id += 1
        records.append(
            {
                "type": "span",
                "id": sid,
                "parent": parent_id,
                "depth": depth,
                "name": sp.name,
                "start": sp.start,
                "seconds": sp.seconds,
                "attrs": dict(sp.attrs),
            }
        )
        for child in sp.children:
            emit(child, sid, depth + 1)

    for root in tracer.roots:
        emit(root, None, 0)
    return records


def spans_from_records(records) -> list[Span]:
    """Rebuild a :class:`~repro.obs.trace.Span` forest from flat records.

    The inverse of :func:`trace_records` (meta records are skipped, ids
    are discarded): re-exporting the rebuilt forest reproduces the
    original records exactly, which is what lets worker-shipped span
    records graft into the coordinator tracer losslessly (see
    :mod:`repro.obs.worker`).
    """
    roots: list[Span] = []
    by_id: dict = {}
    for rec in records:
        if rec.get("type", "span") != "span":
            continue
        sp = Span(
            name=rec["name"],
            start=float(rec["start"]),
            seconds=float(rec["seconds"]),
            attrs=dict(rec.get("attrs") or {}),
        )
        by_id[rec.get("id")] = sp
        parent = by_id.get(rec.get("parent"))
        if rec.get("parent") is None or parent is None:
            roots.append(sp)
        else:
            parent.children.append(sp)
    return roots


def write_trace_jsonl(tracer_or_records, path) -> Path:
    """Write a tracer (or prebuilt records) as JSONL; returns the path."""
    if isinstance(tracer_or_records, Tracer):
        records = trace_records(tracer_or_records)
    else:
        records = list(tracer_or_records)
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return path


def _validate_span(rec: dict, lineno: int) -> dict:
    missing = _SPAN_FIELDS - rec.keys()
    if missing:
        raise GraphFormatError(
            f"trace line {lineno}: span record missing fields {sorted(missing)}"
        )
    if not isinstance(rec["name"], str) or not rec["name"]:
        raise GraphFormatError(f"trace line {lineno}: span name must be a string")
    for key in ("start", "seconds"):
        if not isinstance(rec[key], (int, float)):
            raise GraphFormatError(f"trace line {lineno}: {key} must be numeric")
    if not isinstance(rec["attrs"], dict):
        raise GraphFormatError(f"trace line {lineno}: attrs must be an object")
    return rec


def read_trace_jsonl(path) -> list[dict]:
    """Load and validate a trace file; returns the span records only."""
    path = Path(path)
    spans: list[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    if not lines:
        raise GraphFormatError(f"{path}: empty trace file")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"{path}: invalid JSON on line 1: {exc}") from exc
    if meta.get("type") != "meta" or meta.get("schema") != TRACE_SCHEMA:
        raise GraphFormatError(
            f"{path}: first line must be the {TRACE_SCHEMA!r} meta record"
        )
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise GraphFormatError(
                f"{path}: invalid JSON on line {lineno}: {exc}"
            ) from exc
        if rec.get("type") != "span":
            raise GraphFormatError(
                f"{path} line {lineno}: expected a span record, got "
                f"{rec.get('type')!r}"
            )
        spans.append(_validate_span(rec, lineno))
    return spans


def write_metrics_json(registry_or_dict, path) -> Path:
    """Write a metrics snapshot document; returns the path."""
    if isinstance(registry_or_dict, MetricsRegistry):
        metrics = registry_or_dict.as_dict()
    else:
        metrics = dict(registry_or_dict)
    doc = {
        "schema": METRICS_SCHEMA,
        "version": METRICS_SCHEMA_VERSION,
        "metrics": metrics,
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def read_metrics_json(path) -> dict:
    """Load and validate a metrics file; returns the name → value map."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"{path}: invalid JSON: {exc}") from exc
    if doc.get("schema") != METRICS_SCHEMA:
        raise GraphFormatError(f"{path}: not a {METRICS_SCHEMA!r} document")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise GraphFormatError(f"{path}: 'metrics' must be an object")
    return metrics
