"""Metrics export surfaces: Prometheus text renderer + JSONL emitter.

Two ways out of a :class:`~repro.obs.metrics.MetricsRegistry` beyond the
one-shot ``--metrics-out`` snapshot:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE`` lines, cumulative ``_bucket{le=...}`` series for
  fixed-boundary histograms, ``quantile`` series for summary-only
  ones), for pull-based scraping by the serving frontend.
* :class:`MetricsEmitter` — a rolling JSONL push emitter: one
  timestamped snapshot line appended per interval from a daemon
  thread, plus a final line at :meth:`~MetricsEmitter.stop`.
  :func:`emitter_from_env` wires it to the ``REPRO_METRICS_INTERVAL``
  (seconds) and ``REPRO_METRICS_PATH`` environment knobs so benchmarks
  and the CLI opt in without new plumbing.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from pathlib import Path

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Dotted ``repro.*`` metric name → Prometheus-legal name."""
    return _PROM_INVALID.sub("_", name)


def _fmt(v: float) -> str:
    return repr(float(v)) if isinstance(v, float) and not v.is_integer() else str(int(v))


def _render_histogram(pname: str, hist: Histogram, lines: list[str]) -> None:
    value = hist.as_value()
    if hist.boundaries is not None:
        lines.append(f"# TYPE {pname} histogram")
        cum = 0
        for le, c in zip(hist.boundaries, hist.bucket_counts):
            cum += c
            lines.append(f'{pname}_bucket{{le="{_fmt(le)}"}} {cum}')
        lines.append(f'{pname}_bucket{{le="+Inf"}} {hist.count}')
        # pre-estimated quantiles as companion gauges, so a scrape (or a
        # bare curl of the serving frontend's `metrics` op) reads p50/p99
        # without a PromQL histogram_quantile evaluation
        for q in (50, 95, 99):
            p = value.get(f"p{q}")
            if p is not None:
                lines.append(f"# TYPE {pname}_p{q} gauge")
                lines.append(f"{pname}_p{q} {_fmt(p)}")
    else:
        lines.append(f"# TYPE {pname} summary")
        for q in (50, 95, 99):
            p = value.get(f"p{q}")
            if p is not None:
                lines.append(f'{pname}{{quantile="{q / 100}"}} {_fmt(p)}')
    lines.append(f"{pname}_sum {_fmt(hist.total)}")
    lines.append(f"{pname}_count {hist.count}")


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry's instruments in Prometheus text exposition format.

    Defaults to the active registry. Counter and gauge types are
    declared via ``# TYPE``; fixed-boundary histograms render as
    cumulative ``_bucket`` series, summary-only histograms as
    ``quantile`` series — either way with ``_sum`` and ``_count``.
    """
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    for inst in registry.instruments():
        pname = prometheus_name(inst.name)
        if isinstance(inst, Counter):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_fmt(inst.value)}")
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(inst.value)}")
        else:
            _render_histogram(pname, inst, lines)
    return "\n".join(lines) + "\n" if lines else ""


class MetricsEmitter:
    """Rolling JSONL metrics emitter (the push half of the exporter).

    Appends one snapshot record per line::

        {"schema": "repro.metrics", "version": 2, "unix": ...,
         "metrics": {...}}

    ``start()`` spawns a daemon thread emitting every ``interval``
    seconds; ``stop()`` joins it and writes one final snapshot, so even
    runs shorter than the interval produce at least one line. Usable as
    a context manager. With ``interval=None`` only explicit
    :meth:`emit_once` / :meth:`stop` calls write.
    """

    def __init__(
        self,
        path,
        interval: float | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if interval is not None and interval <= 0:
            raise InvalidParameterError(
                f"emitter interval must be > 0 seconds, got {interval}"
            )
        self.path = Path(path)
        self.interval = interval
        self._registry = registry
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def emit_once(self) -> dict:
        """Append one snapshot line; returns the record written."""
        record = {
            "schema": "repro.metrics",
            "version": METRICS_SCHEMA_VERSION,
            "unix": time.time(),
            "metrics": self.registry.as_dict(),
        }
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.emit_once()

    def start(self) -> "MetricsEmitter":
        if self.interval is not None and self._thread is None:
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-metrics-emitter", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the emit thread and write one final snapshot."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.emit_once()

    def __enter__(self) -> "MetricsEmitter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def read_metrics_jsonl(path) -> list[dict]:
    """Load an emitter file: one snapshot record per non-blank line."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


def emitter_from_env(
    default_path=None, registry: MetricsRegistry | None = None
) -> MetricsEmitter | None:
    """Emitter configured from the environment, or ``None`` when off.

    ``REPRO_METRICS_INTERVAL`` (seconds, required to enable) and
    ``REPRO_METRICS_PATH`` (falling back to ``default_path``; with
    neither the emitter stays off).
    """
    raw = os.environ.get("REPRO_METRICS_INTERVAL")
    if not raw:
        return None
    try:
        interval = float(raw)
    except ValueError as exc:
        raise InvalidParameterError(
            f"REPRO_METRICS_INTERVAL must be a number of seconds, got {raw!r}"
        ) from exc
    path = os.environ.get("REPRO_METRICS_PATH") or default_path
    if path is None:
        return None
    return MetricsEmitter(path, interval=interval, registry=registry)
