"""Structured (key=value) logging setup for the ``repro`` logger tree.

One call wires the whole CLI::

    from repro.obs.logging import setup_logging, kv
    log = setup_logging("info")
    log.info(kv("build_index", variant="afforest", edges=12345))

emits::

    2026-08-06T12:00:00 level=info logger=repro event=build_index variant=afforest edges=12345

Messages are plain ``key=value`` pairs (values with spaces are quoted)
so traces grep and parse with standard tooling — no JSON log dependency.
"""

from __future__ import annotations

import logging
import sys

from repro.errors import InvalidParameterError

LEVELS = ("debug", "info", "warning", "error")

_FORMAT = "%(asctime)s level=%(levelname)s logger=%(name)s %(message)s"
_DATEFMT = "%Y-%m-%dT%H:%M:%S"


def kv(event: str, **fields) -> str:
    """Format an event name plus fields as a ``key=value`` record."""
    parts = [f"event={event}"]
    for key, value in fields.items():
        text = str(value)
        if " " in text or "=" in text or '"' in text:
            text = '"' + text.replace('"', '\\"') + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


class _LowercaseLevelFormatter(logging.Formatter):
    """``level=info`` reads better in key=value lines than ``INFO``."""

    def format(self, record: logging.LogRecord) -> str:
        record.levelname = record.levelname.lower()
        return super().format(record)


def setup_logging(level: str = "info", stream=None) -> logging.Logger:
    """Configure and return the root ``repro`` logger.

    Idempotent: repeated calls reconfigure the level and replace the
    handler rather than stacking duplicates.
    """
    if level not in LEVELS:
        raise InvalidParameterError(f"log level must be one of {LEVELS}, got {level!r}")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(_LowercaseLevelFormatter(_FORMAT, datefmt=_DATEFMT))
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """Child logger under the ``repro`` tree (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")
