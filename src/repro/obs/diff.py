"""Per-kernel regression diffing of two trace files.

``diff_traces`` aggregates each trace by span name and flags names whose
time grew beyond a relative ``threshold`` (and an absolute
``min_seconds`` floor, so microsecond noise on tiny kernels never
trips). The benchmark harness dumps a trace per run (see
``benchmarks/conftest.py``); diffing yesterday's file against today's is
the regression gate for every perf PR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.report import aggregate_spans


@dataclass(frozen=True)
class DiffEntry:
    """One span name compared across the base and new traces."""

    name: str
    base_seconds: float
    new_seconds: float
    regressed: bool

    @property
    def ratio(self) -> float:
        """new / base (``inf`` for names absent from the base trace)."""
        if self.base_seconds <= 0.0:
            return float("inf") if self.new_seconds > 0.0 else 1.0
        return self.new_seconds / self.base_seconds


@dataclass
class TraceDiff:
    """Full comparison result."""

    entries: list[DiffEntry] = field(default_factory=list)
    threshold: float = 0.10
    min_seconds: float = 0.0

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        if not self.entries:
            return "(no spans to compare)"
        name_w = max(len(e.name) for e in self.entries)
        lines = [
            f"{'span'.ljust(name_w)}  {'base':>10}  {'new':>10}  {'ratio':>7}  flag"
        ]
        for e in self.entries:
            ratio = "new" if e.ratio == float("inf") else f"{e.ratio:6.2f}x"
            flag = "REGRESSED" if e.regressed else "ok"
            lines.append(
                f"{e.name.ljust(name_w)}  {e.base_seconds:9.4f}s  "
                f"{e.new_seconds:9.4f}s  {ratio:>7}  {flag}"
            )
        n = len(self.regressions)
        lines.append(
            f"{n} regression(s) beyond +{100 * self.threshold:.0f}% "
            f"(min {self.min_seconds:.4f}s)"
        )
        return "\n".join(lines)


def diff_traces(
    base,
    new,
    threshold: float = 0.10,
    min_seconds: float = 0.001,
    include=None,
    collapse_workers: bool = True,
) -> TraceDiff:
    """Compare two traces (tracers or loaded span records) by span name.

    A name regresses when ``new > base * (1 + threshold)`` **and** the
    absolute growth exceeds ``min_seconds``. Names only present in the
    new trace regress when they alone exceed ``min_seconds``.

    Per-worker fan-out spans are collapsed by default: any span carrying
    the stable ``worker_id`` attribute diffs under its ``Worker[*]``
    family name, so a 4-worker base trace compares cleanly against an
    8-worker new trace instead of flagging ``Worker[4..7]`` as new
    regressions.
    """
    base_agg = aggregate_spans(base, include=include, collapse_workers=collapse_workers)
    new_agg = aggregate_spans(new, include=include, collapse_workers=collapse_workers)
    entries: list[DiffEntry] = []
    for name in {**base_agg, **new_agg}:  # first-seen: base order, then new-only
        b = base_agg.get(name, 0.0)
        n = new_agg.get(name, 0.0)
        regressed = n > b * (1.0 + threshold) and (n - b) > min_seconds
        entries.append(
            DiffEntry(name=name, base_seconds=b, new_seconds=n, regressed=regressed)
        )
    return TraceDiff(entries=entries, threshold=threshold, min_seconds=min_seconds)


def diff_trace_files(
    base_path,
    new_path,
    threshold: float = 0.10,
    min_seconds: float = 0.001,
    include=None,
    collapse_workers: bool = True,
) -> TraceDiff:
    """:func:`diff_traces` over two saved JSONL trace files."""
    from repro.obs.export import read_trace_jsonl

    return diff_traces(
        read_trace_jsonl(base_path),
        read_trace_jsonl(new_path),
        threshold=threshold,
        min_seconds=min_seconds,
        include=include,
        collapse_workers=collapse_workers,
    )
