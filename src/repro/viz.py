"""Graphviz/DOT exports for inspection and documentation figures.

Renders the summary graph (supernodes labeled with trussness and size,
superedges as undirected links — the shape of the paper's Figure 3b)
and individual communities. Pure text generation; no graphviz
dependency is required to produce the files.
"""

from __future__ import annotations

from repro.community.model import Community
from repro.equitruss.index import EquiTrussIndex


def summary_graph_dot(index: EquiTrussIndex, max_supernodes: int | None = None) -> str:
    """DOT rendering of the EquiTruss summary graph.

    ``max_supernodes`` truncates huge indexes to the first N supernodes
    (plus the superedges among them) for viewability.
    """
    limit = index.num_supernodes if max_supernodes is None else min(
        max_supernodes, index.num_supernodes
    )
    lines = ["graph equitruss {", "  node [shape=ellipse];"]
    for sn in range(limit):
        k = int(index.supernode_trussness[sn])
        size = int(index.supernode_indptr[sn + 1] - index.supernode_indptr[sn])
        lines.append(f'  nu{sn} [label="nu{sn}\\nk={k} |E|={size}"];')
    for a, b in index.superedges.tolist():
        if a < limit and b < limit:
            lines.append(f"  nu{a} -- nu{b};")
    lines.append("}")
    return "\n".join(lines)


def community_dot(community: Community, highlight: int | None = None) -> str:
    """DOT rendering of one community's subgraph.

    ``highlight`` marks the query vertex.
    """
    g = community.graph
    lines = [f"graph community_k{community.k} {{", "  node [shape=circle];"]
    for v in community.vertices().tolist():
        attr = ' [style=filled, fillcolor=gold]' if v == highlight else ""
        lines.append(f"  v{v}{attr};")
    u, w = g.edges.endpoints(community.edge_ids)
    for a, b in zip(u.tolist(), w.tolist()):
        lines.append(f"  v{a} -- v{b};")
    lines.append("}")
    return "\n".join(lines)
