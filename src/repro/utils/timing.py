"""Wall-clock timing utilities used by the benchmark harness.

The paper reports per-kernel timing breakdowns (Support, Init, SpNode,
SpEdge, SmGraph, SpNodeRemap — Figs. 2, 4, 8). :class:`KernelTimer`
accumulates named spans so every EquiTruss variant can report the same
breakdown without threading timing code through its internals.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.trace import Tracer


@dataclass
class TimingRecord:
    """A single named timing measurement in seconds."""

    name: str
    seconds: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.seconds:.6f}s"


class Timer:
    """A simple start/stop wall-clock timer.

    Can be used as a context manager::

        with Timer() as t:
            work()
        print(t.elapsed)

    ``start``/``stop`` must alternate: starting a running timer or
    stopping a stopped one raises :class:`RuntimeError` (a double
    ``start`` would silently discard the first measurement's origin).
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer.start() called while already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class KernelTimer:
    """Accumulates wall-clock time per named kernel.

    Spans with the same name accumulate, which matches how the paper's
    per-kernel numbers are produced (a kernel such as ``SpNode`` runs once
    per trussness level and the level times are summed).

    .. deprecated::
        ``KernelTimer`` is now a thin flat-aggregation adapter over
        :class:`repro.obs.trace.Tracer` (exposed as :attr:`tracer`).
        New code should open spans on a ``Tracer`` directly — it records
        the same totals plus hierarchy, attributes, and JSONL export.
        This adapter is kept so existing harness call sites and result
        files keep working unchanged.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        with self.tracer.span(name):
            yield

    def add(self, name: str, seconds: float) -> None:
        self.tracer.add(name, seconds)

    def seconds(self, name: str) -> float:
        return self.tracer.by_name().get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.tracer.by_name().values())

    def breakdown(self) -> list[TimingRecord]:
        """Timing records in first-seen order."""
        return [TimingRecord(n, s) for n, s in self.tracer.by_name().items()]

    def percentages(self) -> dict[str, float]:
        """Per-kernel share of the total, in percent (0 if nothing timed)."""
        agg = self.tracer.by_name()
        total = sum(agg.values())
        if total <= 0.0:
            return {n: 0.0 for n in agg}
        return {n: 100.0 * s / total for n, s in agg.items()}

    def merge(self, other: "KernelTimer") -> None:
        for rec in other.breakdown():
            self.add(rec.name, rec.seconds)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{r.name}={r.seconds:.4f}s" for r in self.breakdown()]
        return "KernelTimer(" + ", ".join(parts) + ")"
