"""Wall-clock timing utilities used by the benchmark harness.

The paper reports per-kernel timing breakdowns (Support, Init, SpNode,
SpEdge, SmGraph, SpNodeRemap — Figs. 2, 4, 8). :class:`KernelTimer`
accumulates named spans so every EquiTruss variant can report the same
breakdown without threading timing code through its internals.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class TimingRecord:
    """A single named timing measurement in seconds."""

    name: str
    seconds: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.seconds:.6f}s"


class Timer:
    """A simple start/stop wall-clock timer.

    Can be used as a context manager::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class KernelTimer:
    """Accumulates wall-clock time per named kernel.

    Spans with the same name accumulate, which matches how the paper's
    per-kernel numbers are produced (a kernel such as ``SpNode`` runs once
    per trussness level and the level times are summed).
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._order: list[str] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        if name not in self._totals:
            self._totals[name] = 0.0
            self._order.append(name)
        self._totals[name] += seconds

    def seconds(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self._totals.values())

    def breakdown(self) -> list[TimingRecord]:
        """Timing records in first-seen order."""
        return [TimingRecord(n, self._totals[n]) for n in self._order]

    def percentages(self) -> dict[str, float]:
        """Per-kernel share of the total, in percent (0 if nothing timed)."""
        total = self.total
        if total <= 0.0:
            return {n: 0.0 for n in self._order}
        return {n: 100.0 * self._totals[n] / total for n in self._order}

    def merge(self, other: "KernelTimer") -> None:
        for rec in other.breakdown():
            self.add(rec.name, rec.seconds)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{r.name}={r.seconds:.4f}s" for r in self.breakdown()]
        return "KernelTimer(" + ", ".join(parts) + ")"
