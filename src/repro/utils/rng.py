"""Deterministic random-number-generator plumbing.

Every stochastic component (graph generators, Afforest sampling) accepts a
``seed`` that may be an integer, a :class:`numpy.random.Generator`, or
``None``; :func:`resolve_rng` normalizes all three so results are
reproducible when the caller passes an integer.
"""

from __future__ import annotations

import numpy as np


def resolve_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
