"""Shared utilities: timers, RNG helpers, validation."""

from repro.utils.timing import KernelTimer, Timer, TimingRecord
from repro.utils.validation import (
    check_array_1d,
    check_in_range,
    check_nonnegative,
    check_positive,
)
from repro.utils.rng import resolve_rng

__all__ = [
    "KernelTimer",
    "Timer",
    "TimingRecord",
    "check_array_1d",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "resolve_rng",
]
