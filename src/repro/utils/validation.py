"""Argument validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


def check_positive(name: str, value: float) -> None:
    """Raise :class:`InvalidParameterError` unless ``value > 0``."""
    if not value > 0:
        raise InvalidParameterError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise :class:`InvalidParameterError` unless ``value >= 0``."""
    if value < 0:
        raise InvalidParameterError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise InvalidParameterError(
            f"{name} must be in [{lo}, {hi}], got {value!r}"
        )


def check_array_1d(name: str, arr: np.ndarray, dtype_kind: str | None = None) -> np.ndarray:
    """Validate that ``arr`` is a 1-D ndarray, optionally of a dtype kind.

    Returns the array unchanged so callers can validate inline.
    """
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise InvalidParameterError(f"{name} must be 1-D, got shape {arr.shape}")
    if dtype_kind is not None and arr.dtype.kind not in dtype_kind:
        raise InvalidParameterError(
            f"{name} must have dtype kind in {dtype_kind!r}, got {arr.dtype}"
        )
    return arr
