"""TCP-Index: the prior truss-community index (Huang et al., SIGMOD'14).

The comparator the EquiTruss paper positions itself against (§5). For
every vertex x, build G_x = the weighted graph on N(x) whose edge
(y, z) exists when {x, y, z} is a triangle, weighted
w(y, z) = min(τ(x,y), τ(x,z), τ(y,z)); keep only its *maximum spanning
forest* (TCP = Triangle Connectivity Preserving). Communities are then
recovered per query by traversing the per-vertex forests level-k
restricted — the "costly truss reconstruction phase" the paper
criticizes, since each community edge can be visited from both
endpoints and forest reachability must be recomputed per query.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.community.model import Community, canonical_order
from repro.cc.union_find import UnionFind
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.triangles.enumerate import enumerate_triangles
from repro.truss.decompose import TrussDecomposition, truss_decomposition


class TCPIndex:
    """Per-vertex maximum-spanning-forest index over triangle trussness."""

    def __init__(
        self, graph: CSRGraph, decomp: TrussDecomposition | None = None
    ) -> None:
        self.graph = graph
        if decomp is None:
            decomp = truss_decomposition(graph)
        self.trussness = decomp.trussness
        #: per-vertex forest adjacency: x -> {y: [(z, w), ...]}
        self._forest: list[dict[int, list[tuple[int, int]]]] = [
            {} for _ in range(graph.num_vertices)
        ]
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        g = self.graph
        tau = self.trussness
        tri = enumerate_triangles(g)
        eu, ev = g.edges.u, g.edges.v
        # per-triangle weight = min trussness of its three edges
        w = np.minimum(
            np.minimum(tau[tri.e_uv], tau[tri.e_uw]), tau[tri.e_vw]
        )
        # collect, per apex vertex x, the neighborhood edge (y, z): each
        # triangle {u, v, w} contributes one entry per member vertex.
        mat = tri.as_matrix()
        per_vertex: dict[int, list[tuple[int, int, int]]] = {}
        for t in range(tri.count):
            verts = set()
            for e in mat[t].tolist():
                verts.add(int(eu[e]))
                verts.add(int(ev[e]))
            vs = sorted(verts)
            wt = int(w[t])
            for apex in vs:
                rest = [x for x in vs if x != apex]
                per_vertex.setdefault(apex, []).append((rest[0], rest[1], wt))
        # maximum spanning forest per vertex: Kruskal on descending weight
        for x, items in per_vertex.items():
            items.sort(key=lambda r: -r[2])
            locals_ = sorted({y for r in items for y in (r[0], r[1])})
            pos = {y: i for i, y in enumerate(locals_)}
            uf = UnionFind(len(locals_))
            adj = self._forest[x]
            for y, z, wt in items:
                if uf.union(pos[y], pos[z]):
                    adj.setdefault(y, []).append((z, wt))
                    adj.setdefault(z, []).append((y, wt))

    # ------------------------------------------------------------------
    def _forest_reachable(self, x: int, y: int, k: int) -> list[int]:
        """Vertices reachable from y inside x's forest via weight ≥ k."""
        adj = self._forest[x]
        if y not in adj:
            return [y]
        seen = {y}
        queue = deque([y])
        while queue:
            cur = queue.popleft()
            for nxt, wt in adj.get(cur, ()):
                if wt >= k and nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return list(seen)

    # ------------------------------------------------------------------
    def query(self, query_vertex: int, k: int) -> list[Community]:
        """All k-truss communities of ``query_vertex``.

        Implements the reconstruction traversal of Huang et al.: pop a
        directed edge (x, y), expand every z reachable from y in TCP_x at
        level k into community edges (x, z), and continue from the
        reverse direction of each new edge.
        """
        if k < 3:
            raise InvalidParameterError(f"k must be >= 3, got {k}")
        g = self.graph
        if not 0 <= query_vertex < g.num_vertices:
            raise InvalidParameterError(f"vertex {query_vertex} out of range")
        tau = self.trussness
        visited_edges: set[int] = set()
        communities: list[Community] = []
        q = query_vertex
        for eid in g.neighbor_edge_ids(q).tolist():
            if tau[eid] < k or eid in visited_edges:
                continue
            comm_edges: set[int] = set()
            u0, v0 = int(g.edges.u[eid]), int(g.edges.v[eid])
            y0 = v0 if u0 == q else u0
            stack = [(q, y0)]
            processed: set[tuple[int, int]] = set()
            while stack:
                x, y = stack.pop()
                if (x, y) in processed:
                    continue
                for z in self._forest_reachable(x, y, k):
                    processed.add((x, z))
                    e = g.edges.edge_id(x, z)
                    if e not in comm_edges:
                        comm_edges.add(e)
                        visited_edges.add(e)
                        stack.append((z, x))
            communities.append(
                Community(
                    k=k,
                    edge_ids=np.array(sorted(comm_edges), dtype=np.int64),
                    graph=g,
                )
            )
        return canonical_order(communities)
