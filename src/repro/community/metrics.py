"""Community quality metrics.

Used by the example applications to report why k-truss communities are
cohesive (the paper's motivation: k-truss avoids the lack of cohesion of
k-core and the intractability of cliques).
"""

from __future__ import annotations

import numpy as np

from repro.community.model import Community
from repro.graph.csr import CSRGraph


def community_density(community: Community) -> float:
    """Internal edge density: |E_c| / (|V_c| choose 2)."""
    nv = community.num_vertices
    if nv < 2:
        return 0.0
    return community.num_edges / (nv * (nv - 1) / 2)


def community_conductance(community: Community) -> float:
    """Cut edges / min(volume inside, volume outside). 0 = isolated."""
    g = community.graph
    verts = community.vertices()
    inside = np.zeros(g.num_vertices, dtype=bool)
    inside[verts] = True
    u, v = g.edges.u, g.edges.v
    cut = int((inside[u] != inside[v]).sum())
    vol_in = int(inside[u].sum() + inside[v].sum())
    vol_out = 2 * g.num_edges - vol_in
    denom = min(vol_in, vol_out)
    if denom == 0:
        return 0.0
    return cut / denom


def community_edge_support(community: Community) -> float:
    """Mean in-community support of member edges (cohesion measure)."""
    from repro.triangles.enumerate import enumerate_triangles

    g = community.graph
    sub = CSRGraph.from_edgelist(g.edges.subset(community.edge_ids))
    tri = enumerate_triangles(sub)
    if community.num_edges == 0:
        return 0.0
    sup = tri.support()
    # support array is indexed by the *subset* edge ids
    return float(sup.mean())


def membership_counts(
    communities: list[Community], num_vertices: int
) -> np.ndarray:
    """How many of the given communities each vertex belongs to —
    quantifies the overlapping membership of Figure 1."""
    counts = np.zeros(num_vertices, dtype=np.int64)
    for c in communities:
        counts[c.vertices()] += 1
    return counts
