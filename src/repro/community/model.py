"""Community result type shared by all query engines."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class Community:
    """One k-truss community: an edge set of the queried graph.

    Engines return communities in a canonical order (descending size,
    then smallest edge id) with sorted ``edge_ids`` so results compare
    structurally.
    """

    k: int
    edge_ids: np.ndarray
    graph: CSRGraph = field(repr=False, compare=False)

    @property
    def num_edges(self) -> int:
        return self.edge_ids.size

    def vertices(self) -> np.ndarray:
        """Sorted distinct member vertices."""
        u, v = self.graph.edges.endpoints(self.edge_ids)
        return np.unique(np.concatenate([u, v]))

    @property
    def num_vertices(self) -> int:
        return self.vertices().size

    def edge_tuples(self) -> frozenset[tuple[int, int]]:
        """Edges as canonical (u, v) tuples — the comparison form."""
        u, v = self.graph.edges.endpoints(self.edge_ids)
        return frozenset(zip(u.tolist(), v.tolist()))

    def contains_vertex(self, q: int) -> bool:
        u, v = self.graph.edges.endpoints(self.edge_ids)
        return bool(np.any(u == q) or np.any(v == q))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Community(k={self.k}, edges={self.num_edges}, vertices={self.num_vertices})"


def canonical_order(communities: list[Community]) -> list[Community]:
    """Deterministic community ordering: larger first, then min edge id."""
    def key(c: Community):
        first = int(c.edge_ids[0]) if c.num_edges else -1
        return (-c.num_edges, first)

    return sorted(communities, key=key)


def as_edge_set_family(communities: list[Community]) -> set[frozenset[tuple[int, int]]]:
    """Order-insensitive comparison form for tests."""
    return {c.edge_tuples() for c in communities}
