"""Index-free local community search — the correctness ground truth.

Computes k-truss communities directly from the graph: restrict to the
maximal k-truss, run connected components over triangle connectivity
(every pair of edges sharing a surviving triangle is connected), and
return the components touching the query vertex. Cost is a full truss
computation per query — exactly the overhead the EquiTruss index
removes — so this implementation doubles as the "no index" baseline in
the query benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.cc.core import minlabel_hook_rounds
from repro.community.model import Community, canonical_order
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.triangles.enumerate import enumerate_triangles
from repro.truss.decompose import TrussDecomposition, truss_decomposition


def online_communities(
    graph: CSRGraph,
    query_vertex: int,
    k: int,
    decomp: TrussDecomposition | None = None,
) -> list[Community]:
    """All k-truss communities of ``query_vertex``, computed from scratch.

    ``decomp`` may be supplied to skip the trussness computation (the
    query still pays triangle re-enumeration on the k-truss subgraph,
    the per-query cost the paper's index avoids).
    """
    if k < 3:
        raise InvalidParameterError(f"k must be >= 3 for k-truss communities, got {k}")
    if not 0 <= query_vertex < graph.num_vertices:
        raise InvalidParameterError(f"vertex {query_vertex} out of range")
    if decomp is None:
        decomp = truss_decomposition(graph)
    keep = decomp.trussness >= k
    keep_ids = np.flatnonzero(keep)
    if keep_ids.size == 0:
        return []
    sub = CSRGraph.from_edgelist(graph.edges.subset(keep_ids))
    tri = enumerate_triangles(sub)

    # triangle connectivity: every pair of a triangle's edges is connected
    comp = np.arange(sub.num_edges, dtype=np.int64)
    a = np.concatenate([tri.e_uv, tri.e_uv, tri.e_uw])
    b = np.concatenate([tri.e_uw, tri.e_vw, tri.e_vw])
    minlabel_hook_rounds(comp, a, b)

    incident = sub.neighbor_edge_ids(query_vertex)
    if incident.size == 0:
        return []
    communities = []
    for root in np.unique(comp[incident]).tolist():
        local_ids = np.flatnonzero(comp == root)
        edge_ids = np.sort(keep_ids[local_ids])
        communities.append(Community(k=k, edge_ids=edge_ids, graph=graph))
    return canonical_order(communities)
