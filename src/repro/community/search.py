"""Index-backed local community search (the EquiTruss query algorithm).

Given the summary graph, retrieving all k-truss communities of a query
vertex q is pure supergraph traversal — no trussness recomputation, no
edge-level BFS (the advantage over TCP-Index the paper highlights):

1. *Anchor*: supernodes with τ ≥ k containing an edge incident to q.
2. *Traverse*: BFS over superedges restricted to supernodes with τ ≥ k.
   Superedges certify triangle connectivity at the lower endpoint's
   trussness, and a κ-truss triangle path survives in every k ≤ κ truss,
   so each reachable set is one k-triangle-connected community.
3. *Materialize*: the community's edges are the union of member edges
   of its supernodes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.community.model import Community, canonical_order
from repro.equitruss.index import EquiTrussIndex
from repro.errors import InvalidParameterError
from repro.parallel.context import ExecutionContext


def search_communities(
    index: EquiTrussIndex,
    query_vertex: int,
    k: int,
    ctx: ExecutionContext | None = None,
) -> list[Community]:
    """All k-truss communities containing ``query_vertex``.

    Returns communities in canonical order; empty list when the vertex
    touches no τ ≥ k edge. ``k`` must be ≥ 3 (Definition 7). With a
    ``ctx`` the traversal is recorded as a ``Query`` region (supernodes
    visited = work) in the context trace.
    """
    if k < 3:
        raise InvalidParameterError(f"k must be >= 3 for k-truss communities, got {k}")
    ctx = ExecutionContext.ensure(ctx)
    anchors = index.supernodes_of_vertex(query_vertex, k_min=k)
    if anchors.size == 0:
        return []
    indptr, nbrs = index.supernode_adjacency()
    sn_k = index.supernode_trussness
    visited = np.zeros(index.num_supernodes, dtype=bool)
    communities: list[Community] = []
    with ctx.region("Query", work=0, parallel=False) as handle:
        for anchor in anchors.tolist():
            if visited[anchor]:
                continue
            group: list[int] = []
            visited[anchor] = True
            queue: deque[int] = deque([anchor])
            while queue:
                sn = queue.popleft()
                group.append(sn)
                for other in nbrs[indptr[sn] : indptr[sn + 1]].tolist():
                    if not visited[other] and sn_k[other] >= k:
                        visited[other] = True
                        queue.append(other)
            handle.work += len(group)
            edge_ids = np.sort(np.concatenate([index.edges_of(sn) for sn in group]))
            communities.append(Community(k=k, edge_ids=edge_ids, graph=index.graph))
    return canonical_order(communities)


def query_candidate_ks(index: EquiTrussIndex, query_vertex: int) -> np.ndarray:
    """Ascending k values for which the vertex has at least one community
    (the distinct trussness values on its incident edges)."""
    eids = index.graph.neighbor_edge_ids(query_vertex)
    ks = np.unique(index.trussness[eids])
    return ks[ks >= 3]
