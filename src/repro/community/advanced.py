"""Advanced query operations over the EquiTruss index.

The summary graph supports richer goal-oriented queries than the basic
"communities of q at k" — these follow the query repertoire of the
EquiTruss line of work (Akbas & Zhao; Huang et al.):

* :func:`max_k_communities` — the most cohesive communities of a vertex
  (largest k with a non-empty answer).
* :func:`top_r_communities` — the r most cohesive communities, scanning
  k downward.
* :func:`communities_for_all_k` — the full community profile of a
  vertex.
* :func:`search_communities_multi` — communities containing *all* of a
  set of query vertices (cocktail-party-style group query [42]).

All of them are pure supergraph traversals — no trussness
recomputation.
"""

from __future__ import annotations

import numpy as np

from repro.community.model import Community
from repro.community.search import query_candidate_ks, search_communities
from repro.equitruss.index import EquiTrussIndex
from repro.errors import InvalidParameterError


def max_k_communities(
    index: EquiTrussIndex, query_vertex: int
) -> tuple[int, list[Community]]:
    """The communities of ``query_vertex`` at its maximum cohesion level.

    Returns ``(k, communities)``; ``(0, [])`` when the vertex touches no
    trussness ≥ 3 edge.
    """
    ks = query_candidate_ks(index, query_vertex)
    if ks.size == 0:
        return 0, []
    k = int(ks[-1])
    return k, search_communities(index, query_vertex, k)


def top_r_communities(
    index: EquiTrussIndex, query_vertex: int, r: int
) -> list[Community]:
    """The ``r`` most cohesive communities of a vertex.

    Scans k from the vertex's maximum level downward and collects
    communities in (k descending, size descending) order. A community at
    a lower k that is a superset of one already collected still counts —
    it is a *different* community (different cohesion guarantee), as in
    the top-r semantics of the truss-community literature.
    """
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    out: list[Community] = []
    for k in query_candidate_ks(index, query_vertex)[::-1].tolist():
        for community in search_communities(index, query_vertex, k):
            out.append(community)
            if len(out) == r:
                return out
    return out


def communities_for_all_k(
    index: EquiTrussIndex, query_vertex: int
) -> dict[int, list[Community]]:
    """Complete community profile: k → communities, ascending k."""
    return {
        int(k): search_communities(index, query_vertex, int(k))
        for k in query_candidate_ks(index, query_vertex).tolist()
    }


def search_communities_multi(
    index: EquiTrussIndex, query_vertices: list[int] | np.ndarray, k: int
) -> list[Community]:
    """Communities containing **every** vertex of ``query_vertices``.

    Anchors on the first vertex and filters by membership of the rest —
    correctness follows from communities being maximal: a community
    containing all the vertices must appear among any member's
    communities.
    """
    verts = list(dict.fromkeys(int(v) for v in np.asarray(query_vertices).ravel()))
    if not verts:
        raise InvalidParameterError("query_vertices must be non-empty")
    candidates = search_communities(index, verts[0], k)
    rest = verts[1:]
    return [c for c in candidates if all(c.contains_vertex(v) for v in rest)]
