"""Local (goal-oriented) community search — what the index is *for*.

Given a query vertex q and cohesion parameter k, a *k-truss community*
(Definition 7) is a maximal set of k-triangle-connected edges of the
maximal k-truss that touches q. A vertex may belong to several
overlapping communities (Figure 1 of the paper).

Three engines:

* :func:`search_communities` — index-backed query over the EquiTruss
  supergraph (supernode anchoring + superedge traversal), the fast path
  the paper's index construction enables.
* :func:`online_communities` — index-free ground truth: direct
  triangle-connectivity CC inside the maximal k-truss.
* :class:`TCPIndex` — the TCP-Index comparator [Huang et al.,
  SIGMOD'14; ref. 22/23 of the paper]: per-vertex maximum spanning
  forests over triangle trussness, with the costly per-query edge
  reconstruction the paper criticizes.
"""

from repro.community.model import Community
from repro.community.search import search_communities
from repro.community.online import online_communities
from repro.community.tcp_index import TCPIndex
from repro.community.advanced import (
    communities_for_all_k,
    max_k_communities,
    search_communities_multi,
    top_r_communities,
)
from repro.community.metrics import (
    community_conductance,
    community_density,
    community_edge_support,
    membership_counts,
)

__all__ = [
    "Community",
    "TCPIndex",
    "communities_for_all_k",
    "community_conductance",
    "community_density",
    "community_edge_support",
    "max_k_communities",
    "membership_counts",
    "online_communities",
    "search_communities",
    "search_communities_multi",
    "top_r_communities",
]
