"""Work/depth instrumentation of parallel regions.

Every algorithm kernel wraps its parallel regions in
:meth:`Instrumentation.region`. A region records:

* measured wall-clock ``seconds`` (single-thread vectorized execution),
* ``work`` — number of parallelizable items processed,
* ``rounds`` — barrier-synchronized sub-phases inside the region
  (an SV hooking iteration is one round),
* ``intensity`` — arithmetic-intensity class used by the machine model
  to pick a memory-bandwidth-bound fraction (compute-heavy kernels scale
  further than bandwidth-bound ones, which is exactly why the paper's
  *Baseline* shows higher raw speedup than the optimized variants §4.3),
* ``parallel`` — ``False`` marks inherently serial sections.

The trace feeds :class:`repro.parallel.simulate.SimulatedMachine`.

Since the observability refactor every region is also recorded as a
span on the instrumentation's :class:`repro.obs.trace.Tracer`
(``Instrumentation.tracer``), preserving nesting — a region opened
inside another region (or inside an explicit ``tracer.span``) becomes a
child span. The flat ``regions`` list and all derived aggregates keep
their exact pre-refactor semantics; the tracer adds the hierarchy and
the JSONL export path on top.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.obs.trace import Tracer

#: Valid arithmetic-intensity classes.
INTENSITIES = ("compute", "mixed", "memory")


@dataclass
class Region:
    """One recorded (possibly parallel) region of an algorithm run."""

    name: str
    seconds: float
    work: int = 1
    rounds: int = 1
    intensity: str = "mixed"
    parallel: bool = True

    def __post_init__(self) -> None:
        if self.intensity not in INTENSITIES:
            raise InvalidParameterError(
                f"intensity must be one of {INTENSITIES}, got {self.intensity!r}"
            )
        if self.rounds < 1:
            raise InvalidParameterError("rounds must be >= 1")


@dataclass
class Instrumentation:
    """Accumulates a trace of :class:`Region` records.

    Backed by a :class:`~repro.obs.trace.Tracer`: every region doubles
    as a span carrying ``work``/``rounds``/``intensity``/``parallel`` as
    attributes, so exporting ``instrumentation.tracer`` yields the full
    hierarchical run trace.
    """

    regions: list[Region] = field(default_factory=list)
    tracer: Tracer = field(default_factory=Tracer)

    @contextmanager
    def region(
        self,
        name: str,
        work: int = 1,
        rounds: int = 1,
        intensity: str = "mixed",
        parallel: bool = True,
    ) -> Iterator["_RegionHandle"]:
        """Time a region; ``work``/``rounds`` may be updated via the handle
        when they are only known after execution."""
        handle = _RegionHandle(work=work, rounds=rounds)
        sp = self.tracer.begin(name, intensity=intensity, parallel=parallel)
        try:
            yield handle
        finally:
            final_work = max(int(handle.work), 1)
            final_rounds = max(int(handle.rounds), 1)
            sp.set(work=final_work, rounds=final_rounds, **handle.attrs)
            self.tracer.end(sp)
            self.regions.append(
                Region(
                    name=name,
                    seconds=sp.seconds,
                    work=final_work,
                    rounds=final_rounds,
                    intensity=intensity,
                    parallel=parallel,
                )
            )

    def add(self, region: Region) -> None:
        self.regions.append(region)
        self.tracer.add(
            region.name,
            region.seconds,
            work=region.work,
            rounds=region.rounds,
            intensity=region.intensity,
            parallel=region.parallel,
        )

    def extend(self, other: "Instrumentation") -> None:
        self.regions.extend(other.regions)
        self.tracer.graft(other.tracer)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.regions)

    @property
    def serial_seconds(self) -> float:
        return sum(r.seconds for r in self.regions if not r.parallel)

    @property
    def total_work(self) -> int:
        return sum(r.work for r in self.regions if r.parallel)

    @property
    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.regions if r.parallel)

    def by_name(self) -> dict[str, float]:
        """Seconds aggregated per region name, in first-seen order."""
        out: dict[str, float] = {}
        for r in self.regions:
            out[r.name] = out.get(r.name, 0.0) + r.seconds
        return out


@dataclass
class _RegionHandle:
    """Mutable work/round counters exposed inside a region span.

    Callers that discover work incrementally open the region with
    ``work=0, rounds=0`` and call :meth:`add_round` once per
    barrier-synchronized round; callers that know the totals up front
    just pass them to :meth:`Instrumentation.region`. Extra span
    attributes set in :attr:`attrs` (e.g. the execution context's
    workspace high-water) are merged into the span when it closes.
    """

    work: int = 1
    rounds: int = 1
    attrs: dict = field(default_factory=dict)

    def add_round(self, work: int) -> None:
        """Record one more barrier-synchronized round of ``work`` items."""
        self.rounds += 1
        self.work += int(work)
