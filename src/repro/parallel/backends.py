"""Execution backends: a uniform ``parallel_for`` over serial and threads.

A *chunk function* receives ``(lo, hi, tid)`` — a contiguous index range
and the id of the worker executing it — matching the shape of an OpenMP
``parallel for`` body. The serial backend runs one chunk; the thread
backend runs one chunk per worker via a thread pool.
"""

from __future__ import annotations

from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

from repro.errors import BackendError
from repro.parallel.partition import block_ranges
from repro.utils.validation import check_positive

ChunkFn = Callable[[int, int, int], None]


class SerialBackend:
    """Executes the whole range as a single chunk on the calling thread."""

    name = "serial"

    def run(self, n: int, chunk_fn: ChunkFn, num_workers: int = 1) -> None:
        chunk_fn(0, n, 0)


class ThreadBackend:
    """Executes block-partitioned chunks on a thread pool.

    Under the CPython GIL this provides concurrency, not parallel
    speedup; it exists so tests can exercise the benign-race behavior of
    the hooking kernels with real thread interleavings.
    """

    name = "thread"

    def run(self, n: int, chunk_fn: ChunkFn, num_workers: int = 2) -> None:
        check_positive("num_workers", num_workers)
        if num_workers == 1 or n == 0:
            chunk_fn(0, n, 0)
            return
        ranges = block_ranges(n, num_workers)
        with ThreadPoolExecutor(max_workers=num_workers) as pool:
            futures = [
                pool.submit(chunk_fn, lo, hi, tid)
                for tid, (lo, hi) in enumerate(ranges)
            ]
            for fut in futures:
                fut.result()  # propagate worker exceptions


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
}


def get_backend(name: str):
    """Instantiate a backend by name (``serial`` or ``thread``)."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from None


def parallel_for(
    n: int,
    chunk_fn: ChunkFn,
    backend: str | SerialBackend | ThreadBackend = "serial",
    num_workers: int = 1,
) -> None:
    """Run ``chunk_fn`` over ``range(n)`` on the chosen backend."""
    be = get_backend(backend) if isinstance(backend, str) else backend
    be.run(n, chunk_fn, num_workers)
