"""Execution backends: a uniform ``parallel_for`` over serial, threads,
and processes.

A *chunk function* receives ``(lo, hi, tid)`` — a contiguous index range
and the id of the worker executing it — matching the shape of an OpenMP
``parallel for`` body. The serial backend runs one chunk; the thread
backend runs one chunk per worker via a persistent thread pool; the
process backend (:mod:`repro.parallel.shm`) runs closure chunks inline
but fans the kernels ported to the privatize-and-reduce protocol out to
a persistent pool of worker processes over shared-memory arrays.

Backends that own OS resources (thread/process pools) expose
``close()``; the owning :class:`~repro.parallel.context.ExecutionContext`
releases them.
"""

from __future__ import annotations

from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from typing import Protocol

from repro.errors import BackendError
from repro.parallel.partition import block_ranges
from repro.utils.validation import check_positive

ChunkFn = Callable[[int, int, int], None]


class Backend(Protocol):
    """Structural type every execution backend satisfies."""

    name: str

    def run(self, n: int, chunk_fn: ChunkFn, num_workers: int = ...) -> None:
        ...


#: Names accepted by :func:`get_backend`.
BACKEND_NAMES = ("serial", "thread", "process")


class SerialBackend:
    """Executes the whole range as a single chunk on the calling thread."""

    name = "serial"

    def run(self, n: int, chunk_fn: ChunkFn, num_workers: int = 1) -> None:
        chunk_fn(0, n, 0)


class ThreadBackend:
    """Executes block-partitioned chunks on a persistent thread pool.

    Under the CPython GIL this provides concurrency, not parallel
    speedup; it exists so tests can exercise the benign-race behavior of
    the hooking kernels with real thread interleavings.

    The pool is created lazily on first use and reused across every
    subsequent ``parallel_for`` invocation (it is only rebuilt when a
    call asks for more workers than it holds); :meth:`close` — called by
    the owning ``ExecutionContext`` — tears it down.
    """

    name = "thread"

    def __init__(self) -> None:
        self._pool: ThreadPoolExecutor | None = None
        self._pool_workers = 0

    def _ensure_pool(self, num_workers: int) -> ThreadPoolExecutor:
        if self._pool is None or self._pool_workers < num_workers:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(
                max_workers=num_workers, thread_name_prefix="repro-worker"
            )
            self._pool_workers = num_workers
        return self._pool

    def run(self, n: int, chunk_fn: ChunkFn, num_workers: int = 2) -> None:
        check_positive("num_workers", num_workers)
        if num_workers == 1 or n == 0:
            chunk_fn(0, n, 0)
            return
        ranges = block_ranges(n, num_workers)
        pool = self._ensure_pool(num_workers)
        futures = [
            pool.submit(chunk_fn, lo, hi, tid)
            for tid, (lo, hi) in enumerate(ranges)
        ]
        for fut in futures:
            fut.result()  # propagate worker exceptions

    def close(self) -> None:
        """Shut the persistent pool down (it re-creates on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_workers = 0

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
}


def get_backend(name: str) -> "Backend":
    """Instantiate a backend by name (``serial``, ``thread``, ``process``)."""
    if name == "process":
        # imported lazily: shm pulls in multiprocessing machinery that
        # serial/thread users never need
        from repro.parallel.shm import ProcessBackend

        return ProcessBackend()
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {sorted(BACKEND_NAMES)}"
        ) from None


def backend_name(backend: "Backend | str | None") -> str:
    """Canonical name of a backend instance (or name) for provenance."""
    if backend is None:
        return "serial"
    if isinstance(backend, str):
        return backend
    return getattr(backend, "name", type(backend).__name__)


def close_backend(backend: "Backend | None") -> None:
    """Release a backend's pools, if it owns any."""
    close = getattr(backend, "close", None)
    if close is not None:
        close()


def parallel_for(
    n: int,
    chunk_fn: ChunkFn,
    backend: "str | Backend" = "serial",
    num_workers: int = 1,
) -> None:
    """Run ``chunk_fn`` over ``range(n)`` on the chosen backend."""
    be = get_backend(backend) if isinstance(backend, str) else backend
    be.run(n, chunk_fn, num_workers)
