"""Shared-memory process backend: persistent workers, zero-copy arrays.

The thread backend demonstrates interleaving under the GIL; this module
provides *actual* multicore execution. Three coordinated pieces:

* :class:`SharedArrayPool` — a keyed arena of named
  ``multiprocessing.shared_memory`` segments holding NumPy arrays. It
  mirrors the :class:`~repro.parallel.context.Workspace` contract
  (``take(kind, shape, dtype)`` with per-kind buffer reuse and a byte
  high-water mark) but the buffers are visible to every worker process
  at zero copy cost — workers attach by segment name, they never
  receive array payloads through a pipe. The peak is published as the
  ``repro.mem.shared_pool_high_water`` gauge.

* :class:`ProcessBackend` — a **persistent** worker-process pool
  (``fork`` start method, spun up once and reused across kernel
  invocations, so the fork cost is amortized over the whole run). Tasks
  are module-level functions plus :class:`SharedHandle` arguments; the
  heavy kernels submit one task per worker following the
  **partition → privatize → reduce** shape of PKT [Kabir & Madduri,
  arXiv:1707.02000]: each worker writes private partial results
  (``bincount`` rows, append buffers) into shared memory and the
  coordinator reduces, so no cross-process atomics are ever needed.

* :func:`export_array` / :func:`import_array` — the per-worker append
  buffer protocol. A worker materializes its variable-sized output
  (e.g. the triangle triples of its slot range) into a fresh shared
  segment and returns only the small handle; the coordinator adopts the
  segment, copies the payload out, and unlinks it.

Where ``fork`` (or POSIX shared memory) is unavailable the backend
degrades gracefully: tasks run inline on the coordinator — identical
results, no parallelism — and a single :class:`RuntimeWarning` is
emitted. Kernels therefore never need platform guards.
"""

from __future__ import annotations

import multiprocessing as mp
import re
import secrets
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from concurrent.futures import ProcessPoolExecutor

    from repro.parallel.backends import ChunkFn
    from repro.parallel.context import ExecutionContext

from repro.analysis.races import (
    AccessLog,
    TrackedArray,
    drain_log,
    tracking_enabled,
    verify_task_accesses,
)
from repro.errors import BackendError
from repro.obs import metrics
from repro.obs.histogram import DEFAULT_MS_BOUNDARIES
from repro.obs.worker import capture_task, merge_envelope
from repro.utils.validation import check_positive

#: Default minimum number of items before a kernel pays the task
#: round-trip cost (~1 ms warm) to fan work out to the worker pool.
PROCESS_MIN_ITEMS = 1 << 15

#: Worker-side cap on cached segment attachments.
_ATTACH_CACHE_MAX = 128


# ----------------------------------------------------------------------
# Handles and attachment
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SharedHandle:
    """Picklable reference to a NumPy array living in a shared segment."""

    name: str
    dtype: str
    shape: tuple

    @property
    def size(self) -> int:
        out = 1
        for s in self.shape:
            out *= int(s)
        return out

    @property
    def nbytes(self) -> int:
        return self.size * np.dtype(self.dtype).itemsize


def _unlink(seg: shared_memory.SharedMemory) -> None:
    """Destroy a segment, tolerating one already unlinked elsewhere.

    Resource-tracker accounting note: the whole fork family shares one
    tracker process whose per-type cache is a *set* of names, so the
    registrations CPython emits on both create and attach collapse to a
    single entry, and the single unregister inside ``unlink`` balances
    them exactly. Never unregister on attach/close — with several
    workers attached to one segment the extra unregisters race and the
    tracker logs ``KeyError`` tracebacks.
    """
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


#: Segment attachments cached per process (workers re-attach by name
#: once, then reuse the mapping across every subsequent task).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def attach(handle: SharedHandle) -> np.ndarray:
    """Zero-copy NumPy view of the segment behind ``handle``.

    Under race tracking (:func:`repro.analysis.races.tracking_enabled`)
    the view is a :class:`~repro.analysis.races.TrackedArray` that logs
    the byte ranges of every read and write for the write-set check in
    :meth:`ProcessBackend.map_tasks`.
    """
    seg = _ATTACHED.get(handle.name)
    if seg is None:
        if len(_ATTACHED) >= _ATTACH_CACHE_MAX:
            for stale in list(_ATTACHED.values()):
                stale.close()
            _ATTACHED.clear()
        seg = shared_memory.SharedMemory(name=handle.name)
        _ATTACHED[handle.name] = seg
    arr = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf)
    if tracking_enabled():
        return TrackedArray.wrap(arr, handle.name)
    return arr


def export_array(arr: np.ndarray) -> SharedHandle:
    """Copy ``arr`` into a fresh shared segment (worker append buffer).

    The creating process closes its mapping immediately; ownership
    passes to whoever calls :func:`import_array` on the handle.
    """
    arr = np.ascontiguousarray(arr)
    seg = shared_memory.SharedMemory(
        create=True, size=max(int(arr.nbytes), 1), name=f"repro_out_{secrets.token_hex(8)}"
    )
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr
    handle = SharedHandle(name=seg.name, dtype=arr.dtype.str, shape=tuple(arr.shape))
    seg.close()
    return handle


def import_array(handle: SharedHandle, unlink: bool = True) -> np.ndarray:
    """Adopt an exported segment: copy the payload out and unlink it."""
    seg = shared_memory.SharedMemory(name=handle.name)
    try:
        out = np.array(
            np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=seg.buf)
        )
    finally:
        if unlink:
            _unlink(seg)
        seg.close()
    return out


# ----------------------------------------------------------------------
# SharedArrayPool
# ----------------------------------------------------------------------

class SharedArrayPool:
    """Keyed arena of coordinator-owned shared-memory arrays.

    The process-backend twin of the :class:`~repro.parallel.context.Workspace`
    arena: one reusable buffer per ``(kind, dtype)`` slot, grown
    geometrically, never shrunk, with byte accounting. Buffers live in
    named POSIX shared memory so worker processes can attach at zero
    copy cost; :meth:`take` hands back both the coordinator-side view
    and the :class:`SharedHandle` workers need.
    """

    def __init__(self) -> None:
        self._segments: dict[tuple[str, np.dtype], shared_memory.SharedMemory] = {}
        self._capacity: dict[tuple[str, np.dtype], int] = {}
        self.high_water: int = 0

    @property
    def current_bytes(self) -> int:
        return sum(seg.size for seg in self._segments.values())

    def take(
        self, kind: str, shape: int | tuple, dtype: "np.typing.DTypeLike"
    ) -> tuple[np.ndarray, SharedHandle]:
        """A shared scratch array of exactly ``shape`` elements.

        Contents are unspecified (previous use leaks through); callers
        must fully overwrite. Two live buffers need distinct kinds.
        Growing a slot replaces its segment (new name) — never hold a
        view across two ``take`` calls of the same kind.
        """
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        size = 1
        for s in shape:
            if s < 0:
                raise BackendError(f"shared array shape must be >= 0, got {shape}")
            size *= s
        dt = np.dtype(dtype)
        key = (kind, dt)
        nbytes = max(size * dt.itemsize, 1)
        seg = self._segments.get(key)
        if seg is None or seg.size < nbytes:
            if seg is not None:
                _unlink(seg)
                seg.close()
            grown = max(nbytes, 2 * self._capacity.get(key, 0))
            # the kind in the name keeps race-detector diagnostics
            # readable; truncated so names fit macOS's 31-char limit
            tag = re.sub(r"[^A-Za-z0-9]", "", kind)[:10] or "pool"
            seg = shared_memory.SharedMemory(
                create=True, size=grown,
                name=f"repro_{tag}_{secrets.token_hex(6)}",
            )
            self._segments[key] = seg
            self._capacity[key] = grown
            self.high_water = max(self.high_water, self.current_bytes)
            metrics.set_gauge_max(
                "repro.mem.shared_pool_high_water", self.high_water
            )
        view = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        handle = SharedHandle(name=seg.name, dtype=dt.str, shape=shape)
        return view, handle

    def share(self, kind: str, arr: np.ndarray) -> tuple[np.ndarray, SharedHandle]:
        """Copy ``arr`` into this pool's ``kind`` slot (one memcpy)."""
        arr = np.ascontiguousarray(arr)
        view, handle = self.take(kind, arr.shape, arr.dtype)
        view[...] = arr
        return view, handle

    def close(self) -> None:
        """Unlink every segment (views become invalid)."""
        for seg in self._segments.values():
            _unlink(seg)
            seg.close()
        self._segments.clear()
        self._capacity.clear()


# ----------------------------------------------------------------------
# Availability probe
# ----------------------------------------------------------------------

_AVAILABLE: bool | None = None


def process_backend_available() -> bool:
    """Whether fork-based workers + POSIX shared memory work here."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            ok = "fork" in mp.get_all_start_methods()
            if ok:
                probe = shared_memory.SharedMemory(create=True, size=1)
                probe.close()
                probe.unlink()
            _AVAILABLE = ok
        except Exception:  # pragma: no cover - platform-specific
            _AVAILABLE = False
    return _AVAILABLE


def _timed_task(
    fn: Callable, args: tuple, kernel: str = "Task"
) -> tuple[object, float, AccessLog | None, dict]:
    """Worker-side wrapper: run ``fn(*args)`` under telemetry capture.

    Returns ``(result, seconds, access_log, envelope)``. The access log
    is this task's shared-segment accesses when race tracking is on
    (see :mod:`repro.analysis.races`) and ``None`` otherwise; it is
    drained *before* the task runs so accesses from earlier coordinator
    work (inline-fallback mode) are never attributed to this task. The
    envelope is the in-worker spans + metrics record of
    :func:`repro.obs.worker.capture_task`, rooted at a span named
    ``kernel``.
    """
    if not tracking_enabled():
        out, seconds, envelope = capture_task(kernel, fn, args)
        return out, seconds, None, envelope
    drain_log()
    out, seconds, envelope = capture_task(kernel, fn, args)
    return out, seconds, drain_log(), envelope


def _task_shared_bytes(args: tuple) -> int:
    """Total bytes of the shared segments a task's arguments reference."""
    return sum(a.nbytes for a in args if isinstance(a, SharedHandle))


# ----------------------------------------------------------------------
# ProcessBackend
# ----------------------------------------------------------------------

class ProcessBackend:
    """Persistent fork-server worker pool over shared-memory arrays.

    Satisfies the ``parallel_for`` backend protocol for compatibility
    (generic chunk closures cannot cross a process boundary, so
    :meth:`run` executes inline on the coordinator); the real multicore
    path is :meth:`map_tasks`, used by the kernels ported to the
    partition → privatize → reduce shape. The pool and the
    :class:`SharedArrayPool` are owned by whichever
    :class:`~repro.parallel.context.ExecutionContext` holds this
    backend and are released by its ``close()``.
    """

    name = "process"

    def __init__(
        self, num_workers: int | None = None, min_items: int = PROCESS_MIN_ITEMS
    ) -> None:
        self.min_items = int(min_items)
        self._requested_workers = num_workers
        self._executor: ProcessPoolExecutor | None = None
        self._executor_workers = 0
        self._warned = False
        self.pool = SharedArrayPool()

    # ------------------------------------------------------------ pool
    def _ensure_executor(self, num_workers: int) -> "ProcessPoolExecutor | None":
        """The persistent executor, (re)built only when it must grow."""
        if not process_backend_available():
            return None
        if self._executor is not None and self._executor_workers >= num_workers:
            return self._executor
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        try:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=num_workers, mp_context=mp.get_context("fork")
            )
            self._executor_workers = num_workers
        except Exception:  # pragma: no cover - platform-specific
            self._executor = None
            self._executor_workers = 0
        return self._executor

    def _warn_fallback(self, reason: str) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"process backend unavailable ({reason}); running tasks inline "
                f"on the coordinator — results are identical but unparallel",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------ execution
    def run(self, n: int, chunk_fn: "ChunkFn", num_workers: int = 1) -> None:
        """Generic ``parallel_for`` contract: coordinator-inline.

        Closure chunk functions mutate coordinator-local arrays and are
        not picklable; only kernels speaking the privatize-and-reduce
        protocol (:meth:`map_tasks`) fan out across processes — exactly
        the SV/Afforest-hooks-stay-on-the-coordinator split.
        """
        check_positive("num_workers", num_workers)
        chunk_fn(0, n, 0)

    def map_tasks(
        self,
        fn: Callable,
        tasks: Sequence[tuple],
        ctx: "ExecutionContext | None" = None,
        label: str = "Worker",
        work: Sequence[int] | None = None,
        kernel: str | None = None,
    ) -> list:
        """Run ``fn(*task)`` per task on the pool; results in task order.

        ``fn`` must be a module-level function (pickled by reference);
        handle arguments resolve via :func:`attach` on the worker side.
        Every task runs under :func:`repro.obs.worker.capture_task`, so
        its in-worker spans and metrics come home in the result
        envelope. Per-task ``Worker[i]`` spans — stable attrs
        ``worker_id``, ``n_tasks``, ``bytes_touched`` (shared segment
        bytes the task's handles reference), plus ``work`` and the
        worker ``pid`` — are recorded under the currently open region of
        ``ctx``, each holding the task's in-worker span tree as
        children; the max/mean load imbalance is attached to that
        region. ``kernel`` names the in-worker root span (defaults to
        the worker function's name). Worker counters are folded into the
        active registry, so per-worker partial counts reduce exactly to
        the serial totals. Worker exceptions propagate with the remote
        traceback chained; the pool survives ordinary task failures.
        """
        if not tasks:
            return []
        kernel = kernel or getattr(fn, "__name__", "task").lstrip("_")
        executor = self._ensure_executor(max(len(tasks), 1))
        if executor is None:
            self._warn_fallback("fork or POSIX shared memory missing")
            timed = [_timed_task(fn, args, kernel) for args in tasks]
        else:
            from concurrent.futures.process import BrokenProcessPool

            try:
                futures = [
                    executor.submit(_timed_task, fn, args, kernel) for args in tasks
                ]
                timed = [f.result() for f in futures]
            except BrokenProcessPool:  # pragma: no cover - hard worker death
                # a worker died mid-task (segfault, os._exit); drop the
                # broken pool so the next map_tasks builds a fresh one
                self._executor.shutdown(wait=False)
                self._executor = None
                self._executor_workers = 0
                raise
            except BaseException:
                for f in futures:
                    f.cancel()
                raise
        results = [r for r, _, _, _ in timed]
        seconds = [s for _, s, _, _ in timed]
        accesses = [a for _, _, a, _ in timed]
        envelopes = [e for _, _, _, e in timed]
        if any(accesses):
            verify_task_accesses(accesses, label=label)
        registry = metrics.get_registry()
        if ctx is not None and seconds:
            mean = sum(seconds) / len(seconds)
            imbalance = (max(seconds) / mean) if mean > 0 else 1.0
            for i, s in enumerate(seconds):
                attrs = {
                    "worker_id": i,
                    "n_tasks": len(tasks),
                    "bytes_touched": _task_shared_bytes(tasks[i]),
                }
                if work is not None:
                    attrs["work"] = int(work[i])
                sp = ctx.tracer.add(f"{label}[{i}]", s, **attrs)
                merge_envelope(envelopes[i], sp, registry)
            annotate = getattr(ctx, "annotate", None)
            if annotate is not None:
                extra = {}
                if work is not None and len(work):
                    # estimated-work imbalance of the *partition* itself
                    # (max/mean of the per-task work estimate) — on a
                    # loaded 1-core CI host task seconds are noisy, so
                    # this is the attr that proves a balanced split.
                    wmean = sum(work) / len(work)
                    extra["work_imbalance"] = round(
                        (max(work) / wmean) if wmean > 0 else 1.0, 4
                    )
                partition = getattr(ctx, "partition", None)
                if partition is not None:
                    extra["partition"] = partition
                annotate(
                    workers=len(tasks),
                    imbalance=round(float(imbalance), 4),
                    **extra,
                )
        else:
            for envelope in envelopes:
                merge_envelope(envelope, None, registry)
        for s in seconds:
            metrics.observe(
                "repro.parallel.task_ms", s * 1000.0, boundaries=DEFAULT_MS_BOUNDARIES
            )
        metrics.inc("repro.parallel.process_tasks", len(tasks))
        return results

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut the worker pool down and unlink every shared segment."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._executor_workers = 0
        self.pool.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def active_process_backend(
    ctx: "ExecutionContext | None", size: int
) -> ProcessBackend | None:
    """The context's :class:`ProcessBackend` when fan-out is worthwhile.

    Returns ``None`` — i.e. keep the serial vectorized path — unless the
    context runs the process backend with more than one worker and the
    problem has at least ``backend.min_items`` items to split.
    """
    if ctx is None:
        return None
    backend = getattr(ctx, "backend", None)
    if not isinstance(backend, ProcessBackend):
        return None
    if getattr(ctx, "num_workers", 1) <= 1:
        return None
    if size < backend.min_items:
        return None
    return backend
