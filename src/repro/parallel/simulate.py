"""Machine model: predicted strong-scaling from instrumented region traces.

This environment has one physical core, so the paper's 1–128-thread
curves (Figs. 6–9) cannot be measured directly. Instead, algorithms run
single-threaded (vectorized) under instrumentation and the model below
converts the measured trace into predicted T(p).

Model
-----
For a parallel region with measured single-thread seconds ``t``, barrier
rounds ``r``, and arithmetic-intensity class ``i``::

    T_region(p) = t * ((1 - beta_i) / p  +  beta_i / min(p, s))
                  + r * barrier * ceil(log2(p))

* ``beta_i`` is the memory-bandwidth-bound fraction of the region; that
  part stops scaling once ``p`` exceeds the bandwidth-saturation point
  ``s`` (on an EPYC-7763 node the streams saturate well before 128
  threads). Compute-bound regions (hash-map probing in *Baseline*) have
  small beta and keep scaling, which is why the paper's least-optimized
  variant shows the *largest* speedup (§4.3) — the model reproduces that
  inversion naturally.
* Barriers cost ``barrier * log2(p)`` each (tree barrier).
* Serial regions contribute their measured seconds unchanged.

All parameters live in :class:`MachineProfile`; the default profile is
shaped after the paper's Perlmutter CPU node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError
from repro.parallel.instrument import INTENSITIES, Instrumentation


@dataclass(frozen=True)
class MachineProfile:
    """Scaling parameters of the modeled shared-memory node."""

    name: str = "perlmutter-cpu"
    max_threads: int = 128
    #: barrier cost in seconds per log2(p) stage
    barrier_seconds: float = 2.0e-6
    #: bandwidth saturation point: threads beyond this do not help the
    #: memory-bound fraction of a region
    bandwidth_saturation: int = 24
    #: memory-bound fraction per intensity class
    bandwidth_fraction: dict[str, float] = field(
        default_factory=lambda: {"compute": 0.25, "mixed": 0.55, "memory": 0.72}
    )

    def __post_init__(self) -> None:
        if self.max_threads < 1:
            raise InvalidParameterError("max_threads must be >= 1")
        if self.bandwidth_saturation < 1:
            raise InvalidParameterError("bandwidth_saturation must be >= 1")
        for key in INTENSITIES:
            if key not in self.bandwidth_fraction:
                raise InvalidParameterError(f"bandwidth_fraction missing {key!r}")
            frac = self.bandwidth_fraction[key]
            if not 0.0 <= frac <= 1.0:
                raise InvalidParameterError("bandwidth fractions must be in [0, 1]")


#: Default thread counts matching the paper's x-axes.
PAPER_THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class ScalingCurve:
    """Predicted strong-scaling results for one instrumented run."""

    threads: list[int]
    seconds: list[float]

    @property
    def t1(self) -> float:
        return self.seconds[self.threads.index(1)] if 1 in self.threads else self.seconds[0]

    def speedups(self) -> list[float]:
        t1 = self.t1
        return [t1 / t for t in self.seconds]

    def efficiencies(self) -> list[float]:
        """Parallel efficiency ε = T_seq / (p · T(p)), in percent."""
        t1 = self.t1
        return [100.0 * t1 / (p * t) for p, t in zip(self.threads, self.seconds)]


class SimulatedMachine:
    """Converts instrumented traces into predicted scaling curves."""

    def __init__(self, profile: MachineProfile | None = None) -> None:
        self.profile = profile or MachineProfile()

    def predicted_time(self, trace: Instrumentation, threads: int) -> float:
        """Predicted wall-clock seconds of the traced run on ``threads``."""
        if threads < 1:
            raise InvalidParameterError("threads must be >= 1")
        prof = self.profile
        total = 0.0
        log_p = math.ceil(math.log2(threads)) if threads > 1 else 0
        for region in trace.regions:
            if not region.parallel or threads == 1:
                total += region.seconds
                continue
            beta = prof.bandwidth_fraction[region.intensity]
            scal = (1.0 - beta) / threads + beta / min(threads, prof.bandwidth_saturation)
            total += region.seconds * scal
            total += region.rounds * prof.barrier_seconds * log_p
        return total

    def scaling_curve(
        self,
        trace: Instrumentation,
        threads: tuple[int, ...] = PAPER_THREAD_COUNTS,
    ) -> ScalingCurve:
        """Predicted T(p) across a thread sweep."""
        counts = [t for t in threads if t <= self.profile.max_threads]
        return ScalingCurve(
            threads=counts,
            seconds=[self.predicted_time(trace, t) for t in counts],
        )

    def kernel_curves(
        self,
        trace: Instrumentation,
        threads: tuple[int, ...] = PAPER_THREAD_COUNTS,
    ) -> dict[str, ScalingCurve]:
        """Per-kernel scaling curves (regions grouped by name)."""
        groups: dict[str, Instrumentation] = {}
        for region in trace.regions:
            groups.setdefault(region.name, Instrumentation()).add(region)
        return {
            name: self.scaling_curve(sub, threads) for name, sub in groups.items()
        }
