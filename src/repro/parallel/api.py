"""Execution policy: how a kernel should run and be accounted.

An :class:`ExecutionPolicy` bundles the backend choice, the worker
count, and the instrumentation sink. Algorithms accept an optional
policy; ``None`` means serial execution with a throwaway trace.

.. deprecated::
    :class:`~repro.parallel.context.ExecutionContext` supersedes this
    class — it carries the same backend/workers/trace plus the dtype
    policy and the scratch workspace. Every kernel ``ctx`` parameter
    still accepts an ``ExecutionPolicy`` (it is adapted via
    :meth:`ExecutionContext.ensure`), so existing call sites keep
    working; new code should construct contexts directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.backends import SerialBackend, ThreadBackend, get_backend
from repro.parallel.instrument import Instrumentation
from repro.utils.validation import check_positive


@dataclass
class ExecutionPolicy:
    """Backend + worker count + instrumentation sink for one run."""

    backend: str | SerialBackend | ThreadBackend = "serial"
    num_workers: int = 1
    trace: Instrumentation = field(default_factory=Instrumentation)

    def __post_init__(self) -> None:
        check_positive("num_workers", self.num_workers)
        if isinstance(self.backend, str):
            self.backend = get_backend(self.backend)

    def run(self, n: int, chunk_fn) -> None:
        """Dispatch ``chunk_fn`` over ``range(n)`` on this policy's backend."""
        self.backend.run(n, chunk_fn, self.num_workers)

    @classmethod
    def default(cls, policy: "ExecutionPolicy | None") -> "ExecutionPolicy":
        """Normalize an optional policy argument."""
        return policy if policy is not None else cls()

    def as_context(self):
        """Adapt to the unified :class:`ExecutionContext` (same backend,
        workers, and trace; default dtype policy and a fresh workspace)."""
        from repro.parallel.context import ExecutionContext

        return ExecutionContext.ensure(self)
