"""Unified execution context: backend, dtypes, workspaces, observability.

Before this module, execution configuration was smeared across three
ad-hoc mechanisms — :class:`~repro.parallel.api.ExecutionPolicy`
(backend + workers + trace), raw ``handle=`` parameters on the kernel
modules, and the ambient tracer. :class:`ExecutionContext` bundles all
of them plus two new knobs the bandwidth-bound kernels need:

* a :class:`DtypePolicy` — pick the narrowest index dtype that fits
  ``|V|``, ``2|E|`` and (for keyed lookups) the product ``u·N + v``
  without overflow. PKT (Kabir & Madduri) and the Eager K-truss study
  (Blanco & Low) both attribute their shared-memory wins to compact
  contiguous arrays; int32 halves the traffic of every comp/hook/
  triangle array on laptop-scale datasets.
* a :class:`Workspace` — a keyed scratch-buffer arena that the
  per-level SpNode/SpEdge loop reuses instead of reallocating per
  level, with a byte high-water mark published as
  ``repro.mem.workspace_high_water``.

Every kernel entry point accepts ``ctx``; :meth:`ExecutionContext.ensure`
normalizes ``None``, a legacy ``ExecutionPolicy``, or a bare region
handle (anything with ``add_round``), so existing call sites keep
working unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.parallel.backends import (
    SerialBackend,
    ThreadBackend,
    backend_name,
    close_backend,
    get_backend,
)
from repro.parallel.instrument import Instrumentation, _RegionHandle
from repro.utils.validation import check_positive

#: Names accepted by :class:`DtypePolicy`.
DTYPE_POLICIES = ("auto", "int32", "int64")

_I32_MAX = np.iinfo(np.int32).max
_I64_MAX = np.iinfo(np.int64).max


def fits_int32(max_value: int) -> bool:
    """Whether ``max_value`` is representable as an int32."""
    return 0 <= max_value <= _I32_MAX


def array_nbytes(*arrays) -> int:
    """Total bytes of the given arrays, skipping ``None`` entries."""
    return sum(int(a.nbytes) for a in arrays if a is not None)


@dataclass(frozen=True)
class DtypePolicy:
    """Adaptive index-dtype selection (``auto`` | ``int32`` | ``int64``).

    ``auto`` picks int32 whenever every value an array must hold fits;
    callers state the largest value they will store and get back the
    narrowest safe dtype. Key dtypes (for ``u·N + v`` scalar keys) are
    resolved separately because the *product* overflows long before the
    ids themselves do.
    """

    name: str = "auto"

    def __post_init__(self) -> None:
        if self.name not in DTYPE_POLICIES:
            raise InvalidParameterError(
                f"dtype policy must be one of {DTYPE_POLICIES}, got {self.name!r}"
            )

    @classmethod
    def of(cls, policy: "DtypePolicy | str | None") -> "DtypePolicy":
        if policy is None:
            return cls("auto")
        if isinstance(policy, DtypePolicy):
            return policy
        return cls(str(policy))

    def resolve(self, max_value: int) -> np.dtype:
        """Narrowest allowed integer dtype holding ``0..max_value``."""
        if self.name == "int64":
            return np.dtype(np.int64)
        if self.name == "int32":
            if not fits_int32(max_value):
                raise InvalidParameterError(
                    f"dtype policy int32 cannot hold max value {max_value}"
                )
            return np.dtype(np.int32)
        return np.dtype(np.int32) if fits_int32(max_value) else np.dtype(np.int64)

    def index_dtype(self, num_vertices: int, num_edges: int) -> np.dtype:
        """Dtype for vertex/edge-id arrays: fits ``|V|``, ``|E|`` and the
        CSR slot count ``2|E|`` (indptr values)."""
        return self.resolve(max(int(num_vertices) + 1, 2 * int(num_edges)))

    def key_dtype(self, num_vertices: int) -> np.dtype:
        """Dtype for ``u·N + v`` scalar keys — guards the *product*.

        Even when ids fit int32, the key wraps once ``N² > 2³¹``; this is
        the latent overflow :meth:`CSRGraph.locate_slots` guards against
        by falling back to int64 keys.
        """
        n = max(int(num_vertices), 1)
        if n > int(np.sqrt(_I64_MAX)):  # pragma: no cover - 3e9+ vertices
            raise InvalidParameterError(
                f"keyed lookup over {n} vertices would overflow int64 keys"
            )
        max_key = n * n - 1
        if self.name == "int64" or not fits_int32(max_key):
            return np.dtype(np.int64)
        return np.dtype(np.int32)


class Workspace:
    """Reusable scratch-buffer arena with byte accounting.

    ``take(kind, size, dtype)`` returns a 1-D array view of at least
    ``size`` elements, reusing (and growing) one buffer per
    ``(kind, dtype)`` slot. The per-level SpNode/SpEdge loop requests
    the same kinds every level, so steady-state allocation is zero.

    ``high_water`` tracks the peak total bytes ever held — the number
    published as the ``repro.mem.workspace_high_water`` gauge.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, np.dtype], np.ndarray] = {}
        self.high_water: int = 0

    @property
    def current_bytes(self) -> int:
        return sum(int(b.nbytes) for b in self._buffers.values())

    def take(self, kind: str, size: int, dtype) -> np.ndarray:
        """A scratch array of exactly ``size`` elements of ``dtype``.

        Contents are unspecified (previous use leaks through); callers
        must fully overwrite. Two live buffers need distinct kinds.
        """
        if size < 0:
            raise InvalidParameterError(f"workspace size must be >= 0, got {size}")
        dt = np.dtype(dtype)
        key = (kind, dt)
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            self._buffers[key] = buf = np.empty(size, dtype=dt)
            self.high_water = max(self.high_water, self.current_bytes)
        return buf[:size]

    def gather(self, kind: str, values: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """``values[indices]`` materialized into this workspace."""
        out = self.take(kind, indices.size, values.dtype)
        np.take(values, indices, out=out)
        return out

    def reset(self) -> None:
        """Drop all buffers (high-water mark is preserved)."""
        self._buffers.clear()


@dataclass
class ExecutionContext:
    """Backend + workers + tracing + dtype policy + workspace for one run.

    The single object threaded through every layer of the pipeline. Use
    :meth:`ensure` to normalize optional arguments::

        ctx = ExecutionContext.ensure(ctx)   # None / policy / handle ok

    Kernels report barrier-synchronized rounds with :meth:`add_round`,
    which targets the innermost open :meth:`region`; with no region open
    it is a no-op, so kernels never need ``handle=None`` plumbing.

    The context *owns* its backend's OS resources: the thread backend's
    persistent pool and the process backend's worker processes + shared
    segments are released by :meth:`close` (or by using the context as a
    context manager). Contexts whose backends never spin a pool up need
    no explicit close.
    """

    backend: str | SerialBackend | ThreadBackend = "serial"
    num_workers: int = 1
    trace: Instrumentation = field(default_factory=Instrumentation)
    dtype: DtypePolicy | str = "auto"
    workspace: Workspace = field(default_factory=Workspace)
    #: contiguous-range partitioning strategy for the fan-out kernels:
    #: ``balanced`` cuts ranges by each kernel's per-item work estimate
    #: (wedge counts for triangle enumeration), ``blocked`` by item
    #: count. Both produce bit-identical results — only task boundaries
    #: (and therefore worker balance) differ.
    partition: str = "balanced"
    _handles: list = field(default_factory=list, repr=False)
    _closers: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        from repro.parallel.partition import PARTITION_STRATEGIES

        check_positive("num_workers", self.num_workers)
        if isinstance(self.backend, str):
            self.backend = get_backend(self.backend)
        self.dtype = DtypePolicy.of(self.dtype)
        if self.partition not in PARTITION_STRATEGIES:
            raise InvalidParameterError(
                f"partition strategy must be one of {PARTITION_STRATEGIES}, "
                f"got {self.partition!r}"
            )

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    @classmethod
    def ensure(cls, obj=None) -> "ExecutionContext":
        """Normalize ``None`` / ``ExecutionPolicy`` / region handle / ctx."""
        if obj is None:
            return cls()
        if isinstance(obj, ExecutionContext):
            return obj
        # Legacy ExecutionPolicy (duck-typed to avoid a circular import).
        if hasattr(obj, "backend") and hasattr(obj, "trace"):
            return cls(
                backend=obj.backend, num_workers=obj.num_workers, trace=obj.trace
            )
        # Bare region handle (the pre-context ``handle=`` convention).
        if hasattr(obj, "add_round"):
            ctx = cls()
            ctx._handles.append(obj)
            return ctx
        raise InvalidParameterError(
            f"cannot build an ExecutionContext from {type(obj).__name__}"
        )

    def with_dtype(self, dtype: DtypePolicy | str) -> "ExecutionContext":
        """Copy of this context under a different dtype policy."""
        return replace(self, dtype=DtypePolicy.of(dtype), _handles=[], _closers=[])

    # ------------------------------------------------------------------
    # Dtype decisions
    # ------------------------------------------------------------------
    def index_dtype(self, num_vertices: int, num_edges: int) -> np.dtype:
        return self.dtype.index_dtype(num_vertices, num_edges)

    def edge_dtype(self, num_edges: int) -> np.dtype:
        """Dtype for arrays holding edge ids (comp, hook pairs, triples)."""
        return self.dtype.resolve(max(int(num_edges), 1))

    def key_dtype(self, num_vertices: int) -> np.dtype:
        return self.dtype.key_dtype(num_vertices)

    # ------------------------------------------------------------------
    # Execution + accounting
    # ------------------------------------------------------------------
    def run(self, n: int, chunk_fn) -> None:
        """Dispatch ``chunk_fn`` over ``range(n)`` on this backend."""
        self.backend.run(n, chunk_fn, self.num_workers)

    @contextmanager
    def region(self, name: str, **kwargs) -> Iterator[_RegionHandle]:
        """Open an instrumented region; nested kernels reach its handle
        through :meth:`add_round`. The workspace high-water at exit is
        attached to the span as ``ws_peak``."""
        with self.trace.region(name, **kwargs) as handle:  # repro: allow(REP004) — forwarding wrapper
            self._handles.append(handle)
            try:
                yield handle
            finally:
                self._handles.pop()
                handle.attrs["ws_peak"] = self.workspace.high_water

    def add_round(self, work: int) -> None:
        """Record one barrier-synchronized round on the innermost region."""
        if self._handles:
            self._handles[-1].add_round(work)

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open region (no-op outside)."""
        if self._handles:
            handle = self._handles[-1]
            if hasattr(handle, "attrs"):
                handle.attrs.update(attrs)

    @property
    def tracer(self):
        return self.trace.tracer

    @property
    def shared_pool(self):
        """The backend's :class:`~repro.parallel.shm.SharedArrayPool`,
        or ``None`` for backends without shared memory."""
        return getattr(self.backend, "pool", None)

    def provenance(self) -> dict:
        """Execution facts for a run manifest (JSON-serializable).

        Captures the backend name, worker count, dtype policy, and the
        run's peak workspace / shared-memory bytes — the execution block
        of :func:`repro.obs.manifest.collect_manifest`.
        """
        pool = self.shared_pool
        return {
            "backend": backend_name(self.backend),
            "num_workers": self.num_workers,
            "dtype_policy": self.dtype.name,
            "partition": self.partition,
            "ws_peak": int(self.workspace.high_water),
            "shm_high_water": int(pool.high_water) if pool is not None else 0,
        }

    def partition_ranges(self, n: int, weights=None) -> list[tuple[int, int]]:
        """Contiguous worker ranges over ``range(n)`` under this
        context's partition strategy (empty ranges dropped)."""
        from repro.parallel.partition import partition_ranges

        return [
            (lo, hi)
            for lo, hi in partition_ranges(
                n, self.num_workers, weights=weights, strategy=self.partition
            )
            if hi > lo
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register_closer(self, closer) -> None:
        """Run ``closer()`` during :meth:`close`, *before* the backend.

        Resources layered on top of the context — most importantly an
        attached store's read-only memory maps
        (:class:`~repro.store.reader.AttachedStore`) — must be released
        before the backend unlinks its shared segments: platforms with
        strict unlink semantics (and same-process re-attach) otherwise
        see dangling handles. Closers run in reverse registration order
        and exactly once each.
        """
        self._closers.append(closer)

    def close(self) -> None:
        """Release the backend's pools (worker processes, threads, shm).

        Registered closers (mmap releases, attached stores) run first,
        newest-first, so teardown unwinds in reverse acquisition order.
        """
        while self._closers:
            self._closers.pop()()
        close_backend(self.backend)

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
