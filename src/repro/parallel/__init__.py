"""Parallel runtime substrate.

The paper's implementation is OpenMP/C++ on a 128-core Perlmutter node.
CPython (GIL, and a single core in this environment) cannot express that
directly, so this package provides three coordinated pieces:

* **Backends** (:mod:`repro.parallel.backends`) — a uniform
  ``parallel_for`` over serial, real-thread, and worker-process
  execution. The thread backend exists to demonstrate that the
  algorithms' benign races are in fact benign (tests run the hooking
  kernels concurrently); it does not speed anything up under the GIL.
  The **process backend** (:mod:`repro.parallel.shm`) escapes the GIL:
  a persistent pool of forked workers operating on zero-copy
  ``multiprocessing.shared_memory`` arrays, fed by kernels ported to
  the partition → privatize → reduce shape of PKT.
* **Instrumentation** (:mod:`repro.parallel.instrument`) — every
  algorithm kernel wraps its parallel regions in
  ``Instrumentation.region(...)`` spans recording measured seconds, the
  amount of parallelizable work, the number of barrier-synchronized
  rounds, and the region's arithmetic intensity class.
* **SimulatedMachine** (:mod:`repro.parallel.simulate`) — converts the
  recorded region trace into predicted T(p) for a Perlmutter-like
  :class:`MachineProfile`, producing the strong-scaling and efficiency
  curves of the paper's Figures 6–9.
"""

from repro.parallel.api import ExecutionPolicy
from repro.parallel.backends import SerialBackend, ThreadBackend, get_backend, parallel_for
from repro.parallel.context import DtypePolicy, ExecutionContext, Workspace
from repro.parallel.instrument import Instrumentation, Region
from repro.parallel.partition import block_ranges, cyclic_indices, guided_ranges
from repro.parallel.shm import (
    ProcessBackend,
    SharedArrayPool,
    SharedHandle,
    process_backend_available,
)
from repro.parallel.simulate import MachineProfile, ScalingCurve, SimulatedMachine
from repro.parallel.atomics import AtomicArray

__all__ = [
    "AtomicArray",
    "DtypePolicy",
    "ExecutionContext",
    "ExecutionPolicy",
    "ProcessBackend",
    "SharedArrayPool",
    "SharedHandle",
    "Workspace",
    "Instrumentation",
    "MachineProfile",
    "Region",
    "ScalingCurve",
    "SerialBackend",
    "SimulatedMachine",
    "ThreadBackend",
    "block_ranges",
    "cyclic_indices",
    "get_backend",
    "guided_ranges",
    "parallel_for",
    "process_backend_available",
]
