"""Work partitioners mirroring OpenMP's static/cyclic/guided schedules."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive


def block_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-equal blocks.

    The first ``n % parts`` blocks get one extra item (OpenMP
    ``schedule(static)``). Empty blocks are included so thread ids map
    one-to-one onto blocks.
    """
    check_nonnegative("n", n)
    check_positive("parts", parts)
    base, extra = divmod(n, parts)
    out = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def cyclic_indices(n: int, parts: int, part: int) -> np.ndarray:
    """Indices owned by ``part`` under round-robin (``schedule(static,1)``)."""
    check_nonnegative("n", n)
    check_positive("parts", parts)
    if not 0 <= part < parts:
        raise IndexError(f"part {part} out of range for {parts} parts")
    return np.arange(part, n, parts, dtype=np.int64)


def guided_ranges(n: int, parts: int, min_chunk: int = 1) -> list[tuple[int, int]]:
    """Guided schedule: chunk size = remaining / parts, halving over time.

    Returns the full ordered chunk list (assignment to threads is
    dynamic at run time; callers treat this as a work queue).
    """
    check_nonnegative("n", n)
    check_positive("parts", parts)
    check_positive("min_chunk", min_chunk)
    chunks = []
    lo = 0
    while lo < n:
        size = max((n - lo + parts - 1) // parts, min_chunk)
        hi = min(lo + size, n)
        chunks.append((lo, hi))
        lo = hi
    return chunks
