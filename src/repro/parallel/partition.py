"""Work partitioners mirroring OpenMP's static/cyclic/guided schedules.

Besides the classic item-count splitters, :func:`weighted_ranges`
implements the *triangle-balanced* split of the eager k-truss
load-balancing study (Blanco & Low, arXiv:2009.07929): contiguous
ranges are cut so each holds a near-equal share of a per-item **work
estimate** (for triangle kernels: the wedge count, a prefix sum of
degree products) instead of a near-equal share of the items. On skewed
degree distributions the last block of an item-count split otherwise
owns most of the wedges and every other worker idles at the barrier.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.validation import check_nonnegative, check_positive

#: Contiguous-range partitioning strategies understood by the kernels:
#: ``blocked`` splits by item count (OpenMP static), ``balanced`` splits
#: by a per-item work estimate when the kernel can supply one.
PARTITION_STRATEGIES = ("blocked", "balanced")


def block_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-equal blocks.

    The first ``n % parts`` blocks get one extra item (OpenMP
    ``schedule(static)``). Empty blocks are included so thread ids map
    one-to-one onto blocks.
    """
    check_nonnegative("n", n)
    check_positive("parts", parts)
    base, extra = divmod(n, parts)
    out = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def weighted_ranges(weights, parts: int) -> list[tuple[int, int]]:
    """Split ``range(len(weights))`` into ``parts`` contiguous ranges of
    near-equal total *weight*.

    Cut points are placed where the weight prefix sum crosses each
    ``total · i / parts`` target, so a range's weight overshoots its
    ideal share by at most one item's weight. Weights must be
    non-negative; an all-zero estimate degrades to :func:`block_ranges`.
    Like :func:`block_ranges`, empty ranges are kept so range index maps
    one-to-one onto worker id, and the concatenation of the ranges in
    order is exactly ``range(n)`` — callers' "concatenate per-range
    results in order" reassembly stays bit-identical under any split.
    """
    check_positive("parts", parts)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise InvalidParameterError("weights must be a 1-D array")
    n = int(w.size)
    if n == 0:
        return [(0, 0) for _ in range(parts)]
    if w.min() < 0:
        raise InvalidParameterError("weights must be non-negative")
    prefix = np.cumsum(w)
    total = float(prefix[-1])
    if total <= 0:
        return block_ranges(n, parts)
    targets = total * np.arange(1, parts, dtype=np.float64) / parts
    cuts = np.searchsorted(prefix, targets, side="left")
    bounds = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    return [(int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


def partition_ranges(
    n: int, parts: int, weights=None, strategy: str = "balanced"
) -> list[tuple[int, int]]:
    """Contiguous ranges over ``range(n)`` under the chosen strategy.

    ``balanced`` uses :func:`weighted_ranges` when the caller supplies a
    per-item work estimate and falls back to :func:`block_ranges` when
    it cannot (``weights=None``); ``blocked`` always splits by count.
    This is the single dispatch point the triangle/support/peeling
    fan-outs route through, keyed off
    :attr:`repro.parallel.context.ExecutionContext.partition`.
    """
    if strategy not in PARTITION_STRATEGIES:
        raise InvalidParameterError(
            f"partition strategy must be one of {PARTITION_STRATEGIES}, "
            f"got {strategy!r}"
        )
    if strategy == "balanced" and weights is not None:
        return weighted_ranges(weights, parts)
    return block_ranges(n, parts)


def range_weights(weights, ranges: list[tuple[int, int]]) -> list[int]:
    """Total estimated work per range — the ``work=`` attr of each task."""
    w = np.asarray(weights)
    return [int(w[lo:hi].sum()) for lo, hi in ranges]


def cyclic_indices(n: int, parts: int, part: int) -> np.ndarray:
    """Indices owned by ``part`` under round-robin (``schedule(static,1)``)."""
    check_nonnegative("n", n)
    check_positive("parts", parts)
    if not 0 <= part < parts:
        raise IndexError(f"part {part} out of range for {parts} parts")
    return np.arange(part, n, parts, dtype=np.int64)


def guided_ranges(n: int, parts: int, min_chunk: int = 1) -> list[tuple[int, int]]:
    """Guided schedule: chunk size = remaining / parts, halving over time.

    Returns the full ordered chunk list (assignment to threads is
    dynamic at run time; callers treat this as a work queue).
    """
    check_nonnegative("n", n)
    check_positive("parts", parts)
    check_positive("min_chunk", min_chunk)
    chunks = []
    lo = 0
    while lo < n:
        size = max((n - lo + parts - 1) // parts, min_chunk)
        hi = min(lo + size, n)
        chunks.append((lo, hi))
        lo = hi
    return chunks
