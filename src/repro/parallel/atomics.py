"""Emulated atomic operations on NumPy arrays.

CPython has no lock-free CAS on array elements; :class:`AtomicArray`
provides the handful of atomics the CC algorithms need (CAS,
atomic-min, fetch-and-store) using a striped lock table, which keeps
contention low when many threads touch disjoint indices.

The *vectorized* algorithm paths do not use this class — they emulate
CRCW priority writes deterministically with ``np.minimum.at``. This
class backs the pure-Python kernels that the thread backend runs to
exercise the paper's benign-race claim with real concurrency.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.utils.validation import check_positive


class AtomicArray:
    """A 1-D int64 array with emulated atomic element operations."""

    def __init__(self, values: np.ndarray, num_stripes: int = 64) -> None:
        check_positive("num_stripes", num_stripes)
        self.values = np.ascontiguousarray(values, dtype=np.int64)
        self._locks = [threading.Lock() for _ in range(num_stripes)]

    def _lock(self, idx: int) -> threading.Lock:
        return self._locks[idx % len(self._locks)]

    def load(self, idx: int) -> int:
        return int(self.values[idx])

    def store(self, idx: int, value: int) -> None:
        with self._lock(idx):
            self.values[idx] = value

    def compare_and_swap(self, idx: int, expected: int, new: int) -> bool:
        """Atomically set ``values[idx] = new`` iff it equals ``expected``."""
        with self._lock(idx):
            if self.values[idx] == expected:
                self.values[idx] = new
                return True
            return False

    def fetch_min(self, idx: int, value: int) -> int:
        """Atomically ``values[idx] = min(values[idx], value)``; returns prior value."""
        with self._lock(idx):
            old = int(self.values[idx])
            if value < old:
                self.values[idx] = value
            return old

    def __len__(self) -> int:
        return self.values.size
