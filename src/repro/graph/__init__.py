"""Graph substrate: canonical edge lists, CSR storage, IO, generators.

The EquiTruss formulation treats *edges* as first-class entities (the
supernode CC runs on the edge-induced graph), so the central type here is
:class:`EdgeList` — a canonical, deduplicated, sorted undirected edge list
with dense edge ids — with :class:`CSRGraph` layering GAP-style CSR
adjacency (plus per-slot edge ids) on top of it.
"""

from repro.graph.edgelist import EdgeList
from repro.graph.csr import CSRGraph
from repro.graph.builder import build_edgelist, build_graph
from repro.graph import generators, datasets, io, properties

__all__ = [
    "EdgeList",
    "CSRGraph",
    "build_edgelist",
    "build_graph",
    "generators",
    "datasets",
    "io",
    "properties",
]
