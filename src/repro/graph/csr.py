"""GAP-style compressed-sparse-row adjacency with per-slot edge ids.

:class:`CSRGraph` stores the symmetric adjacency of an undirected graph in
CSR form with neighbor lists sorted ascending. Each adjacency slot also
carries the *dense edge id* of the canonical undirected edge it belongs
to, which is the paper's "C-Optimal" storage optimization: looking up
τ(u, w) for a neighbor w of u becomes a contiguous-buffer gather instead
of a hash-map probe (§3.3 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.edgelist import EdgeList


class CSRGraph:
    """Immutable undirected graph in CSR form.

    Attributes
    ----------
    indptr:
        ``int64[n + 1]`` row offsets.
    indices:
        ``int64[2m]`` neighbor ids, sorted ascending within each row.
    edge_ids:
        ``int64[2m]`` canonical edge id for each adjacency slot, aligned
        with ``indices``.
    edges:
        The canonical :class:`EdgeList` this CSR was built from.
    """

    __slots__ = ("indptr", "indices", "edge_ids", "edges", "_slot_keys")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_ids: np.ndarray,
        edges: EdgeList,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.edge_ids = np.ascontiguousarray(edge_ids, dtype=np.int64)
        self.edges = edges
        if self.indptr.size != edges.num_vertices + 1:
            raise GraphConstructionError("indptr length must be num_vertices + 1")
        if self.indices.size != 2 * edges.num_edges:
            raise GraphConstructionError("indices length must be 2 * num_edges")
        if self.edge_ids.size != self.indices.size:
            raise GraphConstructionError("edge_ids must align with indices")
        self._slot_keys: np.ndarray | None = None
        for arr in (self.indptr, self.indices, self.edge_ids):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edgelist(cls, edges: EdgeList) -> "CSRGraph":
        """Build symmetric CSR adjacency from a canonical edge list."""
        n, m = edges.num_vertices, edges.num_edges
        src = np.concatenate([edges.u, edges.v])
        dst = np.concatenate([edges.v, edges.u])
        eid = np.concatenate([np.arange(m, dtype=np.int64)] * 2)
        order = np.argsort(src * np.int64(max(n, 1)) + dst, kind="stable")
        src, dst, eid = src[order], dst[order], eid[order]
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst, eid, edges)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.edges.num_vertices

    @property
    def num_edges(self) -> int:
        return self.edges.num_edges

    def degrees(self) -> np.ndarray:
        """Undirected degree per vertex."""
        return np.diff(self.indptr)

    def degree(self, u: int) -> int:
        return int(self.indptr[u + 1] - self.indptr[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor ids of ``u`` (a zero-copy view)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_edge_ids(self, u: int) -> np.ndarray:
        """Edge ids aligned with :meth:`neighbors`."""
        return self.edge_ids[self.indptr[u] : self.indptr[u + 1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Batched membership (keyed searchsorted)
    # ------------------------------------------------------------------
    @property
    def slot_keys(self) -> np.ndarray:
        """Globally sorted ``row * n + col`` key per adjacency slot.

        Because rows appear in order and each row's columns are sorted,
        this flattened key array is strictly increasing, enabling batched
        adjacency membership tests with one ``searchsorted``.
        """
        if self._slot_keys is None:
            n = max(self.num_vertices, 1)
            rows = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
            )
            keys = rows * np.int64(n) + self.indices
            keys.setflags(write=False)
            self._slot_keys = keys
        return self._slot_keys

    def locate_slots(self, us: np.ndarray, ws: np.ndarray) -> np.ndarray:
        """For each (u, w) pair return the adjacency-slot index, or -1.

        The slot index can be used to read :attr:`edge_ids` directly —
        this is the fast directed (u → w) lookup used by the triangle
        kernels.
        """
        us = np.asarray(us, dtype=np.int64)
        ws = np.asarray(ws, dtype=np.int64)
        keys = self.slot_keys
        q = us * np.int64(max(self.num_vertices, 1)) + ws
        pos = np.searchsorted(keys, q)
        pos_c = np.minimum(pos, max(keys.size - 1, 0))
        if keys.size == 0:
            return np.full(q.shape, -1, dtype=np.int64)
        found = keys[pos_c] == q
        return np.where(found, pos_c, -1)

    def has_edges(self, us: np.ndarray, ws: np.ndarray) -> np.ndarray:
        """Vectorized adjacency test for (u, w) pairs."""
        return self.locate_slots(us, ws) >= 0

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_scipy(self):
        """Symmetric adjacency as ``scipy.sparse.csr_array`` of int8 ones."""
        import scipy.sparse as sp

        data = np.ones(self.indices.size, dtype=np.int8)
        return sp.csr_array(
            (data, self.indices.copy(), self.indptr.copy()),
            shape=(self.num_vertices, self.num_vertices),
        )

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (tests / small graphs)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        g.add_edges_from(zip(self.edges.u.tolist(), self.edges.v.tolist()))
        return g
