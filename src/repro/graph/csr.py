"""GAP-style compressed-sparse-row adjacency with per-slot edge ids.

:class:`CSRGraph` stores the symmetric adjacency of an undirected graph in
CSR form with neighbor lists sorted ascending. Each adjacency slot also
carries the *dense edge id* of the canonical undirected edge it belongs
to, which is the paper's "C-Optimal" storage optimization: looking up
τ(u, w) for a neighbor w of u becomes a contiguous-buffer gather instead
of a hash-map probe (§3.3 of the paper).

The adjacency arrays are dtype-parameterized (int32 or int64, picked by
the :class:`~repro.parallel.context.DtypePolicy` of an execution
context): the kernels downstream are bandwidth-bound, so int32 halves
their memory traffic whenever ``|V|`` and ``2|E|`` fit. Keyed lookups
(``u·N + v``) resolve their dtype *separately* — the product wraps long
before the ids do, so :attr:`key_dtype` falls back to int64 once
``N² > 2³¹`` even when the index arrays are int32.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.edgelist import EdgeList


def _check_edge_order(edge_order, u: np.ndarray, v: np.ndarray, n: int) -> np.ndarray:
    """Validate a cached backward permutation in O(m) (no sorting).

    A valid ``edge_order`` selects every edge exactly once with the
    (v, u) keys strictly increasing — strict increase of distinct keys
    over m in-range entries already implies a permutation. Keys are
    formed in int64 (``np.int64`` cast before the multiply) because
    ``v·N + u`` wraps int32 once N exceeds ⌊√2³¹⌋.
    """
    order = np.ascontiguousarray(edge_order, dtype=np.int64)
    m = u.size
    if order.shape != (m,):
        raise GraphConstructionError(
            f"edge_order must have shape ({m},), got {order.shape}"
        )
    if m == 0:
        return order
    if int(order.min()) < 0 or int(order.max()) >= m:
        raise GraphConstructionError("edge_order entries out of range")
    keys = v[order] * np.int64(max(n, 1)) + u[order]
    if keys.size > 1 and not bool(np.all(np.diff(keys) > 0)):
        raise GraphConstructionError(
            "edge_order is not the (v, u)-sorted edge permutation"
        )
    return order


def _from_edgelist_keyed(edges: EdgeList, index_dtype=None) -> "CSRGraph":
    """The pre-fusion two-pass build: one 2m-element keyed stable sort.

    Kept as the measured baseline for the fused :meth:`CSRGraph.from_edgelist`
    (``bench_build_path.py``) and as the oracle of its bit-identity tests.
    """
    n, m = edges.num_vertices, edges.num_edges
    src = np.concatenate([edges.u, edges.v])
    dst = np.concatenate([edges.v, edges.u])
    eid = np.concatenate([np.arange(m, dtype=np.int64)] * 2)
    order = np.argsort(src * np.int64(max(n, 1)) + dst, kind="stable")
    src, dst, eid = src[order], dst[order], eid[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, dst, eid, edges, index_dtype=index_dtype)


class CSRGraph:
    """Immutable undirected graph in CSR form.

    Attributes
    ----------
    indptr:
        ``index_dtype[n + 1]`` row offsets.
    indices:
        ``index_dtype[2m]`` neighbor ids, sorted ascending within each row.
    edge_ids:
        ``index_dtype[2m]`` canonical edge id for each adjacency slot,
        aligned with ``indices``.
    edges:
        The canonical :class:`EdgeList` this CSR was built from.
    """

    __slots__ = ("indptr", "indices", "edge_ids", "edges", "_slot_keys", "_edge_order")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_ids: np.ndarray,
        edges: EdgeList,
        index_dtype=None,
    ) -> None:
        dt = np.dtype(index_dtype) if index_dtype is not None else np.dtype(np.int64)
        if dt not in (np.dtype(np.int32), np.dtype(np.int64)):
            raise GraphConstructionError(f"index dtype must be int32/int64, got {dt}")
        if dt == np.dtype(np.int32) and max(edges.num_vertices + 1, 2 * edges.num_edges) > np.iinfo(np.int32).max:
            raise GraphConstructionError(
                f"graph with {edges.num_vertices} vertices / {edges.num_edges} "
                "edges does not fit int32 indices"
            )
        self.indptr = np.ascontiguousarray(indptr, dtype=dt)
        self.indices = np.ascontiguousarray(indices, dtype=dt)
        self.edge_ids = np.ascontiguousarray(edge_ids, dtype=dt)
        self.edges = edges
        if self.indptr.size != edges.num_vertices + 1:
            raise GraphConstructionError("indptr length must be num_vertices + 1")
        if self.indices.size != 2 * edges.num_edges:
            raise GraphConstructionError("indices length must be 2 * num_edges")
        if self.edge_ids.size != self.indices.size:
            raise GraphConstructionError("edge_ids must align with indices")
        self._slot_keys: np.ndarray | None = None
        self._edge_order: np.ndarray | None = None
        for arr in (self.indptr, self.indices, self.edge_ids):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edgelist(
        cls, edges: EdgeList, ctx=None, index_dtype=None, *, edge_order=None
    ) -> "CSRGraph":
        """Build symmetric CSR adjacency from a canonical edge list.

        Fused single-pass Init: because the canonical edge list is
        already sorted by (u, v), the forward half of every row is in
        final order for free, and only the backward half needs a sort —
        one stable ``argsort`` of the m destination ids instead of the
        old 2m-element keyed (``src·N + dst``) sort. Row r's slots are
        ``[cnt_b[r] backward neighbors u < r ascending | forward
        neighbors v > r ascending]``, which is exactly the old build's
        sorted row, so the three arrays are bit-identical.

        ``edge_order`` optionally supplies that backward permutation
        (edges sorted by (v, u) — the artifact the ``.eqtsidx`` store
        caches as ``graph.edge_order``), skipping the sort entirely; it
        is validated in O(m) before use. The index dtype comes from
        ``index_dtype`` when given, else from the context's dtype
        policy, else int64.
        """
        if index_dtype is None and ctx is not None:
            from repro.parallel.context import ExecutionContext

            index_dtype = ExecutionContext.ensure(ctx).index_dtype(
                edges.num_vertices, edges.num_edges
            )
        n, m = edges.num_vertices, edges.num_edges
        u, v = edges.u, edges.v
        if edge_order is None:
            order = np.argsort(v, kind="stable")
        else:
            order = _check_edge_order(edge_order, u, v, n)
        cnt_f = np.bincount(u, minlength=n)
        cnt_b = np.bincount(v, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(cnt_f + cnt_b, out=indptr[1:])
        eid = np.arange(m, dtype=np.int64)
        indices = np.empty(2 * m, dtype=np.int64)
        edge_ids = np.empty(2 * m, dtype=np.int64)
        # forward half: edge i is the (i - fstart[u_i])-th forward
        # neighbor of u_i (the canonical sort groups rows contiguously)
        fstart = np.zeros(n, dtype=np.int64)
        np.cumsum(cnt_f[:-1], out=fstart[1:])
        slot = indptr[u] + cnt_b[u] + (eid - fstart[u])
        indices[slot] = v
        edge_ids[slot] = eid
        # backward half: edges sorted by (v, u) fill each row's prefix
        bstart = np.zeros(n, dtype=np.int64)
        np.cumsum(cnt_b[:-1], out=bstart[1:])
        vo = v[order]
        slot = indptr[vo] + (eid - bstart[vo])
        indices[slot] = u[order]
        edge_ids[slot] = order
        graph = cls(indptr, indices, edge_ids, edges, index_dtype=index_dtype)
        order = np.ascontiguousarray(order, dtype=np.int64)
        order.setflags(write=False)
        graph._edge_order = order
        return graph

    def edge_sort_order(self) -> np.ndarray:
        """Edge ids sorted by (v, u) — the backward-half permutation.

        Equal to ``np.argsort(edges.v, kind="stable")`` but derived
        *without sorting* when not already cached by
        :meth:`from_edgelist`: the backward slots of each CSR row hold
        precisely these edge ids in (row, neighbor) = (v, u) order, so
        one boolean mask over the slot positions recovers the
        permutation. This is the artifact the persistent store caches so
        a rebuild on an attached dataset skips the Init sort.
        """
        if self._edge_order is None:
            n, m = self.num_vertices, self.num_edges
            cnt_b = np.bincount(self.edges.v, minlength=n)
            deg = np.diff(self.indptr)
            backward_end = np.repeat(self.indptr[:-1].astype(np.int64) + cnt_b, deg)
            mask = np.arange(2 * m, dtype=np.int64) < backward_end
            order = np.ascontiguousarray(self.edge_ids[mask], dtype=np.int64)
            order.setflags(write=False)
            self._edge_order = order
        return self._edge_order

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.edges.num_vertices

    @property
    def num_edges(self) -> int:
        return self.edges.num_edges

    @property
    def index_dtype(self) -> np.dtype:
        """Dtype of the adjacency arrays (int32 or int64)."""
        return self.indices.dtype

    @property
    def key_dtype(self) -> np.dtype:
        """Narrowest dtype that holds the ``u·N + v`` key without overflow.

        This deliberately ignores :attr:`index_dtype`: an int32 graph
        over more than ⌊√2³¹⌋ ≈ 46341 vertices still needs int64 keys.
        """
        n = max(self.num_vertices, 1)
        if n * n - 1 > np.iinfo(np.int32).max:
            return np.dtype(np.int64)
        return self.index_dtype

    @property
    def nbytes(self) -> int:
        """Bytes held by the CSR arrays plus the canonical edge list."""
        total = self.indptr.nbytes + self.indices.nbytes + self.edge_ids.nbytes
        total += self.edges.u.nbytes + self.edges.v.nbytes
        if self._slot_keys is not None:
            total += self._slot_keys.nbytes
        return int(total)

    def degrees(self) -> np.ndarray:
        """Undirected degree per vertex."""
        return np.diff(self.indptr)

    def degree(self, u: int) -> int:
        return int(self.indptr[u + 1] - self.indptr[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor ids of ``u`` (a zero-copy view)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_edge_ids(self, u: int) -> np.ndarray:
        """Edge ids aligned with :meth:`neighbors`."""
        return self.edge_ids[self.indptr[u] : self.indptr[u + 1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"dtype={self.index_dtype.name})"
        )

    # ------------------------------------------------------------------
    # Batched membership (keyed searchsorted)
    # ------------------------------------------------------------------
    def edge_key_of(self, us: np.ndarray, ws: np.ndarray) -> np.ndarray:
        """Overflow-safe ``u·N + v`` scalar keys for (u, w) pairs.

        Computed in :attr:`key_dtype`, never the raw index dtype — the
        product wraps in int32 once ``N² > 2³¹`` even though every id
        fits, so narrow inputs are widened *before* multiplying.
        """
        kd = self.key_dtype
        us = np.asarray(us).astype(kd, copy=False)
        ws = np.asarray(ws).astype(kd, copy=False)
        return us * kd.type(max(self.num_vertices, 1)) + ws

    @property
    def slot_keys(self) -> np.ndarray:
        """Globally sorted ``row * n + col`` key per adjacency slot.

        Because rows appear in order and each row's columns are sorted,
        this flattened key array is strictly increasing, enabling batched
        adjacency membership tests with one ``searchsorted``. Stored in
        :attr:`key_dtype` (int64 whenever int32 keys would wrap).
        """
        if self._slot_keys is None:
            rows = np.repeat(
                np.arange(self.num_vertices, dtype=self.key_dtype),
                np.diff(self.indptr),
            )
            keys = self.edge_key_of(rows, self.indices)
            keys.setflags(write=False)
            self._slot_keys = keys
        return self._slot_keys

    def locate_slots(self, us: np.ndarray, ws: np.ndarray) -> np.ndarray:
        """For each (u, w) pair return the adjacency-slot index, or -1.

        The slot index can be used to read :attr:`edge_ids` directly —
        this is the fast directed (u → w) lookup used by the triangle
        kernels.
        """
        keys = self.slot_keys
        q = self.edge_key_of(us, ws)
        pos = np.searchsorted(keys, q)
        pos_c = np.minimum(pos, max(keys.size - 1, 0))
        if keys.size == 0:
            return np.full(q.shape, -1, dtype=np.int64)
        found = keys[pos_c] == q
        return np.where(found, pos_c, -1)

    def has_edges(self, us: np.ndarray, ws: np.ndarray) -> np.ndarray:
        """Vectorized adjacency test for (u, w) pairs."""
        return self.locate_slots(us, ws) >= 0

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def astype(self, index_dtype) -> "CSRGraph":
        """Copy of this graph with the adjacency arrays in another dtype."""
        if np.dtype(index_dtype) == self.index_dtype:
            return self
        copy = CSRGraph(
            self.indptr, self.indices, self.edge_ids, self.edges,
            index_dtype=index_dtype,
        )
        copy._edge_order = self._edge_order
        return copy

    def to_scipy(self):
        """Symmetric adjacency as ``scipy.sparse.csr_array`` of int8 ones."""
        import scipy.sparse as sp

        data = np.ones(self.indices.size, dtype=np.int8)
        return sp.csr_array(
            (data, self.indices.copy(), self.indptr.copy()),
            shape=(self.num_vertices, self.num_vertices),
        )

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (tests / small graphs)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        g.add_edges_from(zip(self.edges.u.tolist(), self.edges.v.tolist()))
        return g
