"""Canonicalizing builders: raw endpoint arrays → EdgeList / CSRGraph.

The pipeline mirrors the GAP benchmark's builder: drop self loops,
canonicalize endpoint order, sort by scalar key, deduplicate. All steps
are vectorized.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import GraphConstructionError
from repro.graph.edgelist import EdgeList


def build_edgelist(
    src: np.ndarray | Iterable[int],
    dst: np.ndarray | Iterable[int],
    num_vertices: int | None = None,
) -> EdgeList:
    """Build a canonical :class:`EdgeList` from raw endpoint arrays.

    Self loops are removed, parallel edges collapsed, and endpoint order
    normalized to ``u < v``. ``num_vertices`` defaults to ``max(id) + 1``.
    """
    src = np.asarray(list(src) if not isinstance(src, np.ndarray) else src, dtype=np.int64)
    dst = np.asarray(list(dst) if not isinstance(dst, np.ndarray) else dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphConstructionError(
            f"src/dst must be equal-length 1-D arrays, got {src.shape} and {dst.shape}"
        )
    if src.size and (int(src.min()) < 0 or int(dst.min()) < 0):
        raise GraphConstructionError("negative vertex id in input")
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if src.size else 0
    keep = src != dst
    lo = np.minimum(src[keep], dst[keep])
    hi = np.maximum(src[keep], dst[keep])
    key = lo * np.int64(num_vertices) + hi
    key = np.unique(key)
    u = key // num_vertices if num_vertices else key
    v = key % num_vertices if num_vertices else key
    return EdgeList(u, v, num_vertices)


def build_graph(
    src: np.ndarray | Iterable[int],
    dst: np.ndarray | Iterable[int],
    num_vertices: int | None = None,
    ctx=None,
    index_dtype=None,
):
    """Build a :class:`repro.graph.csr.CSRGraph` from raw endpoint arrays.

    ``ctx`` (an :class:`~repro.parallel.context.ExecutionContext`) or an
    explicit ``index_dtype`` selects the CSR index dtype; the default
    stays int64.
    """
    from repro.graph.csr import CSRGraph

    return CSRGraph.from_edgelist(
        build_edgelist(src, dst, num_vertices), ctx=ctx, index_dtype=index_dtype
    )
