"""Canonical undirected edge lists with dense edge identifiers.

An :class:`EdgeList` stores each undirected edge exactly once as an
ordered pair ``(u, v)`` with ``u < v``, sorted lexicographically. The
position of a pair in this ordering is the edge's *dense id* — the
identifier used everywhere else in the library (trussness arrays, parent
component arrays, triangle triples all index by edge id).

Fast id lookup uses the *keyed searchsorted* trick: because pairs are
sorted lexicographically, the scalar key ``u * num_vertices + v`` is
strictly increasing, so a batch of (u, v) queries resolves to ids with a
single :func:`numpy.searchsorted` call.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EdgeNotFoundError, GraphConstructionError
from repro.utils.validation import check_array_1d


class EdgeList:
    """Immutable canonical undirected edge list.

    Parameters
    ----------
    u, v:
        Endpoint arrays satisfying ``u[i] < v[i]``, jointly sorted by
        ``(u, v)``, with no duplicates. Use
        :func:`repro.graph.builder.build_edgelist` to canonicalize raw
        input; this constructor validates but does not repair.
    num_vertices:
        Number of vertices; must exceed ``max(v)``.
    """

    __slots__ = ("u", "v", "num_vertices", "_keys")

    def __init__(self, u: np.ndarray, v: np.ndarray, num_vertices: int) -> None:
        u = check_array_1d("u", np.ascontiguousarray(u, dtype=np.int64), "iu")
        v = check_array_1d("v", np.ascontiguousarray(v, dtype=np.int64), "iu")
        if u.shape != v.shape:
            raise GraphConstructionError(
                f"endpoint arrays differ in length: {u.shape} vs {v.shape}"
            )
        if u.size:
            if int(u.min()) < 0:
                raise GraphConstructionError("negative vertex id in edge list")
            if int(v.max()) >= num_vertices:
                raise GraphConstructionError(
                    f"vertex id {int(v.max())} >= num_vertices={num_vertices}"
                )
            if not np.all(u < v):
                raise GraphConstructionError("edges must be canonical (u < v)")
        keys = u * np.int64(num_vertices) + v
        if u.size and not np.all(np.diff(keys) > 0):
            raise GraphConstructionError(
                "edges must be sorted by (u, v) and free of duplicates"
            )
        self.u = u
        self.v = v
        self.num_vertices = int(num_vertices)
        self._keys = keys
        self.u.setflags(write=False)
        self.v.setflags(write=False)
        self._keys.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self.u.size

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeList(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
        )

    def __hash__(self) -> int:  # EdgeLists are immutable
        return hash((self.num_vertices, self.u.tobytes(), self.v.tobytes()))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def keys(self) -> np.ndarray:
        """Strictly increasing scalar key ``u * n + v`` per edge."""
        return self._keys

    def edge_ids(self, qu: np.ndarray, qv: np.ndarray, strict: bool = True) -> np.ndarray:
        """Vectorized lookup of dense edge ids for (qu, qv) pairs.

        Pairs are canonicalized internally (order of endpoints does not
        matter). With ``strict=True`` a missing edge raises
        :class:`EdgeNotFoundError`; otherwise missing pairs map to ``-1``.
        """
        qu = np.asarray(qu, dtype=np.int64)
        qv = np.asarray(qv, dtype=np.int64)
        lo = np.minimum(qu, qv)
        hi = np.maximum(qu, qv)
        key = lo * np.int64(self.num_vertices) + hi
        pos = np.searchsorted(self._keys, key)
        pos_clipped = np.minimum(pos, max(self.num_edges - 1, 0))
        if self.num_edges == 0:
            found = np.zeros(key.shape, dtype=bool)
        else:
            found = self._keys[pos_clipped] == key
        if strict:
            if not np.all(found):
                bad = np.argwhere(~found).ravel()
                i = int(bad[0])
                raise EdgeNotFoundError(
                    f"edge ({int(lo.flat[i])}, {int(hi.flat[i])}) not in graph"
                )
            return pos
        out = np.where(found, pos_clipped, -1)
        return out

    def edge_id(self, a: int, b: int) -> int:
        """Scalar edge-id lookup; raises :class:`EdgeNotFoundError` if absent."""
        return int(self.edge_ids(np.array([a]), np.array([b]))[0])

    def has_edge(self, a: int, b: int) -> bool:
        return int(self.edge_ids(np.array([a]), np.array([b]), strict=False)[0]) >= 0

    def endpoints(self, eids: np.ndarray | int) -> tuple[np.ndarray, np.ndarray]:
        """Return (u, v) endpoint arrays for the given edge ids."""
        return self.u[eids], self.v[eids]

    def as_tuples(self) -> list[tuple[int, int]]:
        """Edge list as Python tuples (small graphs / tests only)."""
        return list(zip(self.u.tolist(), self.v.tolist()))

    # ------------------------------------------------------------------
    # Derived edge lists
    # ------------------------------------------------------------------
    def subset(self, mask_or_ids: np.ndarray) -> "EdgeList":
        """Edge list restricted to a boolean mask or id array.

        Vertex ids are preserved (no compaction); the result is a valid
        canonical edge list over the same vertex set.
        """
        sel = np.asarray(mask_or_ids)
        if sel.dtype == bool:
            ids = np.flatnonzero(sel)
        else:
            ids = np.sort(sel.astype(np.int64))
        return EdgeList(self.u[ids], self.v[ids], self.num_vertices)

    def degrees(self) -> np.ndarray:
        """Undirected degree of every vertex."""
        deg = np.bincount(self.u, minlength=self.num_vertices)
        deg += np.bincount(self.v, minlength=self.num_vertices)
        return deg
