"""Graph property utilities: degree statistics, density, components.

Used by the dataset registry to report Table-3-style inventories and by
tests to sanity-check generators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList


@dataclass(frozen=True)
class GraphSummary:
    """Compact description of a graph, Table-3 style."""

    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    num_isolated: int

    def row(self) -> tuple:
        return (
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            round(self.mean_degree, 2),
            self.num_isolated,
        )


def summarize(edges: EdgeList) -> GraphSummary:
    """Degree-based summary of an edge list."""
    deg = edges.degrees()
    return GraphSummary(
        num_vertices=edges.num_vertices,
        num_edges=edges.num_edges,
        max_degree=int(deg.max()) if deg.size else 0,
        mean_degree=float(deg.mean()) if deg.size else 0.0,
        num_isolated=int((deg == 0).sum()),
    )


def degree_histogram(edges: EdgeList) -> np.ndarray:
    """``hist[d]`` = number of vertices with degree ``d``."""
    deg = edges.degrees()
    return np.bincount(deg) if deg.size else np.zeros(1, dtype=np.int64)


def num_connected_components(graph: CSRGraph) -> int:
    """Number of connected components (scipy reference implementation)."""
    import scipy.sparse.csgraph as csgraph

    if graph.num_vertices == 0:
        return 0
    n_comp, _ = csgraph.connected_components(graph.to_scipy(), directed=False)
    return int(n_comp)


def global_clustering_coefficient(graph: CSRGraph) -> float:
    """3 * triangles / open wedges, computed from the CSR adjacency."""
    from repro.triangles.count import count_triangles

    deg = graph.degrees().astype(np.float64)
    wedges = float((deg * (deg - 1) / 2).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * count_triangles(graph) / wedges
