"""Synthetic stand-ins for the paper's SNAP datasets (Table 3).

The paper evaluates on six SNAP networks (Amazon … Friendster, up to
1.8 B edges). This environment has no network access and no memory for
billion-edge graphs, so each dataset name maps to a deterministic
synthetic stand-in that preserves what the experiments actually exercise:

* power-law degree structure (RMAT/Kronecker core),
* a truss-rich community overlay (planted near-cliques) so that k-truss
  levels k = 3..~10 are all populated, as in real social networks,
* the paper's *relative size ordering* (amazon < dblp < youtube <
  livejournal < orkut < friendster).

Absolute |V|, |E| are scaled down ~100–2000×; a ``scale_factor`` knob
lets callers grow them when more time/memory is available. Paper
reference sizes are retained for side-by-side reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.builder import build_edgelist
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import planted_community_graph, rmat_graph
from repro.utils.rng import resolve_rng

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset", "load_dataset_graph"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in dataset."""

    name: str
    scale: int          # RMAT scale: 2**scale vertices in the core
    edge_factor: int    # RMAT edges per vertex
    num_communities: int
    community_lo: int
    community_hi: int
    seed: int
    paper_vertices: int
    paper_edges: int

    def generate(self, scale_factor: float = 1.0) -> EdgeList:
        """Materialize the stand-in; ``scale_factor`` grows/shrinks it."""
        if scale_factor <= 0:
            raise InvalidParameterError("scale_factor must be positive")
        extra = int(round(np.log2(scale_factor))) if scale_factor != 1.0 else 0
        scale = max(self.scale + extra, 4)
        n = 1 << scale
        core = rmat_graph(scale, self.edge_factor, seed=self.seed)
        ncomm = max(1, int(self.num_communities * scale_factor))
        overlay, _ = planted_community_graph(
            ncomm,
            self.community_lo,
            self.community_hi,
            p_intra=0.85,
            overlap=2,
            seed=self.seed + 1,
        )
        # Scatter the community vertices across the core's vertex range so
        # the overlay interleaves with the power-law background.
        rng = resolve_rng(self.seed + 2)
        mapping = rng.choice(n, size=overlay.num_vertices, replace=False).astype(np.int64)
        src = np.concatenate([core.u, mapping[overlay.u]])
        dst = np.concatenate([core.v, mapping[overlay.v]])
        return build_edgelist(src, dst, num_vertices=n)


#: Stand-ins ordered as in Table 3 of the paper.
DATASETS: dict[str, DatasetSpec] = {
    "amazon": DatasetSpec("amazon", 12, 3, 60, 5, 9, 101, 334_863, 925_872),
    "dblp": DatasetSpec("dblp", 12, 4, 90, 5, 10, 102, 317_080, 1_049_866),
    "youtube": DatasetSpec("youtube", 13, 3, 110, 5, 10, 103, 1_134_890, 2_987_624),
    "livejournal": DatasetSpec("livejournal", 14, 8, 220, 6, 12, 104, 3_997_962, 34_681_189),
    "orkut": DatasetSpec("orkut", 14, 16, 320, 6, 14, 105, 3_072_441, 117_185_083),
    "friendster": DatasetSpec("friendster", 15, 14, 480, 6, 14, 106, 65_608_366, 1_806_067_135),
}


def dataset_names() -> list[str]:
    """Names in paper (Table 3) order."""
    return list(DATASETS)


@lru_cache(maxsize=16)
def _cached(name: str, scale_factor: float) -> EdgeList:
    return DATASETS[name].generate(scale_factor)


def load_dataset(name: str, scale_factor: float = 1.0) -> EdgeList:
    """Load (and memoize) a stand-in dataset by paper name."""
    if name not in DATASETS:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return _cached(name, float(scale_factor))


@lru_cache(maxsize=16)
def load_dataset_graph(name: str, scale_factor: float = 1.0) -> CSRGraph:
    """Load a stand-in dataset as a CSR graph (memoized)."""
    return CSRGraph.from_edgelist(load_dataset(name, scale_factor))
