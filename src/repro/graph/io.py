"""Graph IO: SNAP-style edge-list text files and a binary ``.npz`` format.

The paper's datasets come from SNAP [26]; SNAP distributes whitespace-
separated edge lists with ``#`` comment lines. We read and write that
format, plus a compact NumPy archive for fast reload of generated
stand-in datasets.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import build_edgelist
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList


def read_snap_text(path: str | Path | _io.TextIOBase) -> EdgeList:
    """Read a SNAP-style whitespace-separated edge list.

    Lines starting with ``#`` (or ``%``, as used by KONECT) are ignored.
    The result is canonicalized (self loops dropped, duplicates merged).
    """
    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as fh:
            return read_snap_text(fh)
    src: list[int] = []
    dst: list[int] = []
    for lineno, line in enumerate(path, start=1):
        s = line.strip()
        if not s or s.startswith("#") or s.startswith("%"):
            continue
        parts = s.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {lineno}: expected two vertex ids, got {s!r}")
        try:
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
        except ValueError as exc:
            raise GraphFormatError(f"line {lineno}: non-integer vertex id in {s!r}") from exc
    return build_edgelist(np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64))


def write_snap_text(edges: EdgeList, path: str | Path) -> None:
    """Write an edge list as SNAP-style text (one ``u v`` pair per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# Undirected graph: {edges.num_vertices} vertices, {edges.num_edges} edges\n")
        for a, b in zip(edges.u.tolist(), edges.v.tolist()):
            fh.write(f"{a} {b}\n")


def save_npz(edges: EdgeList, path: str | Path) -> None:
    """Save a canonical edge list as a compressed NumPy archive."""
    np.savez_compressed(
        path, u=edges.u, v=edges.v, num_vertices=np.int64(edges.num_vertices)
    )


def load_npz(path: str | Path) -> EdgeList:
    """Load an edge list previously stored with :func:`save_npz`."""
    with np.load(path) as data:
        try:
            return EdgeList(data["u"], data["v"], int(data["num_vertices"]))
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing array {exc}") from exc


def load_graph(path: str | Path, ctx=None) -> CSRGraph:
    """Load a graph from ``.npz`` or text based on the file suffix.

    ``ctx`` (an :class:`~repro.parallel.context.ExecutionContext`)
    selects the CSR index dtype through its dtype policy.
    """
    p = Path(path)
    if p.suffix == ".npz":
        return CSRGraph.from_edgelist(load_npz(p), ctx=ctx)
    return CSRGraph.from_edgelist(read_snap_text(p), ctx=ctx)
