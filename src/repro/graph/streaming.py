"""Streaming edge-list ingestion with bounded memory.

For graphs whose raw text does not fit in memory comfortably (the paper
cites single-machine processing of large graphs [47]), this reader
parses SNAP text in fixed-size chunks and folds each chunk into a
running sorted, deduplicated key set — peak memory is the canonical
edge list plus one chunk, never the raw file.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import EdgeList
from repro.utils.validation import check_positive


class StreamingEdgeListBuilder:
    """Incrementally builds a canonical edge list from raw chunks.

    ``num_vertices`` may grow as chunks arrive; keys are re-encoded
    when it does, so chunks can be appended in any order.
    """

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.int64)
        self._n = 0

    @property
    def num_edges(self) -> int:
        return self._keys.size

    @property
    def num_vertices(self) -> int:
        return self._n

    def add_chunk(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Fold one chunk of raw endpoint pairs into the running set."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphFormatError("chunk arrays must have equal length")
        if src.size == 0:
            return
        if src.min() < 0 or dst.min() < 0:
            raise GraphFormatError("negative vertex id in chunk")
        new_n = int(max(src.max(), dst.max()) + 1)
        if new_n > self._n:
            if self._keys.size:
                u = self._keys // self._n
                v = self._keys % self._n
                self._keys = u * np.int64(new_n) + v
            self._n = new_n
        keep = src != dst
        lo = np.minimum(src[keep], dst[keep])
        hi = np.maximum(src[keep], dst[keep])
        chunk_keys = np.unique(lo * np.int64(self._n) + hi)
        # sorted merge of two unique key sets
        merged = np.union1d(self._keys, chunk_keys)
        self._keys = merged

    def finalize(self, num_vertices: int | None = None) -> EdgeList:
        """Produce the canonical edge list."""
        n = self._n if num_vertices is None else max(num_vertices, self._n)
        if n != self._n and self._keys.size:
            u = self._keys // self._n
            v = self._keys % self._n
            keys = np.sort(u * np.int64(n) + v)
        else:
            keys = self._keys
        if n == 0:
            return EdgeList(np.empty(0, np.int64), np.empty(0, np.int64), 0)
        return EdgeList(keys // n, keys % n, n)


def read_snap_text_streaming(
    path: str | Path, chunk_lines: int = 1 << 16
) -> EdgeList:
    """Read SNAP text with bounded memory (chunked parse + fold)."""
    check_positive("chunk_lines", chunk_lines)
    builder = StreamingEdgeListBuilder()
    src: list[int] = []
    dst: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            s = line.strip()
            if not s or s[0] in "#%":
                continue
            parts = s.split()
            if len(parts) < 2:
                raise GraphFormatError(f"line {lineno}: expected two ids, got {s!r}")
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(f"line {lineno}: non-integer id in {s!r}") from exc
            if len(src) >= chunk_lines:
                builder.add_chunk(np.array(src, np.int64), np.array(dst, np.int64))
                src.clear()
                dst.clear()
    if src:
        builder.add_chunk(np.array(src, np.int64), np.array(dst, np.int64))
    return builder.finalize()
