"""The repo-specific contract rules (REP001–REP005).

Each rule encodes one invariant the process-backend speedup story
depends on — the conventions PR 4's kernels follow by hand, checked
here by AST inspection so a regression fails CI instead of corrupting
results on a many-core box:

========  =============================================================
REP001    Process-kernel purity: functions dispatched through
          ``ProcessBackend.map_tasks`` must be picklable module-level
          functions (no lambdas, no nested defs, no bound methods) and
          must not rebind or mutate module-global state.
REP002    No cross-process atomics: shared-memory worker kernels must
          not touch :mod:`repro.parallel.atomics` — the striped-lock
          emulation only synchronizes threads of one process, so using
          it across workers silently loses updates.
REP003    Ctx-threading discipline: kernel entry points in ``graph/``,
          ``triangles/``, ``truss/``, ``cc/``, ``equitruss/`` and
          ``serve/`` must forward their ``ctx`` to every ctx-aware
          callee and must never construct a fresh ``ExecutionContext()``
          (that would fork the workspace, tracer, and worker pools).
REP004    Span/metric hygiene: ``repro.obs.metrics`` names must be
          literal strings under the ``repro.*`` namespace, span/region
          names must be literal (greppable), and ``Timer`` start/stop
          calls must pair up within a function.
REP005    Dtype safety: ``u * n + v``-style key arithmetic must be
          routed through :class:`~repro.parallel.context.DtypePolicy`
          or an explicit int64 cast — the exact overflow class fixed in
          PR 2 (``CSRGraph`` key dtypes).
========  =============================================================

The serving/store contract rules (REP006–REP010: async safety, wire
protocol, metric catalogue, and store section conformance) live in
:mod:`repro.analysis.contracts`; :func:`default_rules` registers both
sets.

Suppress a deliberate violation inline with ``# repro: allow(REPnnn)``
on the offending line, or grandfather it in ``analysis-baseline.json``
with a note.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectIndex

#: Packages whose public functions are kernel entry points (REP003/REP005).
KERNEL_PACKAGES = frozenset(
    {"graph", "triangles", "truss", "cc", "equitruss", "serve", "store"}
)

#: Packages additionally scanned for unguarded key arithmetic (REP005).
DTYPE_PACKAGES = KERNEL_PACKAGES | frozenset(
    {"parallel", "distributed", "community", "core_decomp"}
)

ATOMICS_MODULE = "repro.parallel.atomics"


def _dotted(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain, or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Every function definition with a flag for 'module- or class-level'.

    Methods count as top-level (they are picklable by reference); defs
    nested inside another function do not.
    """

    def visit(node: ast.AST, depth_in_fn: int) -> Iterator[
        tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, depth_in_fn == 0
                yield from visit(child, depth_in_fn + 1)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, depth_in_fn)
            else:
                yield from visit(child, depth_in_fn)

    yield from visit(tree, 0)


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter and locally-bound names of a function body."""
    args = fn.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        )
    }
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
    return names


class Rule:
    """Base class: rules yield findings for one module at a time.

    Rules with ``project = True`` are *project rules*: instead of
    per-module ``check`` calls they get one ``check_project`` call with
    every loaded module, for conformance checks that compare modules
    against each other (dispatch tables vs the protocol op vocabulary,
    emitted metric names vs the docs catalogue, section-name literals
    vs the store format table).
    """

    id: str = "REP000"
    title: str = ""
    hint: str = ""
    #: when True the engine calls ``check_project`` once instead of
    #: ``check`` per module
    project: bool = False

    def check(self, mod: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    def check_project(
        self,
        modules: "list[ModuleInfo]",
        index: ProjectIndex,
        root: "object",
    ) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


# ----------------------------------------------------------------------
# REP001 — process-kernel purity
# ----------------------------------------------------------------------

class ProcessKernelPurity(Rule):
    id = "REP001"
    title = "process-pool workers must be pure module-level functions"
    hint = (
        "move the worker to a module-level `def` (picklable by reference) "
        "and pass all state through task arguments / SharedHandles"
    )

    def check(self, mod: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        module_fns: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        nested_fns: set[str] = set()
        for fn, top in _walk_functions(mod.tree):
            if top and isinstance(fn, ast.FunctionDef):
                module_fns.setdefault(fn.name, fn)
            elif not top:
                nested_fns.add(fn.name)

        # Dispatch sites: the first argument of every ``*.map_tasks(...)``.
        for node in ast.walk(mod.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "map_tasks"
                and node.args
            ):
                continue
            fn_arg = node.args[0]
            if isinstance(fn_arg, ast.Lambda):
                yield mod.finding(
                    self, fn_arg,
                    "lambda passed to map_tasks cannot be pickled to a "
                    "worker process",
                )
            elif isinstance(fn_arg, ast.Attribute):
                yield mod.finding(
                    self, fn_arg,
                    f"`{_dotted(fn_arg)}` passed to map_tasks: bound methods "
                    "capture instance state that must not cross the process "
                    "boundary",
                )
            elif isinstance(fn_arg, ast.Name):
                name = fn_arg.id
                if name in nested_fns and name not in module_fns:
                    yield mod.finding(
                        self, fn_arg,
                        f"`{name}` passed to map_tasks is a nested function; "
                        "closures cannot be pickled by reference",
                    )

        # Worker bodies (dispatched anywhere in the project, or ``_w_*`` by
        # convention) must not rebind or mutate module-global state: worker
        # processes are forked copies, so such writes silently diverge from
        # the coordinator.
        module_globals = {
            t.id
            for stmt in mod.tree.body
            if isinstance(stmt, ast.Assign)
            for t in stmt.targets
            if isinstance(t, ast.Name)
        } | {
            stmt.target.id
            for stmt in mod.tree.body
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
        }
        for name, fn in module_fns.items():
            if (mod.module, name) not in index.worker_fns:
                continue
            locals_ = _local_names(fn)
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    yield mod.finding(
                        self, node,
                        f"worker `{name}` rebinds module globals "
                        f"({', '.join(node.names)}) — the write stays in the "
                        "forked worker and never reaches the coordinator",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for t in targets:
                        base = t
                        while isinstance(base, (ast.Subscript, ast.Attribute)):
                            base = base.value
                        if (
                            isinstance(base, ast.Name)
                            and base is not t  # only container mutation
                            and base.id in module_globals
                            and base.id not in locals_
                        ):
                            yield mod.finding(
                                self, node,
                                f"worker `{name}` mutates module-global "
                                f"`{base.id}` — per-process state diverges "
                                "across the pool",
                            )


# ----------------------------------------------------------------------
# REP002 — no cross-process atomics
# ----------------------------------------------------------------------

class NoCrossProcessAtomics(Rule):
    id = "REP002"
    title = "shared-memory worker kernels must not use repro.parallel.atomics"
    hint = (
        "restructure the kernel as partition -> privatize -> reduce: each "
        "worker writes a private partial (bincount row, append buffer) and "
        "the coordinator reduces; AtomicArray locks are per-process only"
    )

    def check(self, mod: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        atomic_names = {
            alias.asname or alias.name
            for stmt in mod.tree.body
            if isinstance(stmt, ast.ImportFrom) and stmt.module == ATOMICS_MODULE
            for alias in stmt.names
        }
        workers = [
            fn
            for fn, top in _walk_functions(mod.tree)
            if top and (mod.module, fn.name) in index.worker_fns
        ]
        for fn in workers:
            for node in ast.walk(fn):
                if isinstance(node, ast.ImportFrom) and node.module == ATOMICS_MODULE:
                    yield mod.finding(
                        self, node,
                        f"worker `{fn.name}` imports {ATOMICS_MODULE}",
                    )
                elif (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in atomic_names
                ):
                    yield mod.finding(
                        self, node,
                        f"worker `{fn.name}` uses `{node.id}` from "
                        f"{ATOMICS_MODULE}: its locks do not synchronize "
                        "across processes",
                    )
                else:
                    dotted = _dotted(node) if isinstance(node, ast.Attribute) else None
                    if dotted and ATOMICS_MODULE.split(".")[-1] in dotted.split("."):
                        if dotted.startswith(("atomics.", "repro.parallel.atomics")):
                            yield mod.finding(
                                self, node,
                                f"worker `{fn.name}` references `{dotted}`",
                            )


# ----------------------------------------------------------------------
# REP003 — ctx-threading discipline
# ----------------------------------------------------------------------

class CtxThreading(Rule):
    id = "REP003"
    title = "kernel entry points must thread ctx=, never fork a fresh context"
    hint = (
        "normalize with ExecutionContext.ensure(ctx) and forward ctx= to "
        "every ctx-aware callee; a bare ExecutionContext() splits the "
        "workspace, tracer, and backend pools"
    )

    def check(self, mod: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        if mod.package not in KERNEL_PACKAGES:
            return
        # Local aliases bound to the ExecutionContext class.
        ec_aliases = {
            alias.asname or alias.name
            for stmt in ast.walk(mod.tree)
            if isinstance(stmt, ast.ImportFrom)
            and stmt.module == "repro.parallel.context"
            for alias in stmt.names
            if alias.name == "ExecutionContext"
        }
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ec_aliases
            ):
                yield mod.finding(
                    self, node,
                    "bare ExecutionContext() constructed inside a kernel "
                    "module; use ExecutionContext.ensure(ctx)",
                )

        for fn, top in _walk_functions(mod.tree):
            if not top:
                continue
            if _ctx_in_scope(fn) is None:
                continue
            for call in ast.walk(fn):
                if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)):
                    continue
                info = index.ctx_callable(mod, call.func.id)
                if info is None:
                    continue
                if any(kw.arg == "ctx" for kw in call.keywords):
                    continue
                if any(kw.arg is None for kw in call.keywords):
                    continue  # **splat may carry ctx — cannot prove a drop
                if info.ctx_pos >= 0 and len(call.args) > info.ctx_pos:
                    continue  # passed positionally
                yield mod.finding(
                    self, call,
                    f"`{fn.name}` has ctx in scope but calls ctx-aware "
                    f"`{call.func.id}` without forwarding it — the callee "
                    "falls back to a fresh serial context",
                )


def _ctx_in_scope(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> int | None:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    return names.index("ctx") if "ctx" in names else None


# ----------------------------------------------------------------------
# REP004 — span/metric hygiene
# ----------------------------------------------------------------------

class SpanMetricHygiene(Rule):
    id = "REP004"
    title = "metric/span names must be literal; Timer start/stop must pair"
    hint = (
        "use a literal 'repro.*' string (or a module-level constant) so "
        "names stay greppable and the registry namespace stays uniform"
    )

    METRIC_FNS = frozenset({"inc", "set_gauge", "set_gauge_max", "observe"})
    METRIC_RECEIVERS = frozenset({"metrics", "repro.obs.metrics", "obs.metrics"})

    def _literal(
        self, node: ast.AST | None, mod: ModuleInfo, index: ProjectIndex
    ) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return index.resolve_str(mod, node.id)
        return None

    def check(self, mod: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        if mod.package in ("obs", "analysis"):
            return  # the registry/linter internals take names as parameters
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            f = node.func
            if not isinstance(f, ast.Attribute):
                continue
            recv = _dotted(f.value)
            if f.attr in self.METRIC_FNS and recv in self.METRIC_RECEIVERS:
                arg0 = node.args[0] if node.args else None
                name = self._literal(arg0, mod, index)
                if name is None:
                    yield mod.finding(
                        self, node,
                        f"metrics.{f.attr}() name is not a literal string "
                        "(or module-level constant)",
                    )
                elif not name.startswith("repro."):
                    yield mod.finding(
                        self, node,
                        f"metric name {name!r} is outside the repro.* "
                        "namespace",
                    )
            elif f.attr == "region" and recv is not None:
                arg0 = node.args[0] if node.args else None
                if self._literal(arg0, mod, index) is None:
                    yield mod.finding(
                        self, node,
                        "span/region name is not a literal string (or "
                        "module-level constant)",
                        hint="dynamic span names break trace diffing and "
                        "the per-kernel breakdown tables",
                    )

        # Timer discipline: start/stop must pair within a function.
        for fn, _top in _walk_functions(mod.tree):
            timers: set[str] = set()
            starts = stops = 0
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    v = node.value
                    # t = Timer()  /  t = Timer().start()
                    chained = (
                        isinstance(v.func, ast.Attribute)
                        and v.func.attr == "start"
                        and isinstance(v.func.value, ast.Call)
                        and _dotted(v.func.value.func) == "Timer"
                    )
                    if _dotted(v.func) == "Timer" or chained:
                        for t in node.targets:
                            if isinstance(t, ast.Name):
                                timers.add(t.id)
                        if chained:
                            starts += 1
            if not timers:
                continue
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in timers
                ):
                    if node.func.attr == "start":
                        starts += 1
                    elif node.func.attr == "stop":
                        stops += 1
            if starts != stops:
                yield mod.finding(
                    self, fn,
                    f"`{fn.name}` starts a Timer {starts} time(s) but stops "
                    f"it {stops} time(s)",
                    hint="pair every Timer.start() with a stop() (or use "
                    "`with Timer() as t:`) — unbalanced timers raise at "
                    "runtime since PR 1",
                )


# ----------------------------------------------------------------------
# REP005 — dtype safety for key arithmetic
# ----------------------------------------------------------------------

class DtypeSafety(Rule):
    id = "REP005"
    title = "u*n+v key arithmetic must be overflow-guarded"
    hint = (
        "route the key through DtypePolicy.key_dtype / ctx.key_dtype or "
        "cast explicitly (np.int64(n), arr.astype(kd)); NEP 50 keeps "
        "int32_array * python_int at int32, so the product wraps once "
        "n**2 > 2**31"
    )

    #: A call with one of these function names anywhere inside the
    #: expression marks it as deliberately guarded.
    GUARD_CALL_NAMES = frozenset({"int64", "uint64"})
    GUARD_CALL_ATTRS = frozenset(
        {"astype", "type", "key_dtype", "edge_dtype", "index_dtype", "resolve"}
    )

    def _guarded_expr(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                f = sub.func
                if isinstance(f, ast.Attribute) and f.attr in (
                    self.GUARD_CALL_NAMES | self.GUARD_CALL_ATTRS
                ):
                    return True
                if isinstance(f, ast.Name) and f.id in self.GUARD_CALL_NAMES:
                    return True
        return False

    def _guarded_names(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Locals assigned from a guarded expression (e.g. span = np.int64(..))."""
        out: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and self._guarded_expr(node.value):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and self._guarded_expr(node.value)
            ):
                out.add(node.target.id)
        return out

    def _offending_key_binop(self, node: ast.AST, guarded: set[str]) -> bool:
        """Whether ``node`` is an unguarded ``a * n + b`` key expression."""
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)):
            return False
        if isinstance(node.left, ast.BinOp) and isinstance(node.left.op, ast.Mult):
            mult, other = node.left, node.right
        elif isinstance(node.right, ast.BinOp) and isinstance(
            node.right.op, ast.Mult
        ):
            mult, other = node.right, node.left
        else:
            return False
        operands = (mult.left, mult.right, other)
        # Plain numeric constants mean scalar arithmetic, not keys.
        if any(
            isinstance(o, ast.Constant)
            and isinstance(o.value, (int, float, complex))
            for o in operands
        ):
            return False
        if any(
            isinstance(o, ast.Constant) and isinstance(o.value, float)
            for sub in operands
            for o in ast.walk(sub)
        ):
            return False  # float math cannot be an integer key
        if self._guarded_expr(node):
            return False
        if any(isinstance(o, ast.Name) and o.id in guarded for o in operands):
            return False
        return True

    def _module_level_nodes(self, tree: ast.Module) -> Iterator[ast.AST]:
        """Every AST node outside any function body (class bodies count)."""

        def visit(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                yield child
                yield from visit(child)

        yield from visit(tree)

    MESSAGE = (
        "key-style arithmetic `a * n + b` without an int64/"
        "DtypePolicy guard — wraps at n**2 > 2**31 when the "
        "operands are int32"
    )

    def check(self, mod: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        if mod.package not in DTYPE_PACKAGES:
            return
        for fn, _top in _walk_functions(mod.tree):
            guarded = self._guarded_names(fn)
            for node in ast.walk(fn):
                if self._offending_key_binop(node, guarded):
                    yield mod.finding(self, node, self.MESSAGE)
        # module- and class-level statements (constants, dataclass
        # defaults, comprehension one-liners) build keys too — the PR 2
        # overflow class is not confined to function bodies
        module_guarded = {
            t.id
            for stmt in mod.tree.body
            if isinstance(stmt, ast.Assign) and self._guarded_expr(stmt.value)
            for t in stmt.targets
            if isinstance(t, ast.Name)
        }
        for node in self._module_level_nodes(mod.tree):
            if self._offending_key_binop(node, module_guarded):
                yield mod.finding(self, node, self.MESSAGE)


def default_rules() -> list[Rule]:
    """All registered rules, in id order."""
    from repro.analysis.contracts import (
        AsyncBlockingCalls,
        FireAndForgetHandles,
        MetricCatalogueConformance,
        StoreSectionNames,
        WireProtocolConformance,
    )

    return [
        ProcessKernelPurity(),
        NoCrossProcessAtomics(),
        CtxThreading(),
        SpanMetricHygiene(),
        DtypeSafety(),
        AsyncBlockingCalls(),
        FireAndForgetHandles(),
        WireProtocolConformance(),
        MetricCatalogueConformance(),
        StoreSectionNames(),
    ]
