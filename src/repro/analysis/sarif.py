"""SARIF 2.1.0 rendering of linter findings.

One static-analysis run → one SARIF ``run`` whose driver carries every
registered rule (id, contract, fix hint) and whose results point at
repo-relative files, so ``python -m repro.analysis --format sarif``
uploads straight into code-scanning UIs and findings annotate PR diffs.

The baseline fingerprint travels in ``partialFingerprints`` under the
``reproAnalysis/v1`` key, so external tooling can correlate a SARIF
result with its ``analysis-baseline.json`` entry.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.engine import Finding

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
FINGERPRINT_KEY = "reproAnalysis/v1"


def render_sarif(
    findings: Sequence[Finding],
    rule_docs: Iterable[tuple[str, str, str]],
) -> dict:
    """A SARIF 2.1.0 document for ``findings``.

    ``rule_docs`` is ``(id, title, hint)`` per registered rule (see
    :func:`repro.analysis.engine.iter_rule_docs`); every rule is listed
    even when clean, so the viewer can render the full contract set.
    """
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": title},
            "help": {"text": f"fix: {hint}"},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, title, hint in rule_docs
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = [
        {
            "ruleId": f.rule,
            **(
                {"ruleIndex": rule_index[f.rule]}
                if f.rule in rule_index
                else {}
            ),
            "level": "error",
            "message": {
                "text": f"{f.message} (fix: {f.hint})" if f.hint else f.message
            },
            "partialFingerprints": {FINGERPRINT_KEY: f.fingerprint},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(f.col, 1),
                            **(
                                {"snippet": {"text": f.snippet}}
                                if f.snippet
                                else {}
                            ),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
