"""Static analysis and dynamic race detection for the kernel layer.

Two halves guard the invariants the process-backend speedup story rests
on (see ``docs/architecture.md``, "Static analysis & kernel contracts"):

* the **AST contract linter** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`, :mod:`repro.analysis.contracts`) —
  rules REP001–REP005 over worker purity, atomics-freedom, ctx
  threading, span/metric hygiene, and key-dtype safety, plus the
  cross-layer serving/store contracts REP006–REP010 (async safety,
  wire-protocol / metric-catalogue / store-section conformance). Run
  it with ``python -m repro.analysis`` or ``repro lint``.
* the **write-set race detector** (:mod:`repro.analysis.races`) — an
  opt-in instrumented mode of the shared-memory backend that verifies
  the pairwise disjointness of worker write sets at reduce time.
* the **event-loop stall detector** (:mod:`repro.analysis.stall`) — an
  opt-in (``REPRO_LOOP_CHECK=1``) watchdog that times every serving
  event-loop callback and records (or, in strict mode, fails on) any
  that exceed the stall threshold — REP006's premise, checked live.
"""

from repro.analysis.engine import (
    Baseline,
    Finding,
    discover_files,
    run_lint,
)
from repro.analysis.races import (
    TrackedArray,
    enable_tracking,
    reset_tracking,
    tracking_enabled,
    verify_task_accesses,
)
from repro.analysis.rules import default_rules
from repro.analysis.stall import (
    LoopStall,
    LoopStallWatchdog,
    loop_check_enabled,
    loop_threshold_ms,
)

__all__ = [
    "Baseline",
    "Finding",
    "LoopStall",
    "LoopStallWatchdog",
    "TrackedArray",
    "default_rules",
    "discover_files",
    "enable_tracking",
    "loop_check_enabled",
    "loop_threshold_ms",
    "reset_tracking",
    "run_lint",
    "tracking_enabled",
    "verify_task_accesses",
]
