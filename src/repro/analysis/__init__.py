"""Static analysis and dynamic race detection for the kernel layer.

Two halves guard the invariants the process-backend speedup story rests
on (see ``docs/architecture.md``, "Static analysis & kernel contracts"):

* the **AST contract linter** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`) — rules REP001–REP005 over worker purity,
  atomics-freedom, ctx threading, span/metric hygiene, and key-dtype
  safety. Run it with ``python -m repro.analysis`` or ``repro lint``.
* the **write-set race detector** (:mod:`repro.analysis.races`) — an
  opt-in instrumented mode of the shared-memory backend that verifies
  the pairwise disjointness of worker write sets at reduce time.
"""

from repro.analysis.engine import (
    Baseline,
    Finding,
    discover_files,
    run_lint,
)
from repro.analysis.races import (
    TrackedArray,
    enable_tracking,
    reset_tracking,
    tracking_enabled,
    verify_task_accesses,
)
from repro.analysis.rules import default_rules

__all__ = [
    "Baseline",
    "Finding",
    "TrackedArray",
    "default_rules",
    "discover_files",
    "enable_tracking",
    "reset_tracking",
    "run_lint",
    "tracking_enabled",
    "verify_task_accesses",
]
