"""Dynamic write-set race detector for the shared-memory kernel layer.

The process-backend kernels are data-race-free *by construction*: every
``map_tasks`` fan-out follows partition → privatize → reduce, so each
worker writes a disjoint slice of every shared segment and only reads
ranges no sibling writes. Nothing enforced that — a bad partition
boundary (the classic off-by-one in ``block_ranges`` math) would corrupt
results only on a many-core machine, exactly where the bit-identity
tests of this repo's 1-core CI cannot see it.

This module closes the gap with an **opt-in instrumented mode**:

* When tracking is enabled (``REPRO_RACE_CHECK=1`` or
  :func:`enable_tracking` before the worker pool spins up),
  :func:`repro.parallel.shm.attach` hands workers a
  :class:`TrackedArray` instead of a plain view. The subclass records
  the byte ranges of every slice read and write against the backing
  segment — slice assignment, fancy indexing, and ufunc ``out=``
  targets are all captured.
* Each worker returns its access log alongside the task result (the
  ranges, not the data — a few tuples per task).
* At reduce time :func:`verify_task_accesses` checks, per segment,
  that (a) the write ranges of different tasks are pairwise disjoint
  (:class:`~repro.errors.PartitionOverlapError` otherwise) and (b) no
  task reads a range another task writes
  (:class:`~repro.errors.StaleReadError`): under true parallelism such
  a read races the sibling's write, so its value is schedule-dependent.

Because verification runs on the *declared-by-observation* write sets,
an overlapping partition fails loudly even when the tasks execute
sequentially on one core — the detector needs no actual interleaving to
fire. Fresh per-task export segments (``export_array``) never alias
across tasks and therefore never conflict.

Writes must go through slice assignment or ufuncs with ``out=`` — the
protocol every shipped kernel follows. An untracked escape hatch
(``numpy`` C internals writing through a plain view) would be invisible;
the REP001/REP002 static rules keep kernels inside the protocol.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import PartitionOverlapError, StaleReadError

#: Environment switch: truthy values enable tracking in every process
#: (workers inherit it through ``fork`` / the environment).
RACE_CHECK_ENV = "REPRO_RACE_CHECK"

_FALSY = frozenset({"", "0", "false", "no", "off"})

#: Explicit programmatic override (None = defer to the environment).
_forced: bool | None = None

#: Per-process access log: (segment name, 'r'|'w', lo byte, hi byte).
_LOG: list[tuple[str, str, int, int]] = []

AccessLog = list[tuple[str, str, int, int]]


def tracking_enabled() -> bool:
    """Whether shared-array access tracking is on in this process."""
    if _forced is not None:
        return _forced
    return os.environ.get(RACE_CHECK_ENV, "").strip().lower() not in _FALSY


def enable_tracking(on: bool = True) -> None:
    """Force tracking on/off for this process (and ``fork`` children
    created afterwards). Call *before* the worker pool spins up —
    already-running workers keep their inherited setting."""
    global _forced
    _forced = bool(on)


def reset_tracking() -> None:
    """Drop the programmatic override; the environment decides again."""
    global _forced
    _forced = None
    _LOG.clear()


def record(segment: str, kind: str, lo: int, hi: int) -> None:
    """Append one access to the per-process log (no-op for empty ranges)."""
    if hi > lo:
        _LOG.append((segment, kind, int(lo), int(hi)))


def drain_log() -> AccessLog:
    """Return and clear this process's access log."""
    out = list(_LOG)
    _LOG.clear()
    return out


def _byte_bounds(arr: np.ndarray) -> tuple[int, int]:
    from numpy.lib.array_utils import byte_bounds

    return byte_bounds(arr)


# ----------------------------------------------------------------------
# TrackedArray
# ----------------------------------------------------------------------

class TrackedArray(np.ndarray):
    """ndarray view over a shared segment that logs slice reads/writes.

    Views derived by basic indexing stay tracked (``__array_finalize__``
    propagates the segment identity); operations that materialize copies
    (fancy indexing, reductions) log a read and return plain arrays.
    Ranges are byte offsets relative to the segment start; accesses that
    cannot be bounded precisely are logged conservatively as the whole
    array's range.
    """

    _seg_name: str
    _seg_base: int
    _seg_size: int

    @classmethod
    def wrap(cls, arr: np.ndarray, segment: str) -> "TrackedArray":
        out = arr.view(cls)
        base_lo, base_hi = _byte_bounds(arr)
        out._seg_name = segment
        out._seg_base = base_lo
        out._seg_size = base_hi - base_lo
        return out

    def __array_finalize__(self, obj: Any) -> None:
        if obj is None:
            return
        self._seg_name = getattr(obj, "_seg_name", "")
        self._seg_base = getattr(obj, "_seg_base", -1)
        self._seg_size = getattr(obj, "_seg_size", 0)

    # ------------------------------------------------------------ spans
    def _span_of(self, arr: np.ndarray) -> tuple[int, int]:
        """Byte range of ``arr`` relative to the segment (conservative)."""
        if self._seg_base < 0:
            return (0, 0)
        try:
            lo, hi = _byte_bounds(arr)
        except Exception:  # pragma: no cover - exotic layouts
            return (0, self._seg_size)
        lo -= self._seg_base
        hi -= self._seg_base
        if lo < 0 or hi > self._seg_size:
            # not a view into the segment (e.g. a fancy-indexing copy):
            # attribute the access to this array's own range instead
            return self._own_span()
        return (lo, hi)

    def _own_span(self) -> tuple[int, int]:
        if self._seg_base < 0:
            return (0, 0)
        lo, hi = _byte_bounds(self.view(np.ndarray))
        return (lo - self._seg_base, hi - self._seg_base)

    def _log(self, kind: str, span: tuple[int, int]) -> None:
        if self._seg_name:
            record(self._seg_name, kind, span[0], span[1])

    # ------------------------------------------------------------ reads
    def __getitem__(self, key: Any) -> Any:
        result = super().__getitem__(key)
        if isinstance(result, np.ndarray):
            self._log("r", self._span_of(result))
        else:  # scalar element read
            self._log("r", self._own_span())
        return result

    # ----------------------------------------------------------- writes
    def __setitem__(self, key: Any, value: Any) -> None:
        target = self.view(np.ndarray)[key]
        if isinstance(target, np.ndarray):
            self._log("w", self._span_of(target))
        else:
            self._log("w", self._own_span())
        super().__setitem__(key, value)

    # ------------------------------------------------------------ ufuncs
    def __array_ufunc__(
        self, ufunc: Any, method: str, *inputs: Any, **kwargs: Any
    ) -> Any:
        out = kwargs.get("out")
        out_tuple: tuple = out if isinstance(out, tuple) else ()
        for i, arr in enumerate(inputs):
            if isinstance(arr, TrackedArray):
                # ufunc.at(a, idx, b) scatters *into* its first operand
                kind = "w" if (method == "at" and i == 0) else "r"
                arr._log(kind, arr._own_span())
        for arr in out_tuple:
            if isinstance(arr, TrackedArray):
                arr._log("w", arr._own_span())
        base_inputs = tuple(
            a.view(np.ndarray) if isinstance(a, TrackedArray) else a for a in inputs
        )
        if out_tuple:
            kwargs["out"] = tuple(
                a.view(np.ndarray) if isinstance(a, TrackedArray) else a
                for a in out_tuple
            )
        result = getattr(ufunc, method)(*base_inputs, **kwargs)
        # In-place ops (a += b) must hand back the *tracked* array so the
        # rebind `a = a.__iadd__(b)` keeps tracking subsequent writes.
        if (
            len(out_tuple) == 1
            and isinstance(out_tuple[0], TrackedArray)
            and isinstance(result, np.ndarray)
        ):
            return out_tuple[0]
        return result

    # --------------------------------------------------- array functions
    def __array_function__(
        self, func: Any, types: Any, args: Any, kwargs: Any
    ) -> Any:
        # np.copyto(dst, src) writes through its first argument; generic
        # functions with out= write through that. Everything else only
        # reads the tracked operands.
        if func is np.copyto and args and isinstance(args[0], TrackedArray):
            args[0]._log("w", args[0]._own_span())
        out = kwargs.get("out") if kwargs else None
        if isinstance(out, TrackedArray):
            out._log("w", out._own_span())
        for arr in _walk_arrays(args):
            if isinstance(arr, TrackedArray) and arr is not out:
                arr._log("r", arr._own_span())
        base_args = _untrack(args)
        base_kwargs = {k: _untrack(v) for k, v in kwargs.items()} if kwargs else {}
        return func(*base_args, **base_kwargs)


def _walk_arrays(obj: Any) -> Iterable[np.ndarray]:
    if isinstance(obj, np.ndarray):
        yield obj
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            yield from _walk_arrays(item)


def _untrack(obj: Any) -> Any:
    if isinstance(obj, TrackedArray):
        return obj.view(np.ndarray)
    if isinstance(obj, tuple):
        return tuple(_untrack(o) for o in obj)
    if isinstance(obj, list):
        return [_untrack(o) for o in obj]
    return obj


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------

def _merge(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Coalesce overlapping/adjacent [lo, hi) intervals."""
    if not intervals:
        return []
    intervals.sort()
    out = [intervals[0]]
    for lo, hi in intervals[1:]:
        if lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _overlap(
    a: list[tuple[int, int]], b: list[tuple[int, int]]
) -> tuple[int, int] | None:
    """First overlapping byte range between two merged interval lists."""
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            return (lo, hi)
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return None


def verify_task_accesses(
    per_task: Sequence[AccessLog | None], label: str = "map_tasks"
) -> None:
    """Check one fan-out's access logs for cross-task hazards.

    ``per_task`` holds one access log per task (``None`` for tasks that
    ran without tracking — they are skipped). Raises
    :class:`~repro.errors.PartitionOverlapError` when two tasks wrote
    overlapping ranges of one segment, and
    :class:`~repro.errors.StaleReadError` when a task read a range a
    *different* task wrote.
    """
    # segment -> task index -> merged intervals
    writes: dict[str, dict[int, list[tuple[int, int]]]] = {}
    reads: dict[str, dict[int, list[tuple[int, int]]]] = {}
    for ti, log in enumerate(per_task):
        if not log:
            continue
        for seg, kind, lo, hi in log:
            table = writes if kind == "w" else reads
            table.setdefault(seg, {}).setdefault(ti, []).append((lo, hi))
    for table in (writes, reads):
        for by_task in table.values():
            for ti in by_task:
                by_task[ti] = _merge(by_task[ti])

    for seg, by_task in writes.items():
        tasks = sorted(by_task)
        for i, ti in enumerate(tasks):
            for tj in tasks[i + 1:]:
                clash = _overlap(by_task[ti], by_task[tj])
                if clash is not None:
                    raise PartitionOverlapError(
                        f"{label}: workers {ti} and {tj} both wrote bytes "
                        f"[{clash[0]}, {clash[1]}) of shared segment "
                        f"'{seg}' — partitions must be disjoint "
                        "(privatize-and-reduce contract)"
                    )

    for seg, by_task in reads.items():
        seg_writes = writes.get(seg)
        if not seg_writes:
            continue
        for ti, read_ivs in by_task.items():
            for tj, write_ivs in seg_writes.items():
                if ti == tj:
                    continue
                clash = _overlap(read_ivs, write_ivs)
                if clash is not None:
                    raise StaleReadError(
                        f"{label}: worker {ti} read bytes "
                        f"[{clash[0]}, {clash[1]}) of shared segment "
                        f"'{seg}' that worker {tj} writes — the value is "
                        "schedule-dependent under true parallelism"
                    )
