"""Cross-layer contract rules for the serving and store subsystems.

PRs 6–9 added whole layers — the NDJSON wire protocol, the asyncio
frontend, shard workers, and the mmap store container — whose
invariants the kernel rules of :mod:`repro.analysis.rules` never see.
These rules close that gap by *parsing source as data* rather than
pattern-matching:

========  =============================================================
REP006    Async safety: no blocking call (``time.sleep``, sync file /
          socket I/O, ``subprocess.run``, ``fsync``, ``mmap``
          population, bare ``Lock.acquire``) may be reachable from an
          ``async def`` body in ``repro.serve`` — resolved
          interprocedurally through the project call graph, so a
          coroutine calling a sync helper that opens a file is flagged
          with the full witness chain.
REP007    No fire-and-forget handles: the result of ``create_task`` /
          ``ensure_future`` / ``call_later`` / ``call_at`` must be
          stored, awaited, or returned — a dropped handle cannot be
          cancelled on shutdown and its exceptions vanish.
REP008    Wire-protocol conformance: ``serve/protocol.py`` owns the op
          vocabulary (``FRONTEND_OPS`` / ``SHARD_OPS`` / ``OP_READY``)
          and the error taxonomy (``ERROR_TYPES``); the frontend and
          shard dispatch tables and the client's sent ops must agree
          with it exactly.
REP009    Metric-catalogue conformance: every literal ``repro.*``
          metric name emitted in the tree must appear in the
          ``docs/architecture.md`` catalogue and satisfy the registry
          name grammar; every catalogued name must still be emitted
          somewhere (no dead docs rows).
REP010    Store-section conformance: section-name literals in
          ``repro.store`` modules must come from the shared constant
          table in ``store/format.py`` (``REQUIRED_SECTIONS`` /
          ``COMPONENT_SECTIONS`` / ``EDGE_ORDER_SECTION``) so format
          drift is a lint error, not a corrupt file.
========  =============================================================

REP006's premise is provable at runtime with the event-loop stall
detector (:mod:`repro.analysis.stall`, ``REPRO_LOOP_CHECK=1``) the
same way the write-set race detector backs REP001/REP002.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectIndex
from repro.analysis.rules import Rule, _dotted

# ----------------------------------------------------------------------
# REP006 — blocking calls reachable from async bodies
# ----------------------------------------------------------------------

#: Dotted call names that block the calling thread. ``asyncio`` offers a
#: non-blocking spelling for each (``asyncio.sleep``, ``to_thread``,
#: ``create_subprocess_exec``, stream APIs).
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.open",
        "os.read",
        "os.write",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "mmap.mmap",
    }
)

#: Attribute calls that are file I/O no matter the receiver.
BLOCKING_ATTRS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: The builtin that opens files.
BLOCKING_BUILTINS = frozenset({"open"})


@dataclass
class _FnFacts:
    """Per-function facts for the blocking-reachability analysis."""

    key: tuple[str, str]  # (module, qualname)
    is_async: bool
    #: direct blocking primitives: (node, human description)
    blocking: list[tuple[ast.AST, str]] = field(default_factory=list)
    #: resolved outgoing calls: (callee key, call node)
    calls: list[tuple[tuple[str, str], ast.AST]] = field(default_factory=list)


def _function_local_imports(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, tuple[str, str]]:
    out: dict[str, tuple[str, str]] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                out[alias.asname or alias.name] = (node.module, alias.name)
    return out


def _awaited_values(fn: ast.AST) -> set[int]:
    """ids of Call nodes that are directly awaited."""
    return {
        id(node.value) for node in ast.walk(fn) if isinstance(node, ast.Await)
    }


def _iter_qualified_functions(
    mod: ModuleInfo,
) -> Iterator[tuple[str, str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(qualname, enclosing class or None, fn) for module/class-level defs."""
    for stmt in mod.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt.name, None, stmt
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{stmt.name}.{item.name}", stmt.name, item


def _own_nodes(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function body, skipping nested function definitions."""

    def visit(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            yield from visit(child)

    yield from visit(fn)


class _CallGraph:
    """Project-wide call graph keyed by ``(module, qualname)``."""

    def __init__(self, modules: list[ModuleInfo], index: ProjectIndex) -> None:
        self.index = index
        self.module_names = {m.module for m in modules}
        self.functions: dict[tuple[str, str], _FnFacts] = {}
        #: (module, ClassName) for every class definition seen
        self.classes: set[tuple[str, str]] = set()
        for mod in modules:
            for stmt in mod.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    self.classes.add((mod.module, stmt.name))
        for mod in modules:
            for qualname, cls, fn in _iter_qualified_functions(mod):
                self.functions[(mod.module, qualname)] = self._facts(
                    mod, qualname, cls, fn
                )

    # -- resolution ----------------------------------------------------
    def _resolve_name(
        self,
        mod: ModuleInfo,
        name: str,
        local_imports: dict[str, tuple[str, str]],
    ) -> tuple[str, str]:
        target = local_imports.get(name)
        if target is None:
            target = self.index.imports.get(mod.module, {}).get(name)
        return target if target is not None else (mod.module, name)

    def resolve_call(
        self,
        mod: ModuleInfo,
        call: ast.Call,
        cls: str | None,
        local_imports: dict[str, tuple[str, str]],
    ) -> tuple[str, str] | None:
        """Callee key of a call, or None when it cannot be pinned down."""
        func = call.func
        if isinstance(func, ast.Name):
            module, name = self._resolve_name(mod, func.id, local_imports)
            if (module, name) in self.classes:
                return (module, f"{name}.__init__")
            return (module, name)
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and cls is not None:
                    return (mod.module, f"{cls}.{func.attr}")
                module, name = self._resolve_name(mod, base.id, local_imports)
                candidate = f"{module}.{name}"
                if candidate in self.module_names:
                    return (candidate, func.attr)
        return None

    # -- facts ---------------------------------------------------------
    def _facts(
        self,
        mod: ModuleInfo,
        qualname: str,
        cls: str | None,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> _FnFacts:
        facts = _FnFacts(
            key=(mod.module, qualname),
            is_async=isinstance(fn, ast.AsyncFunctionDef),
        )
        local_imports = _function_local_imports(fn)
        awaited = _awaited_values(fn)
        for node in _own_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            desc = self._blocking_desc(node, mod, local_imports, awaited)
            if desc is not None:
                facts.blocking.append((node, desc))
                continue
            callee = self.resolve_call(mod, node, cls, local_imports)
            if callee is not None:
                facts.calls.append((callee, node))
        return facts

    def _blocking_desc(
        self,
        call: ast.Call,
        mod: ModuleInfo,
        local_imports: dict[str, tuple[str, str]],
        awaited: set[int],
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in BLOCKING_BUILTINS:
                return f"{func.id}(...)"
            module, name = self._resolve_name(mod, func.id, local_imports)
            if f"{module}.{name}" in BLOCKING_CALLS:
                return f"{module}.{name}(...)"
            return None
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted in BLOCKING_CALLS:
                return f"{dotted}(...)"
            if func.attr in BLOCKING_ATTRS:
                return f".{func.attr}(...)"
            if func.attr == "acquire" and id(call) not in awaited:
                return f"{dotted or '<expr>.acquire'}(...) without await"
        return None

    # -- reachability --------------------------------------------------
    def blocking_witness(
        self, key: tuple[str, str], _seen: set[tuple[str, str]] | None = None
    ) -> tuple[str, list[str]] | None:
        """(primitive description, call chain) if ``key`` can block.

        Only traverses *sync* functions: an awaited coroutine yields
        the loop, so async callees are the callee's own problem (they
        get their own findings).
        """
        seen = _seen if _seen is not None else set()
        if key in seen:
            return None
        seen.add(key)
        facts = self.functions.get(key)
        if facts is None or facts.is_async:
            return None
        if facts.blocking:
            return facts.blocking[0][1], [key[1]]
        for callee, _node in facts.calls:
            deeper = self.blocking_witness(callee, seen)
            if deeper is not None:
                desc, chain = deeper
                return desc, [key[1], *chain]
        return None


class AsyncBlockingCalls(Rule):
    id = "REP006"
    title = "no blocking calls reachable from async def bodies in repro.serve"
    hint = (
        "hop off the loop first: await asyncio.to_thread(...) for file/"
        "CPU work, asyncio.sleep for delays, create_subprocess_exec for "
        "processes — one blocked callback stalls every request in the "
        "house (verify at runtime with REPRO_LOOP_CHECK=1)"
    )
    project = True

    #: Only the serving layer runs an event loop.
    PACKAGES = frozenset({"serve"})

    def check_project(
        self, modules: list[ModuleInfo], index: ProjectIndex, root: object
    ) -> Iterator[Finding]:
        targets = [m for m in modules if m.package in self.PACKAGES]
        if not targets:
            return
        graph = _CallGraph(modules, index)
        for mod in targets:
            for qualname, cls, fn in _iter_qualified_functions(mod):
                if not isinstance(fn, ast.AsyncFunctionDef):
                    continue
                local_imports = _function_local_imports(fn)
                awaited = _awaited_values(fn)
                for node in _own_nodes(fn):
                    if not isinstance(node, ast.Call):
                        continue
                    desc = graph._blocking_desc(node, mod, local_imports, awaited)
                    if desc is not None:
                        yield mod.finding(
                            self, node,
                            f"async `{qualname}` calls blocking {desc} on "
                            "the event loop",
                        )
                        continue
                    callee = graph.resolve_call(mod, node, cls, local_imports)
                    if callee is None:
                        continue
                    witness = graph.blocking_witness(callee)
                    if witness is not None:
                        desc, chain = witness
                        yield mod.finding(
                            self, node,
                            f"async `{qualname}` calls `{callee[1]}`, which "
                            f"reaches blocking {desc} "
                            f"(via {' -> '.join(chain)})",
                        )


# ----------------------------------------------------------------------
# REP007 — fire-and-forget task/timer handles
# ----------------------------------------------------------------------

class FireAndForgetHandles(Rule):
    id = "REP007"
    title = "task/timer handles must be stored, awaited, or returned"
    hint = (
        "keep the handle (self._tasks.add(task) + done-callback discard, "
        "or self._timers[k] = ...) so shutdown can cancel it and its "
        "exception has somewhere to go"
    )

    SPAWN_FNS = frozenset(
        {"create_task", "ensure_future", "call_later", "call_at"}
    )

    def check(self, mod: ModuleInfo, index: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            func = node.value.func
            name = None
            if isinstance(func, ast.Attribute) and func.attr in self.SPAWN_FNS:
                name = func.attr
            elif isinstance(func, ast.Name) and func.id in self.SPAWN_FNS:
                name = func.id
            if name is not None:
                yield mod.finding(
                    self, node,
                    f"`{name}(...)` handle is dropped — the task/timer "
                    "cannot be cancelled on shutdown and its exception is "
                    "swallowed",
                )


# ----------------------------------------------------------------------
# REP008 — wire-protocol conformance
# ----------------------------------------------------------------------

def _tuple_of_strings(
    node: ast.AST, consts: dict[str, str]
) -> list[str] | None:
    """Elements of a tuple/list of string constants (or named constants)."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: list[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            out.append(elt.value)
        elif isinstance(elt, ast.Name) and elt.id in consts:
            out.append(consts[elt.id])
        else:
            return None
    return out


class WireProtocolConformance(Rule):
    id = "REP008"
    title = "frontend/shard/client dispatch must match the protocol op tables"
    hint = (
        "serve/protocol.py owns the vocabulary: add the op to "
        "FRONTEND_OPS/SHARD_OPS (and a handler on every peer) instead of "
        "growing a dispatch table unilaterally"
    )
    project = True

    def _module(
        self, modules: list[ModuleInfo], suffix: str
    ) -> ModuleInfo | None:
        for mod in modules:
            if mod.module == f"repro.serve.{suffix}":
                return mod
        return None

    # -- extraction ----------------------------------------------------
    def _handled_ops(self, mod: ModuleInfo) -> list[tuple[str, ast.AST]]:
        """Ops an ``op == "..."``-style dispatch chain handles."""
        out: list[tuple[str, ast.AST]] = []
        for node in ast.walk(mod.tree):
            if not (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and isinstance(node.ops[0], ast.Eq)
                and len(node.comparators) == 1
            ):
                continue
            right = node.comparators[0]
            if not (isinstance(right, ast.Constant) and isinstance(right.value, str)):
                continue
            left = node.left
            is_op = (isinstance(left, ast.Name) and left.id == "op") or (
                isinstance(left, ast.Call)
                and isinstance(left.func, ast.Attribute)
                and left.func.attr == "get"
                and left.args
                and isinstance(left.args[0], ast.Constant)
                and left.args[0].value == "op"
            )
            if is_op:
                out.append((right.value, node))
        return out

    def _sent_ops(self, mod: ModuleInfo) -> list[tuple[str, ast.AST]]:
        """Op literals in request frames built as ``{"op": "...", ...}``."""
        out: list[tuple[str, ast.AST]] = []
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "op"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    out.append((value.value, node))
        return out

    def _client_ops(self, mod: ModuleInfo) -> list[tuple[str, ast.AST]]:
        """Literal first arguments of ``self.send(...)`` / ``self.call(...)``."""
        out: list[tuple[str, ast.AST]] = []
        for node in ast.walk(mod.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("send", "call")
                and node.args
            ):
                continue
            arg0 = node.args[0]
            if isinstance(arg0, ast.Constant) and isinstance(arg0.value, str):
                out.append((arg0.value, node))
        return out

    def _protocol_tables(
        self, proto: ModuleInfo, index: ProjectIndex
    ) -> tuple[dict[str, list[str]], dict[str, ast.AST], dict[str, str]]:
        consts = index.str_constants.get(proto.module, {})
        tables: dict[str, list[str]] = {}
        anchors: dict[str, ast.AST] = {}
        for stmt in proto.tree.body:
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name):
                continue
            if target.id in ("FRONTEND_OPS", "SHARD_OPS"):
                elems = _tuple_of_strings(value, consts)
                if elems is not None:
                    tables[target.id] = elems
                    anchors[target.id] = stmt
            elif target.id == "ERROR_TYPES" and isinstance(value, ast.Dict):
                keys: list[str] = []
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.append(key.value)
                    elif isinstance(key, ast.Name) and key.id in consts:
                        keys.append(consts[key.id])
                tables["ERROR_TYPES"] = keys
                anchors["ERROR_TYPES"] = stmt
            elif target.id == "_EXCEPTION_TYPES" and isinstance(
                value, (ast.Tuple, ast.List)
            ):
                names: list[str] = []
                for elt in value.elts:
                    if isinstance(elt, ast.Tuple) and len(elt.elts) == 2:
                        second = elt.elts[1]
                        if isinstance(second, ast.Constant) and isinstance(
                            second.value, str
                        ):
                            names.append(second.value)
                        elif isinstance(second, ast.Name) and second.id in consts:
                            names.append(consts[second.id])
                tables["_EXCEPTION_TYPES"] = names
                anchors["_EXCEPTION_TYPES"] = stmt
        return tables, anchors, consts

    # -- the check -----------------------------------------------------
    def check_project(
        self, modules: list[ModuleInfo], index: ProjectIndex, root: object
    ) -> Iterator[Finding]:
        proto = self._module(modules, "protocol")
        if proto is None:
            return
        tables, anchors, consts = self._protocol_tables(proto, index)
        ready_op = consts.get("OP_READY")

        missing = [t for t in ("FRONTEND_OPS", "SHARD_OPS") if t not in tables]
        if missing:
            yield proto.finding(
                self, proto.tree.body[0] if proto.tree.body else proto.tree,
                f"protocol module defines no {'/'.join(missing)} op table — "
                "the dispatch vocabulary has no source of truth",
            )
            return

        frontend_ops = set(tables["FRONTEND_OPS"])
        shard_ops = set(tables["SHARD_OPS"])

        # error vocabulary self-consistency
        error_types = set(tables.get("ERROR_TYPES", []))
        for name in tables.get("_EXCEPTION_TYPES", []):
            if error_types and name not in error_types:
                yield proto.finding(
                    self, anchors["_EXCEPTION_TYPES"],
                    f"_EXCEPTION_TYPES maps to error type {name!r} that is "
                    "not in ERROR_TYPES — servers would emit a frame the "
                    "client cannot rehydrate",
                )

        frontend = self._module(modules, "frontend")
        if frontend is not None:
            handled = self._handled_ops(frontend)
            for op, node in handled:
                if op not in frontend_ops:
                    yield frontend.finding(
                        self, node,
                        f"frontend dispatches op {op!r} that is missing from "
                        "protocol.FRONTEND_OPS",
                    )
            handled_set = {op for op, _ in handled}
            for op in sorted(frontend_ops - handled_set):
                yield proto.finding(
                    self, anchors["FRONTEND_OPS"],
                    f"FRONTEND_OPS declares op {op!r} but the frontend "
                    "dispatch table never handles it",
                )
            for op, node in self._sent_ops(frontend):
                if op not in shard_ops and op != ready_op:
                    yield frontend.finding(
                        self, node,
                        f"frontend sends shard op {op!r} that is missing "
                        "from protocol.SHARD_OPS",
                    )

        shard = self._module(modules, "shard")
        if shard is not None:
            handled = self._handled_ops(shard)
            for op, node in handled:
                if op not in shard_ops:
                    yield shard.finding(
                        self, node,
                        f"shard handles op {op!r} that is missing from "
                        "protocol.SHARD_OPS",
                    )
            handled_set = {op for op, _ in handled}
            for op in sorted(shard_ops - handled_set):
                yield proto.finding(
                    self, anchors["SHARD_OPS"],
                    f"SHARD_OPS declares op {op!r} but the shard worker "
                    "never handles it",
                )
            for op, node in self._sent_ops(shard):
                if op != ready_op and op not in shard_ops:
                    yield shard.finding(
                        self, node,
                        f"shard emits frame op {op!r} that is neither "
                        "OP_READY nor in protocol.SHARD_OPS",
                    )

        client = self._module(modules, "client")
        if client is not None:
            for op, node in self._client_ops(client):
                if op not in frontend_ops:
                    yield client.finding(
                        self, node,
                        f"client sends op {op!r} that is missing from "
                        "protocol.FRONTEND_OPS — the frontend would answer "
                        "with a protocol error",
                    )

        # typed errors constructed anywhere in serve must use known types
        for mod in modules:
            if mod.package != "serve" or not error_types:
                continue
            for node in ast.walk(mod.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "error_response"
                    and len(node.args) >= 2
                ):
                    continue
                arg = node.args[1]
                value = None
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    value = arg.value
                elif isinstance(arg, ast.Name):
                    value = index.resolve_str(mod, arg.id)
                if value is not None and value not in error_types:
                    yield mod.finding(
                        self, node,
                        f"error_response built with type {value!r} outside "
                        "protocol.ERROR_TYPES",
                    )


# ----------------------------------------------------------------------
# REP009 — metric names vs the docs catalogue and the exporter grammar
# ----------------------------------------------------------------------

#: The registry's name grammar (kept in sync with
#: ``repro.obs.metrics._NAME_RE`` — the exporter rejects anything else).
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Catalogue table rows: ``| `repro.x.y` / `.z` | kind | unit | module |``.
_ROW_RE = re.compile(r"^\|(?P<names>[^|]*)\|(?P<rest>.*)\|\s*$")
_BACKTICK_RE = re.compile(r"`([^`]+)`")


def parse_metric_catalogue(text: str) -> list[tuple[str, int, str, str]]:
    """(metric name, 1-based line, emitting module cell, row text).

    Only rows between the ``### Metric names`` heading and the next
    heading count; ``/``-joined alternation cells expand each ``.sfx``
    entry by replacing the last components of the row's first full name.
    """
    out: list[tuple[str, int, str, str]] = []
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("### "):
            in_section = line.strip() == "### Metric names"
            continue
        if not in_section:
            continue
        m = _ROW_RE.match(line.strip())
        if not m:
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        names_cell = cells[0]
        module_cell = cells[3] if len(cells) >= 4 else ""
        tokens = _BACKTICK_RE.findall(names_cell)
        base: str | None = None
        for token in tokens:
            token = token.strip()
            if token.startswith("repro."):
                base = token
                out.append((token, lineno, module_cell, line.strip()))
            elif token.startswith(".") and base is not None:
                suffix = token[1:].split(".")
                expanded = base.split(".")[: -len(suffix)] + suffix
                out.append((".".join(expanded), lineno, module_cell, line.strip()))
    return out


class MetricCatalogueConformance(Rule):
    id = "REP009"
    title = "emitted metric names and the docs catalogue must agree"
    hint = (
        "add the metric to the docs/architecture.md catalogue table "
        "(name, kind, unit, emitting module) — or delete the dead row; "
        "names must match the registry grammar ^[a-z][a-z0-9_]*(\\.\\w+)+$"
    )
    project = True

    METRIC_FNS = frozenset({"inc", "set_gauge", "set_gauge_max", "observe"})
    METRIC_RECEIVERS = frozenset({"metrics", "repro.obs.metrics", "obs.metrics"})
    CATALOGUE = Path("docs") / "architecture.md"

    def _emitted(
        self, modules: list[ModuleInfo], index: ProjectIndex
    ) -> list[tuple[str, ModuleInfo, ast.AST]]:
        out: list[tuple[str, ModuleInfo, ast.AST]] = []
        for mod in modules:
            if not mod.module.startswith("repro."):
                continue
            if mod.package in ("obs", "analysis"):
                continue  # registry/linter internals take names as params
            for node in ast.walk(mod.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.METRIC_FNS
                    and _dotted(node.func.value) in self.METRIC_RECEIVERS
                    and node.args
                ):
                    continue
                arg0 = node.args[0]
                name: str | None = None
                if isinstance(arg0, ast.Constant) and isinstance(arg0.value, str):
                    name = arg0.value
                elif isinstance(arg0, ast.Name):
                    name = index.resolve_str(mod, arg0.id)
                if name is not None and name.startswith("repro."):
                    out.append((name, mod, node))
        return out

    def _mentioned(self, modules: list[ModuleInfo]) -> set[str]:
        """Every ``repro.*`` string literal in the tree (any position).

        Dynamic emit sites (pragma'd ``set_gauge(name, v)`` loops) keep
        their names in dict/constant literals — a catalogued name that
        appears *nowhere* as a literal is genuinely dead.
        """
        out: set[str] = set()
        for mod in modules:
            for node in ast.walk(mod.tree):
                if (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node.value.startswith("repro.")
                    and METRIC_NAME_RE.match(node.value)
                ):
                    out.add(node.value)
        return out

    def check_project(
        self, modules: list[ModuleInfo], index: ProjectIndex, root: object
    ) -> Iterator[Finding]:
        root_path = Path(str(root)) if root is not None else Path.cwd()
        catalogue_path = root_path / self.CATALOGUE
        if not catalogue_path.exists():
            return
        emitted = self._emitted(modules, index)
        if not emitted:
            return
        rows = parse_metric_catalogue(
            catalogue_path.read_text(encoding="utf-8")
        )
        documented = {name for name, _, _, _ in rows}
        rel_doc = self.CATALOGUE.as_posix()
        linted = {m.module for m in modules}

        for name, mod, node in emitted:
            if not METRIC_NAME_RE.match(name):
                yield mod.finding(
                    self, node,
                    f"metric name {name!r} violates the registry grammar — "
                    "the exporter would refuse it",
                )
            elif name not in documented:
                yield mod.finding(
                    self, node,
                    f"metric {name!r} is emitted but missing from the "
                    f"{rel_doc} catalogue",
                )

        mentioned = self._mentioned(modules)
        for name, lineno, module_cell, row in rows:
            if not METRIC_NAME_RE.match(name):
                yield Finding(
                    rule=self.id, path=rel_doc, line=lineno, col=1,
                    message=f"catalogued metric name {name!r} violates the "
                    "registry grammar",
                    hint=self.hint, snippet=row,
                )
                continue
            # Only judge a row dead when its emitting module is part of
            # this lint run (partial runs must not flag the whole docs).
            tokens = _BACKTICK_RE.findall(module_cell) or [name.split(".")[1]]
            prefix = tokens[0].replace(".*", "").strip()
            if not any(
                m == f"repro.{prefix}" or m.startswith(f"repro.{prefix}.")
                for m in linted
            ):
                continue
            if name not in mentioned:
                yield Finding(
                    rule=self.id, path=rel_doc, line=lineno, col=1,
                    message=f"catalogued metric {name!r} is emitted nowhere "
                    "in the linted tree (dead docs row)",
                    hint=self.hint, snippet=row,
                )


# ----------------------------------------------------------------------
# REP010 — store section names vs the format constant table
# ----------------------------------------------------------------------

#: Shape of a section name: ``graph.*`` / ``index.*`` / ``serve.*``.
SECTION_RE = re.compile(r"^(graph|index|serve)\.[a-z_][a-z0-9_.]*$")


class StoreSectionNames(Rule):
    id = "REP010"
    title = "store section names must come from the format.py constant table"
    hint = (
        "add the section to REQUIRED_SECTIONS / COMPONENT_SECTIONS (or a "
        "named *_SECTION constant) in store/format.py and bump "
        "STORE_FORMAT_VERSION if the layout changed — ad-hoc section "
        "strings drift the on-disk format silently"
    )
    project = True

    def _known_sections(self, fmt: ModuleInfo) -> set[str]:
        known: set[str] = set()
        for stmt in fmt.tree.body:
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id.endswith("_SECTIONS"):
                elems = _tuple_of_strings(value, {})
                if elems:
                    known.update(elems)
            elif target.id.endswith("_SECTION"):
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    known.add(value.value)
        return known

    def _docstrings(self, tree: ast.Module) -> set[int]:
        """ids of Constant nodes sitting in docstring position."""
        out: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                body = node.body
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    out.add(id(body[0].value))
        return out

    def check_project(
        self, modules: list[ModuleInfo], index: ProjectIndex, root: object
    ) -> Iterator[Finding]:
        fmt = next(
            (m for m in modules if m.module == "repro.store.format"), None
        )
        if fmt is None:
            return
        known = self._known_sections(fmt)
        if not known:
            return
        for mod in modules:
            if mod.package != "store" or mod is fmt:
                continue
            docstrings = self._docstrings(mod.tree)
            for node in ast.walk(mod.tree):
                if not (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and SECTION_RE.match(node.value)
                ):
                    continue
                if id(node) in docstrings:
                    continue
                if node.value not in known:
                    yield mod.finding(
                        self, node,
                        f"section name {node.value!r} is not in the "
                        "store/format.py constant table",
                    )
