"""AST contract-linter engine: file discovery, project index, baseline.

The kernel layer's correctness under the process backend rests on
conventions no general-purpose linter knows about — workers must be
picklable module-level functions, shared-memory kernels must stay free
of cross-process atomics, every kernel entry point must thread the one
``ExecutionContext``, span/metric names must be greppable literals, and
``u·N + v`` key arithmetic must be overflow-guarded. This module is the
machinery that makes those conventions machine-checked:

* :class:`ModuleInfo` — one parsed source file plus its suppression
  pragmas (``# repro: allow(REPnnn)`` on the offending line).
* :class:`ProjectIndex` — the cross-module facts rules need: which
  functions accept ``ctx``, which functions are process-pool workers,
  which module-level names are string constants, and each module's
  import aliases.
* :func:`run_lint` — discover, index, run every rule, drop suppressed
  findings.
* :class:`Baseline` — grandfathering with zero tolerance for *new*
  findings: entries match by a line-move-tolerant fingerprint
  (path + rule + stripped source line), and each entry carries a note
  explaining why it is allowed to stay.

Rules themselves live in :mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: ``# repro: allow(REP001)`` or ``# repro: allow(REP001, REP004)``.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\(\s*(REP\d{3}(?:\s*,\s*REP\d{3})*)\s*\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    hint: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-move-tolerant identity used for baseline matching."""
        basis = f"{self.path}::{self.rule}::{self.snippet}"
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:12]

    def format(self) -> str:
        out = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleInfo:
    """A parsed source module plus the metadata rules consume."""

    path: Path
    rel: str
    module: str  # dotted name, e.g. ``repro.truss.decompose``
    lines: list[str]
    tree: ast.Module
    suppressed: dict[int, set[str]]  # line number -> allowed rule ids

    @property
    def package(self) -> str:
        """First sub-package under ``repro`` ('' for top-level modules)."""
        parts = self.module.split(".")
        if len(parts) >= 3 and parts[0] == "repro":
            return parts[1]
        return ""

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: "object", node: ast.AST, message: str, hint: str | None = None
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,  # type: ignore[attr-defined]
            path=self.rel,
            line=line,
            col=col + 1,
            message=message,
            hint=hint if hint is not None else rule.hint,  # type: ignore[attr-defined]
            snippet=self.snippet(line),
        )


@dataclass(frozen=True)
class CtxCallable:
    """A function/constructor that accepts a ``ctx`` parameter."""

    module: str
    name: str
    ctx_pos: int  # positional index of ctx (excluding self), -1 if kw-only


@dataclass
class ProjectIndex:
    """Cross-module facts shared by every rule."""

    #: (module, name) -> ctx-aware callable info.
    ctx_aware: dict[tuple[str, str], CtxCallable] = field(default_factory=dict)
    #: (module, function name) pairs dispatched through ``map_tasks``.
    worker_fns: set[tuple[str, str]] = field(default_factory=set)
    #: module -> {name: literal str} for module-level string constants.
    str_constants: dict[str, dict[str, str]] = field(default_factory=dict)
    #: module -> {local alias: (source module, original name)}.
    imports: dict[str, dict[str, tuple[str, str]]] = field(default_factory=dict)

    def resolve(self, mod: ModuleInfo, name: str) -> tuple[str, str]:
        """Resolve a local name to its defining ``(module, name)``."""
        target = self.imports.get(mod.module, {}).get(name)
        return target if target is not None else (mod.module, name)

    def resolve_str(self, mod: ModuleInfo, name: str) -> str | None:
        module, orig = self.resolve(mod, name)
        return self.str_constants.get(module, {}).get(orig)

    def ctx_callable(self, mod: ModuleInfo, name: str) -> CtxCallable | None:
        return self.ctx_aware.get(self.resolve(mod, name))


def _ctx_param_pos(fn: ast.FunctionDef | ast.AsyncFunctionDef, skip_self: bool) -> int | None:
    """Positional index of a ``ctx`` parameter; -1 if keyword-only; None if absent."""
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if skip_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    if "ctx" in names:
        return names.index("ctx")
    if any(a.arg == "ctx" for a in args.kwonlyargs):
        return -1
    return None


def _index_module(mod: ModuleInfo, index: ProjectIndex) -> None:
    consts: dict[str, str] = {}
    imports: dict[str, tuple[str, str]] = {}
    for stmt in mod.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pos = _ctx_param_pos(stmt, skip_self=False)
            if pos is not None:
                index.ctx_aware[(mod.module, stmt.name)] = CtxCallable(
                    mod.module, stmt.name, pos
                )
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                    pos = _ctx_param_pos(item, skip_self=True)
                    if pos is not None:
                        index.ctx_aware[(mod.module, stmt.name)] = CtxCallable(
                            mod.module, stmt.name, pos
                        )
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                consts[target.id] = stmt.value.value
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
            for alias in stmt.names:
                imports[alias.asname or alias.name] = (stmt.module, alias.name)
    index.str_constants[mod.module] = consts
    index.imports[mod.module] = imports

    # Worker functions: first positional argument of any ``*.map_tasks(...)``
    # call, resolved through this module's imports, plus the ``_w_*`` naming
    # convention for module-level worker kernels.
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name.startswith("_w_"):
            index.worker_fns.add((mod.module, stmt.name))
    for node in ast.walk(mod.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "map_tasks"
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            index.worker_fns.add(index.resolve(mod, node.args[0].id))


# ----------------------------------------------------------------------
# Discovery and loading
# ----------------------------------------------------------------------

def discover_files(paths: Sequence[Path]) -> list[Path]:
    """All ``.py`` files under the given paths (sorted, deduplicated)."""
    out: set[Path] = set()
    for p in paths:
        p = p.resolve()
        if p.is_dir():
            out.update(
                f for f in p.rglob("*.py") if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name, anchored at the ``repro`` package when present."""
    try:
        rel_parts = path.relative_to(root).with_suffix("").parts
    except ValueError:
        rel_parts = path.with_suffix("").parts
    parts = list(rel_parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def load_module(path: Path, root: Path) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    suppressed: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        m = PRAGMA_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            suppressed.setdefault(lineno, set()).update(rules)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return ModuleInfo(
        path=path,
        rel=rel,
        module=_module_name(path, root),
        lines=lines,
        tree=tree,
        suppressed=suppressed,
    )


def find_repo_root(start: Path | None = None) -> Path:
    """Nearest ancestor holding ``pyproject.toml`` (else the start dir)."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return here


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------

def run_lint(
    paths: Sequence[Path],
    rules: Iterable[object] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run the contract rules over every module under ``paths``.

    Returns the surviving findings (suppression pragmas already applied),
    sorted by (path, line, rule).
    """
    from repro.analysis.rules import default_rules

    active = list(rules) if rules is not None else default_rules()
    root = root if root is not None else find_repo_root()
    modules = [load_module(f, root) for f in discover_files(paths)]
    index = ProjectIndex()
    for mod in modules:
        _index_module(mod, index)
    findings: list[Finding] = []
    for mod in modules:
        for rule in active:
            if getattr(rule, "project", False):
                continue  # project rules run once, below
            for finding in rule.check(mod, index):
                if finding.rule in mod.suppressed.get(finding.line, set()):
                    continue
                findings.append(finding)
    # Project rules see every module at once (cross-module conformance:
    # dispatch tables vs the protocol module, metric names vs the docs
    # catalogue, section names vs the store format table).
    by_rel = {mod.rel: mod for mod in modules}
    for rule in active:
        if not getattr(rule, "project", False):
            continue
        for finding in rule.check_project(modules, index, root):
            anchor = by_rel.get(finding.path)
            if anchor is not None and finding.rule in anchor.suppressed.get(
                finding.line, set()
            ):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return findings


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

DEFAULT_BASELINE_NAME = "analysis-baseline.json"


@dataclass
class Baseline:
    """Grandfathered findings: fingerprints plus a human note per entry."""

    entries: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        doc = json.loads(path.read_text(encoding="utf-8"))
        entries = {e["fingerprint"]: e for e in doc.get("findings", [])}
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding], note: str = "") -> "Baseline":
        entries: dict[str, dict[str, str]] = {}
        for f in findings:
            entries[f.fingerprint] = {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet,
                "note": note,
            }
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        doc = {
            "version": 1,
            "comment": (
                "Grandfathered repro.analysis findings. New findings are "
                "always errors; entries here must carry a note explaining "
                "why they cannot be fixed."
            ),
            "findings": sorted(
                self.entries.values(), key=lambda e: (e["path"], e["rule"])
            ),
        }
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    def split(self, findings: Sequence[Finding]) -> tuple[list[Finding], list[str]]:
        """(new findings not in the baseline, stale baseline fingerprints).

        Exact fingerprints (path + rule + snippet) are line-move
        tolerant but not rename tolerant. A second, one-to-one matching
        pass pairs each remaining new finding against a stale entry
        with the same ``(rule, snippet)`` content, so moving a
        grandfathered violation to a renamed file neither fails the run
        nor leaves a stale entry behind — while a *duplicated*
        violation (two copies, one baseline entry) still fails.
        """
        seen = {f.fingerprint for f in findings}
        new = [f for f in findings if f.fingerprint not in self.entries]
        stale_fps = {fp for fp in self.entries if fp not in seen}
        if new and stale_fps:
            by_content: dict[tuple[str, str], list[str]] = {}
            for fp in stale_fps:
                e = self.entries[fp]
                key = (str(e.get("rule", "")), str(e.get("snippet", "")))
                by_content.setdefault(key, []).append(fp)
            still_new: list[Finding] = []
            for f in new:
                bucket = by_content.get((f.rule, f.snippet))
                if bucket:
                    stale_fps.discard(bucket.pop(0))
                else:
                    still_new.append(f)
            new = still_new
        stale = [fp for fp in self.entries if fp in stale_fps]
        return new, stale


def iter_rule_docs() -> Iterator[tuple[str, str, str]]:
    """(id, title, hint) for every registered rule, in id order."""
    from repro.analysis.rules import default_rules

    for rule in default_rules():
        yield rule.id, rule.title, rule.hint
