"""``python -m repro.analysis`` — run the kernel-contract linter.

Exit codes: 0 clean (or every finding grandfathered), 1 new findings,
2 usage error. ``repro lint`` (the CLI subcommand) is a thin alias.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    find_repo_root,
    iter_rule_docs,
    run_lint,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST contract linter for the repro kernel and serving "
        "layers (REP001-REP010)",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src/repro under the "
        "repo root)",
    )
    parser.add_argument(
        "--baseline", nargs="?", const=DEFAULT_BASELINE_NAME, default=None,
        metavar="PATH",
        help="compare against a baseline file; only findings absent from "
        f"it fail the run (default path: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", nargs="?", const=DEFAULT_BASELINE_NAME,
        default=None, metavar="PATH",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rules", default=None, metavar="REP001,REP003",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="finding output format (sarif: SARIF 2.1.0 for code-scanning "
        "upload)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its contract and exit",
    )
    return parser


def _select_rules(spec: str | None):
    """Rules matching a ``--rules`` spec; ValueError on a bad spec."""
    from repro.analysis.rules import default_rules

    rules = default_rules()
    if spec is None:
        return rules
    valid = ", ".join(r.id for r in rules)
    wanted = {r.strip().upper() for r in spec.split(",") if r.strip()}
    if not wanted:
        raise ValueError(f"--rules selected no rules; valid ids: {valid}")
    unknown = wanted - {r.id for r in rules}
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"valid ids: {valid}"
        )
    return [r for r in rules if r.id in wanted]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, title, hint in iter_rule_docs():
            print(f"{rule_id}  {title}")
            print(f"        fix: {hint}")
        return 0

    try:
        rules = _select_rules(args.rules)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    root = find_repo_root()
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        default = root / "src" / "repro"
        if not default.exists():
            print(
                "no paths given and no src/repro under the repo root; "
                "pass explicit paths",
                file=sys.stderr,
            )
            return 2
        paths = [default]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    try:
        findings = run_lint(paths, rules=rules, root=root)
    except SyntaxError as exc:
        print(f"syntax error while parsing: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        path = Path(args.write_baseline)
        if not path.is_absolute():
            path = root / path
        Baseline.from_findings(
            findings, note="grandfathered at baseline creation"
        ).save(path)
        print(f"wrote baseline with {len(findings)} finding(s) -> {path}")
        return 0

    new = findings
    stale: list[str] = []
    if args.baseline is not None:
        bpath = Path(args.baseline)
        if not bpath.is_absolute():
            bpath = root / bpath
        baseline = Baseline.load(bpath)
        new, stale = baseline.split(findings)

    if args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        docs = [(r.id, r.title, r.hint) for r in rules]
        print(json.dumps(render_sarif(new, docs), indent=2))
    elif args.format == "json":
        print(json.dumps(
            {
                "findings": [f.to_json() for f in new],
                "grandfathered": len(findings) - len(new),
                "stale_baseline_entries": stale,
            },
            indent=2,
        ))
    else:
        for f in new:
            print(f.format())
        for fp in stale:
            print(
                f"note: baseline entry {fp} no longer matches any finding "
                "(consider rewriting the baseline)",
                file=sys.stderr,
            )
        grandfathered = len(findings) - len(new)
        status = "clean" if not new else f"{len(new)} new finding(s)"
        extra = f", {grandfathered} grandfathered" if grandfathered else ""
        print(f"repro.analysis: {status}{extra}")
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
