"""Event-loop stall detector: the runtime counterpart of rule REP006.

The REP006 lint rule proves *statically* that no blocking call is
reachable from an ``async def`` body in the serving layer; this module
proves the premise *dynamically*, the same way the write-set race
detector (:mod:`repro.analysis.races`) backs REP001/REP002. Opt in via
the environment before the frontend starts:

* ``REPRO_LOOP_CHECK=1`` — record stalls: every event-loop callback is
  individually timed (by wrapping :meth:`asyncio.events.Handle._run`),
  and any callback exceeding the threshold is recorded with its
  duration, a description of the callback, and the most recent stack
  sample captured from the loop thread while it ran.
* ``REPRO_LOOP_CHECK=strict`` — additionally raise
  :class:`~repro.errors.LoopStallError` when the watchdog is torn down
  with stalls on record (the hard failure mode tests use).
* ``REPRO_LOOP_THRESHOLD_MS`` — stall threshold in milliseconds
  (default 50).

Timing individual callbacks rather than sampling heartbeat gaps means a
*busy but healthy* loop (thousands of sub-millisecond callbacks back to
back) never trips the detector — only a single callback that actually
holds the loop does.

Every stall is also observed into the
``repro.serve.frontend.loop_stall_ms`` histogram (the frontend passes
the metric name in), so production deployments see stalls in the same
Prometheus exposition as the latency SLOs.

The wrapper is installed process-wide but filters by thread id, so
watchdogs on different loop threads coexist and loops without a
watchdog pay one dict lookup per callback.
"""

from __future__ import annotations

import asyncio.events
import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import LoopStallError
from repro.obs import metrics
from repro.obs.histogram import DEFAULT_MS_BOUNDARIES

LOOP_CHECK_ENV = "REPRO_LOOP_CHECK"
LOOP_THRESHOLD_ENV = "REPRO_LOOP_THRESHOLD_MS"
DEFAULT_THRESHOLD_MS = 50.0

_FALSY = {"", "0", "false", "no", "off"}


def loop_check_enabled() -> bool:
    """Whether ``REPRO_LOOP_CHECK`` asks for the watchdog."""
    return os.environ.get(LOOP_CHECK_ENV, "").strip().lower() not in _FALSY


def loop_check_strict() -> bool:
    """Whether teardown should raise on recorded stalls."""
    return os.environ.get(LOOP_CHECK_ENV, "").strip().lower() == "strict"


def loop_threshold_ms() -> float:
    """Configured stall threshold (``REPRO_LOOP_THRESHOLD_MS``, ms)."""
    raw = os.environ.get(LOOP_THRESHOLD_ENV, "").strip()
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_THRESHOLD_MS
    return value if value > 0 else DEFAULT_THRESHOLD_MS


@dataclass
class LoopStall:
    """One callback that held the event loop past the threshold."""

    callback: str
    elapsed_ms: float
    #: formatted stack sampled from the loop thread mid-callback
    #: ('' when the callback finished between sampler ticks)
    stack: str = ""

    def format(self) -> str:
        out = f"{self.elapsed_ms:.1f} ms in {self.callback}"
        if self.stack:
            out += f"\n{self.stack}"
        return out


# -- the process-wide Handle._run shim ---------------------------------

_orig_handle_run: Callable[[Any], Any] | None = None
_watchers: dict[int, "LoopStallWatchdog"] = {}
_patch_lock = threading.Lock()


def _patched_handle_run(self: Any) -> Any:
    run = _orig_handle_run
    assert run is not None  # only installed while a watchdog is live
    watchdog = _watchers.get(threading.get_ident())
    if watchdog is None:
        return run(self)
    t0 = time.perf_counter()
    try:
        return run(self)
    finally:
        watchdog._record(self, t0, (time.perf_counter() - t0) * 1000.0)


class LoopStallWatchdog:
    """Times every callback of the calling thread's event loop.

    ``install()`` must run on the loop thread being watched (it keys
    the shim by the current thread id); ``uninstall()`` may run from
    any thread. A sampler thread snapshots the loop thread's stack a
    few times per threshold window, so a recorded stall carries the
    stack of whatever was actually blocking.
    """

    def __init__(
        self,
        *,
        threshold_ms: float | None = None,
        strict: bool = False,
        metric: str | None = None,
        max_stalls: int = 256,
    ) -> None:
        self.threshold_ms = (
            threshold_ms if threshold_ms is not None else loop_threshold_ms()
        )
        self.strict = strict
        self.metric = metric
        self.max_stalls = max_stalls
        self.stalls: list[LoopStall] = []
        self._thread_id: int | None = None
        self._sampler: threading.Thread | None = None
        self._stop = threading.Event()
        self._last_sample: tuple[float, str] = (0.0, "")

    # ------------------------------------------------------------------
    def install(self) -> "LoopStallWatchdog":
        """Start watching the *current* thread's loop callbacks."""
        global _orig_handle_run
        self._thread_id = threading.get_ident()
        with _patch_lock:
            if asyncio.events.Handle._run is not _patched_handle_run:
                _orig_handle_run = asyncio.events.Handle._run
                asyncio.events.Handle._run = _patched_handle_run  # type: ignore[method-assign]
            _watchers[self._thread_id] = self
        self._stop.clear()
        self._sampler = threading.Thread(
            target=self._sample_loop, name="repro-loop-stall-sampler", daemon=True
        )
        self._sampler.start()
        return self

    def uninstall(self) -> None:
        self._stop.set()
        if self._sampler is not None:
            self._sampler.join(timeout=5.0)
            self._sampler = None
        with _patch_lock:
            if self._thread_id is not None:
                _watchers.pop(self._thread_id, None)
            # _orig_handle_run stays cached: a callback may still be
            # mid-flight through the shim on another loop thread
            if not _watchers and _orig_handle_run is not None:
                asyncio.events.Handle._run = _orig_handle_run  # type: ignore[method-assign]
        self._thread_id = None

    def check(self) -> None:
        """Raise :class:`LoopStallError` if strict and stalls were seen."""
        if self.strict and self.stalls:
            worst = max(self.stalls, key=lambda s: s.elapsed_ms)
            raise LoopStallError(
                f"event loop stalled {len(self.stalls)} time(s); worst: "
                f"{worst.format()}"
            )

    # ------------------------------------------------------------------
    def _sample_loop(self) -> None:
        """Snapshot the watched thread's stack a few times per window."""
        interval = max(self.threshold_ms / 4000.0, 0.005)
        while not self._stop.wait(interval):
            thread_id = self._thread_id
            if thread_id is None:
                continue
            frame = sys._current_frames().get(thread_id)
            if frame is None:
                continue
            stack = "".join(traceback.format_stack(frame, limit=12))
            self._last_sample = (time.perf_counter(), stack)

    def _record(self, handle, t0: float, elapsed_ms: float) -> None:
        """Called from the shim after every callback on the watched loop."""
        if elapsed_ms < self.threshold_ms:
            return
        if self.metric is not None:
            metrics.observe(
                self.metric, elapsed_ms, boundaries=DEFAULT_MS_BOUNDARIES
            )
        sample_t, stack = self._last_sample
        if not t0 <= sample_t <= time.perf_counter():
            stack = ""  # sample predates this callback
        if len(self.stalls) < self.max_stalls:
            self.stalls.append(
                LoopStall(
                    callback=self._describe(handle),
                    elapsed_ms=elapsed_ms,
                    stack=stack,
                )
            )

    @staticmethod
    def _describe(handle) -> str:
        callback = getattr(handle, "_callback", None)
        if callback is None:
            return repr(handle)
        name = getattr(callback, "__qualname__", None) or repr(callback)
        return f"callback {name}"


def maybe_watchdog(metric: str | None = None) -> LoopStallWatchdog | None:
    """Install a watchdog on the current loop thread if the env asks.

    Returns None (and does nothing) unless ``REPRO_LOOP_CHECK`` is set
    truthy; ``strict`` mode follows :func:`loop_check_strict`.
    """
    if not loop_check_enabled():
        return None
    return LoopStallWatchdog(
        strict=loop_check_strict(), metric=metric
    ).install()
