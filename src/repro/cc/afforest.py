"""Afforest connected components [Sutton, Ben-Nun & Barak, IPDPS'18].

Afforest improves on SV by (1) linking only a few sampled neighbors of
every vertex first, (2) detecting the giant component that emerges from
the samples, and (3) finishing only the vertices *outside* that
component on their full neighbor lists — skipping most of the edge
processing of the largest component. The paper adapts this as its
fastest EquiTruss variant; the generic core here is reused by the
edge-induced version.
"""

from __future__ import annotations

import numpy as np

from repro.cc.core import compress, link_once, minlabel_hook_rounds
from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.utils.rng import resolve_rng
from repro.utils.validation import check_nonnegative


def afforest_on_csr(
    comp: np.ndarray,
    indptr: np.ndarray,
    neighbors: np.ndarray,
    nodes: np.ndarray,
    neighbor_rounds: int = 2,
    sample_size: int = 1024,
    seed: int | np.random.Generator | None = 0,
    ctx: ExecutionContext | None = None,
) -> int:
    """Run Afforest over the subgraph induced by ``nodes``.

    ``comp`` is the global parent array (modified in place); ``indptr``/
    ``neighbors`` describe adjacency for *all* node ids, but only
    ``nodes`` are processed — this is the shape the per-Φ_k edge-graph
    needs. Returns total hooking rounds.
    """
    check_nonnegative("neighbor_rounds", neighbor_rounds)
    if nodes.size == 0:
        return 0
    ctx = ExecutionContext.ensure(ctx)
    rng = resolve_rng(seed)
    deg = indptr[nodes + 1] - indptr[nodes]
    total_rounds = 0

    # Phase 1: opportunistically link the first `neighbor_rounds`
    # neighbors of every node (single pass each — no convergence loop;
    # the finish phase repairs whatever sampling leaves disconnected).
    for r in range(neighbor_rounds):
        has = deg > r
        if not has.any():
            break
        srcs = nodes[has]
        dsts = neighbors[indptr[srcs] + r]
        link_once(comp, srcs, dsts, nodes, ctx=ctx)
        total_rounds += 1

    # Phase 2: identify the dominant component from a sample.
    sample = nodes if nodes.size <= sample_size else rng.choice(nodes, size=sample_size, replace=False)
    labels = comp[sample]
    vals, counts = np.unique(labels, return_counts=True)
    giant = vals[np.argmax(counts)]

    # Phase 3: finish remaining nodes on their full neighbor lists. The
    # link primitive is a no-op for endpoints that already share a root
    # (find is O(1) after compression), so already-settled pairs are
    # filtered immediately — only genuinely unfinished pairs iterate.
    rest = nodes[comp[nodes] != giant]
    if rest.size:
        counts_r = indptr[rest + 1] - indptr[rest]
        total = int(counts_r.sum())
        if total:
            ctx.add_round(total)
            cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts_r)])
            local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts_r)
            pos = np.repeat(indptr[rest], counts_r) + local
            srcs = np.repeat(rest, counts_r)
            dsts = neighbors[pos]
            live = comp[srcs] != comp[dsts]
            total_rounds += 1
            if live.any():
                total_rounds += minlabel_hook_rounds(
                    comp, srcs[live], dsts[live], ctx=ctx
                )
    compress(comp, nodes, ctx=ctx)
    metrics.inc("repro.cc.afforest_rounds", total_rounds)
    metrics.inc("repro.cc.afforest_finish_nodes", int(rest.size))
    return total_rounds


def afforest(
    graph: CSRGraph,
    neighbor_rounds: int = 2,
    ctx: ExecutionContext | None = None,
    seed: int | np.random.Generator | None = 0,
    *,
    policy=None,
) -> np.ndarray:
    """Component label per vertex via Afforest.

    The sampling seed only affects which component is skipped in the
    finish phase, never the resulting partition. ``policy`` is a
    deprecated alias for ``ctx``.
    """
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    comp = np.arange(graph.num_vertices, dtype=np.int64)
    nodes = np.arange(graph.num_vertices, dtype=np.int64)
    with ctx.region("Afforest", work=0, rounds=0, intensity="memory"):
        afforest_on_csr(
            comp,
            graph.indptr,
            graph.indices,
            nodes,
            neighbor_rounds=neighbor_rounds,
            seed=seed,
            ctx=ctx,
        )
    return comp
