"""BFS-based connected components.

Level-synchronous frontier expansion per component. Parallelism shrinks
as component counts grow (the limitation the paper cites for BFS-based
CC [6, 40]); included as the third comparator.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.parallel.context import ExecutionContext


def bfs_components(
    graph: CSRGraph,
    ctx: ExecutionContext | None = None,
    *,
    policy=None,
) -> np.ndarray:
    """Component label per vertex (minimum vertex id in its component)."""
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    n = graph.num_vertices
    comp = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    with ctx.region("BFS-CC", work=0, rounds=0, intensity="memory"):
        for seed in range(n):
            if comp[seed] != -1:
                continue
            comp[seed] = seed
            frontier = np.array([seed], dtype=np.int64)
            while frontier.size:
                ctx.add_round(int(frontier.size))
                counts = indptr[frontier + 1] - indptr[frontier]
                total = int(counts.sum())
                if total == 0:
                    break
                cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
                local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
                nbrs = indices[np.repeat(indptr[frontier], counts) + local]
                nbrs = np.unique(nbrs)
                fresh = nbrs[comp[nbrs] == -1]
                comp[fresh] = seed
                frontier = fresh
    return comp
