"""Shiloach–Vishkin connected components [39] on vertex graphs.

The prior state-of-the-art CC the paper's *Baseline* and *C-Optimal*
EquiTruss variants build on: alternating hooking and shortcut phases,
O(log n) rounds, work-efficient independently of graph diameter.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.cc.core import minlabel_hook_rounds


def shiloach_vishkin(
    graph: CSRGraph,
    ctx: ExecutionContext | None = None,
    *,
    policy=None,
) -> np.ndarray:
    """Component label per vertex (the minimum vertex id of its component).

    Records one ``SV`` region in the context trace; work = edges scanned
    per hooking round, rounds = hooking iterations. ``policy`` is a
    deprecated alias for ``ctx``.
    """
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    comp = np.arange(graph.num_vertices, dtype=np.int64)
    with ctx.region("SV", work=0, rounds=0, intensity="memory"):
        rounds = minlabel_hook_rounds(comp, graph.edges.u, graph.edges.v, ctx=ctx)
    metrics.inc("repro.cc.sv_rounds", rounds)
    return comp
