"""Label-propagation connected components.

The diameter-bound alternative the paper mentions (§3.1): each round
every vertex adopts the minimum label in its closed neighborhood.
Work-efficient per round but needs O(diameter) rounds — included for the
comparative CC benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.parallel.context import ExecutionContext


def label_propagation(
    graph: CSRGraph,
    ctx: ExecutionContext | None = None,
    *,
    policy=None,
) -> np.ndarray:
    """Component label per vertex (minimum vertex id in its component)."""
    ctx = ExecutionContext.ensure(ctx if ctx is not None else policy)
    n = graph.num_vertices
    comp = np.arange(n, dtype=np.int64)
    u, v = graph.edges.u, graph.edges.v
    with ctx.region("LabelProp", work=0, rounds=0, intensity="memory"):
        while True:
            ctx.add_round(2 * u.size)
            new = comp.copy()
            np.minimum.at(new, u, comp[v])
            np.minimum.at(new, v, comp[u])
            if np.array_equal(new, comp):
                break
            comp = new
    return comp
