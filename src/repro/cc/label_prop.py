"""Label-propagation connected components.

The diameter-bound alternative the paper mentions (§3.1): each round
every vertex adopts the minimum label in its closed neighborhood.
Work-efficient per round but needs O(diameter) rounds — included for the
comparative CC benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.parallel.api import ExecutionPolicy


def label_propagation(
    graph: CSRGraph, policy: ExecutionPolicy | None = None
) -> np.ndarray:
    """Component label per vertex (minimum vertex id in its component)."""
    policy = ExecutionPolicy.default(policy)
    n = graph.num_vertices
    comp = np.arange(n, dtype=np.int64)
    u, v = graph.edges.u, graph.edges.v
    with policy.trace.region("LabelProp", work=0, rounds=0, intensity="memory") as handle:
        while True:
            handle.add_round(2 * u.size)
            new = comp.copy()
            np.minimum.at(new, u, comp[v])
            np.minimum.at(new, v, comp[u])
            if np.array_equal(new, comp):
                break
            comp = new
    return comp
