"""Thread-parallel Shiloach–Vishkin with *real* concurrent races.

The paper notes (§3.1) that SV's hooking and shortcut phases "have a
benign race condition that does not affect the correctness". The
vectorized kernels emulate the CRCW writes deterministically; this
module runs the genuine racy version — multiple Python threads hooking
into one shared parent array through emulated atomics, with barriers
between phases — so the benign-race claim is exercised by actual
interleavings (tests run it repeatedly and compare against ground
truth).

Under the GIL this is a correctness vehicle, not a performance one.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.graph.csr import CSRGraph
from repro.parallel.atomics import AtomicArray
from repro.parallel.partition import block_ranges
from repro.utils.validation import check_positive


def shiloach_vishkin_threaded(
    graph: CSRGraph, num_workers: int = 4
) -> np.ndarray:
    """Component label per vertex, computed by racing worker threads."""
    check_positive("num_workers", num_workers)
    n = graph.num_vertices
    comp = AtomicArray(np.arange(n, dtype=np.int64))
    u = graph.edges.u
    v = graph.edges.v
    m = u.size
    ranges = block_ranges(m, num_workers)
    node_ranges = block_ranges(n, num_workers)
    barrier = threading.Barrier(num_workers)
    hooked = [False] * num_workers
    stop = [False]
    values = comp.values  # racy raw reads are part of the algorithm
    errors: list[BaseException] = []

    def worker(tid: int) -> None:
        lo, hi = ranges[tid]
        nlo, nhi = node_ranges[tid]
        try:
            while True:
                hooked[tid] = False
                # ---- hooking phase (racy CAS onto roots) ----
                for i in range(lo, hi):
                    for a, b in ((int(u[i]), int(v[i])), (int(v[i]), int(u[i]))):
                        ca = int(values[a])
                        cb = int(values[b])
                        if ca < cb and int(values[cb]) == cb:
                            if comp.compare_and_swap(cb, cb, ca):
                                hooked[tid] = True
                barrier.wait()
                # ---- shortcut phase (pointer jumping, racy reads OK) ----
                for x in range(nlo, nhi):
                    c = int(values[x])
                    while int(values[c]) != c:
                        c = int(values[c])
                    values[x] = c
                barrier.wait()
                if tid == 0:
                    stop[0] = not any(hooked)
                barrier.wait()
                if stop[0]:
                    return
        except BaseException as exc:  # pragma: no cover - defensive
            errors.append(exc)
            barrier.abort()
            raise

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(num_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    # final full compress (single-threaded) to normalize representatives
    out = values.copy()
    while True:
        nxt = out[out]
        if np.array_equal(nxt, out):
            return out
        out = nxt
