"""Connected components algorithms.

The paper's key observation is that EquiTruss supernode construction *is*
a connected-components problem on the edge-induced graph, so it reuses
parallel CC machinery: Shiloach–Vishkin [39] for the Baseline/C-Optimal
variants and Afforest [43] for the fastest variant. This package holds
the vertex-graph versions (substrate + comparative benchmarks) built on
generic cores (:mod:`repro.cc.core`) that the edge-graph EquiTruss
kernels share.
"""

from repro.cc.core import compress, minlabel_hook_rounds, normalize_labels, pairs_to_csr
from repro.cc.union_find import UnionFind
from repro.cc.shiloach_vishkin import shiloach_vishkin
from repro.cc.afforest import afforest
from repro.cc.label_prop import label_propagation
from repro.cc.bfs import bfs_components
from repro.cc.api import connected_components

__all__ = [
    "UnionFind",
    "afforest",
    "bfs_components",
    "compress",
    "connected_components",
    "label_propagation",
    "minlabel_hook_rounds",
    "normalize_labels",
    "pairs_to_csr",
    "shiloach_vishkin",
]
