"""Generic vectorized cores shared by all CC algorithms.

The CRCW PRAM writes of Shiloach–Vishkin ("benign races" in the paper's
§3.1) are emulated deterministically: concurrent hooking attempts on the
same root become a single priority write via ``np.minimum.at``, which is
one legal serialization of the racy OpenMP execution — the fixpoint (the
partition into components) is identical.

All entry points accept an optional
:class:`~repro.parallel.context.ExecutionContext`: round accounting goes
through ``ctx.add_round`` (targeting whatever region the caller has
open) and the per-round component gathers reuse the context's
:class:`~repro.parallel.context.Workspace` instead of allocating fresh
arrays every hooking round.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.parallel.context import ExecutionContext


def _ensure(ctx) -> ExecutionContext:
    return ExecutionContext.ensure(ctx)


def minlabel_hook_rounds(
    comp: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    ctx: ExecutionContext | None = None,
) -> int:
    """Run SV hooking + shortcut rounds to convergence over pairs (a, b).

    ``comp`` is modified in place; entries not touched by any pair are
    left alone, so a caller may run disjoint node subsets (the Φ_k levels
    of EquiTruss) against one global parent array. Each iteration does
    one hooking pass over all pairs (both directions, min-priority
    writes onto roots) followed by full pointer-jumping — the structure
    of Algorithm 2's hooking/shortcut phases. Returns the number of
    hooking rounds; per-round work is reported through ``ctx``.
    """
    if a.shape != b.shape:
        raise InvalidParameterError("hook pair arrays must have equal shape")
    rounds = 0
    if a.size == 0:
        return rounds
    ctx = _ensure(ctx)
    ws = ctx.workspace
    touched = np.unique(np.concatenate([a, b]))
    while True:
        rounds += 1
        ctx.add_round(2 * a.size)
        ca = ws.gather("cc.ca", comp, a)
        cb = ws.gather("cc.cb", comp, b)
        hook_b = (ca < cb) & (comp[cb] == cb)
        hook_a = (cb < ca) & (comp[ca] == ca)
        changed = bool(hook_b.any() or hook_a.any())
        if hook_b.any():
            np.minimum.at(comp, cb[hook_b], ca[hook_b])
        if hook_a.any():
            np.minimum.at(comp, ca[hook_a], cb[hook_a])
        compress(comp, touched, ctx=ctx)
        if not changed:
            break
    return rounds


def link_once(
    comp: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    nodes: np.ndarray,
    ctx: ExecutionContext | None = None,
) -> None:
    """One opportunistic hooking pass + compress (Afforest's ``link``).

    Unlike :func:`minlabel_hook_rounds` this does *not* iterate to
    convergence — Afforest's sampling phase is best-effort; correctness
    is restored by the finish phase, which processes every node outside
    the dominant component on its full adjacency.
    """
    if a.size == 0:
        return
    ctx = _ensure(ctx)
    ctx.add_round(2 * a.size)
    ws = ctx.workspace
    ca = ws.gather("cc.ca", comp, a)
    cb = ws.gather("cc.cb", comp, b)
    hook_b = (ca < cb) & (comp[cb] == cb)
    hook_a = (cb < ca) & (comp[ca] == ca)
    if hook_b.any():
        np.minimum.at(comp, cb[hook_b], ca[hook_b])
    if hook_a.any():
        np.minimum.at(comp, ca[hook_a], cb[hook_a])
    compress(comp, nodes, ctx=ctx)


def compress(
    comp: np.ndarray,
    nodes: np.ndarray | None = None,
    ctx: ExecutionContext | None = None,
) -> int:
    """Full pointer jumping until every node points at its root.

    Returns the number of jump rounds (the shortcut depth). With a
    context, the per-round ``comp`` gathers reuse workspace buffers.
    """
    rounds = 0
    ws = ctx.workspace if isinstance(ctx, ExecutionContext) else None
    if nodes is None:
        while True:
            nxt = comp[comp]
            if np.array_equal(nxt, comp):
                return rounds
            comp[:] = nxt
            rounds += 1
    while True:
        if ws is not None:
            cur = ws.gather("cc.jump_cur", comp, nodes)
            nxt = ws.gather("cc.jump_nxt", comp, cur)
        else:
            cur = comp[nodes]
            nxt = comp[cur]
        if np.array_equal(nxt, cur):
            return rounds
        comp[nodes] = nxt
        rounds += 1


def pairs_to_csr(num_nodes: int, a: np.ndarray, b: np.ndarray, index_dtype=None):
    """Symmetric CSR adjacency of an undirected pair list.

    Used to give the derived (edge-induced) graphs the neighbor-list
    shape Afforest's sampling needs. Returns ``(indptr, neighbors)``;
    ``index_dtype`` narrows both arrays (it must fit ``2 · |pairs|``).
    """
    if a.shape != b.shape:
        raise InvalidParameterError("pair arrays must have equal shape")
    dt = np.dtype(index_dtype) if index_dtype is not None else np.dtype(np.int64)
    src = np.concatenate([a, b])
    dst = np.concatenate([b, a]).astype(dt, copy=False)
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=dt)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst


def normalize_labels(comp: np.ndarray) -> np.ndarray:
    """Relabel arbitrary component ids to dense 0..C-1 (stable order)."""
    _, dense = np.unique(comp, return_inverse=True)
    return dense.astype(np.int64)
