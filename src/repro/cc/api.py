"""Dispatch front-end for connected components."""

from __future__ import annotations

import numpy as np

from repro.cc.afforest import afforest
from repro.cc.bfs import bfs_components
from repro.cc.core import normalize_labels
from repro.cc.label_prop import label_propagation
from repro.cc.shiloach_vishkin import shiloach_vishkin
from repro.cc.union_find import UnionFind
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.parallel.context import ExecutionContext


def _union_find_cc(graph: CSRGraph, ctx: ExecutionContext | None = None) -> np.ndarray:
    uf = UnionFind(graph.num_vertices)
    for a, b in zip(graph.edges.u.tolist(), graph.edges.v.tolist()):
        uf.union(a, b)
    return uf.labels()


_METHODS = {
    "sv": shiloach_vishkin,
    "afforest": afforest,
    "label_prop": label_propagation,
    "bfs": bfs_components,
    "union_find": _union_find_cc,
}


def connected_components(
    graph: CSRGraph,
    method: str = "afforest",
    ctx: ExecutionContext | None = None,
    normalize: bool = True,
    *,
    policy=None,
) -> np.ndarray:
    """Component labels for every vertex.

    ``method`` ∈ {sv, afforest, label_prop, bfs, union_find}. With
    ``normalize=True`` labels are densified to 0..C-1 so outputs of all
    methods compare equal directly. ``policy`` is a deprecated alias for
    ``ctx``.
    """
    try:
        fn = _METHODS[method]
    except KeyError:
        raise InvalidParameterError(
            f"unknown CC method {method!r}; available: {sorted(_METHODS)}"
        ) from None
    resolved = ExecutionContext.ensure(ctx if ctx is not None else policy)
    comp = fn(graph, ctx=resolved)
    return normalize_labels(comp) if normalize else comp
