"""Serial disjoint-set union (reference implementation)."""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Array-based DSU with path halving and union by minimum label.

    Union by *minimum label* (rather than by rank) matches the hooking
    convention of the parallel algorithms, so component representatives
    agree with SV/Afforest outputs without normalization.
    """

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]  # path halving
            x = int(p[x])
        return x

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of x and y; returns True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        lo, hi = (rx, ry) if rx < ry else (ry, rx)
        self.parent[hi] = lo
        return True

    def same(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def labels(self) -> np.ndarray:
        """Fully compressed representative per element."""
        for i in range(self.parent.size):
            self.find(i)
        return self.parent.copy()
