"""Shard worker: one mmap-attach serving process behind the frontend.

Run as ``python -m repro.serve.shard --store X.eqtsidx --rank R --ranks N``.
The worker :func:`~repro.store.reader.attach_store`\\ s the persistent
index read-only (milliseconds, zero-copy — N workers share one page
cache copy), builds a :class:`~repro.serve.engine.QueryEngine` over it,
and answers newline-delimited JSON batches on stdin/stdout (see
:mod:`repro.serve.protocol`). The frontend owns the routing: this
worker *serves* the vertex partition ``rank`` of
:class:`~repro.distributed.partition.VertexOwnership` but can answer
any vertex of the graph — every shard maps the full index, so
communities that cross partition boundaries need no cross-shard merge.

Startup handshake: the first line the worker writes is a ``ready``
frame carrying its rank, pid, attached generation, and owned vertex
range; the frontend waits for it before admitting traffic.

Staleness: an explicit ``refresh`` op replays journal entries (or
re-attaches after a rebuild swap) via
:meth:`~repro.store.reader.AttachedStore.refresh`; ``--auto-refresh``
additionally checks for pending updates before every batch so readers
track a live writer without frontend involvement.

``--delay-ms`` injects a fixed sleep before each batch answer — a
fault-injection knob the crash tests use to pin requests in flight.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, BinaryIO

from repro.errors import InvalidParameterError, ReproError, WireProtocolError
from repro.obs import metrics
from repro.obs.histogram import DEFAULT_MS_BOUNDARIES
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    check_query_fields,
    decode_frame,
    encode_frame,
    exception_response,
    ok_response,
    serialize_communities,
)


class ShardWorker:
    """The request loop of one shard process (testable in-process)."""

    def __init__(
        self,
        store_path: str,
        rank: int,
        ranks: int,
        *,
        cache_size: int = 1024,
        auto_refresh: bool = False,
        delay_ms: float = 0.0,
        variant: str = "afforest",
    ) -> None:
        from repro.distributed.partition import VertexOwnership
        from repro.store import attach_store

        self.rank = int(rank)
        self.ranks = int(ranks)
        if not 0 <= self.rank < self.ranks:
            raise InvalidParameterError(
                f"shard rank must be in [0, {ranks}), got {rank}"
            )
        self.auto_refresh = auto_refresh
        self.delay_ms = float(delay_ms)
        self.variant = variant
        self.store = attach_store(store_path)
        self.engine = self.store.engine(cache_size=cache_size)
        self.ownership = VertexOwnership(self.store.graph.num_vertices, self.ranks)
        self.batches = 0

    # ------------------------------------------------------------------
    def ready_frame(self) -> dict:
        lo, hi = self.ownership.owned_range(self.rank)
        trussness = self.store.index.trussness
        return {
            "op": "ready",
            "version": PROTOCOL_VERSION,
            "rank": self.rank,
            "ranks": self.ranks,
            "pid": os.getpid(),
            "generation": int(self.store.generation),
            "attach_ms": float(self.store.attach_ms),
            "num_vertices": int(self.store.graph.num_vertices),
            "kmax": int(trussness.max()) if trussness.size else 2,
            "owned": [int(lo), int(hi)],
        }

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _maybe_refresh(self) -> None:
        if self.auto_refresh and (
            self.store.is_stale() or self.store.pending_updates()
        ):
            self.store.refresh(variant=self.variant)

    def handle(self, obj: dict) -> dict:
        """One request frame → one response frame (never raises)."""
        req_id = obj.get("id")
        try:
            op = obj.get("op")
            if op == "batch":
                return self._op_batch(req_id, obj)
            if op == "query":
                vertex, k = check_query_fields(obj)
                self._maybe_refresh()
                communities = self.engine.query(vertex, k, record=False)
                return ok_response(
                    req_id, communities=serialize_communities(communities)
                )
            if op == "refresh":
                report = self.store.refresh(variant=self.variant)
                return ok_response(
                    req_id,
                    applied=report.applied,
                    swapped=report.swapped,
                    generation=report.generation,
                )
            if op == "metrics":
                return ok_response(req_id, state=metrics.get_registry().dump_state())
            if op == "stats":
                return ok_response(req_id, stats=self.stats())
            if op == "ping":
                return ok_response(req_id, pong=True, rank=self.rank)
            raise WireProtocolError(f"unknown shard op {op!r}")
        except ReproError as exc:
            return exception_response(req_id, exc)

    def _op_batch(self, req_id: Any, obj: dict) -> dict:
        k = obj.get("k")
        vertices = obj.get("vertices")
        if not isinstance(k, int) or not isinstance(vertices, list):
            raise WireProtocolError("batch op needs integer 'k' and list 'vertices'")
        if self.delay_ms > 0:
            time.sleep(self.delay_ms / 1000.0)
        self._maybe_refresh()
        t0 = time.perf_counter()
        answers = self.engine.query_many(vertices, k, record=False)
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        self.batches += 1
        metrics.inc("repro.serve.shard.batches")
        metrics.inc("repro.serve.shard.requests", len(vertices))
        metrics.observe(
            "repro.serve.shard.batch_ms", elapsed_ms,
            boundaries=DEFAULT_MS_BOUNDARIES,
        )
        return ok_response(
            req_id,
            results=[serialize_communities(ans) for ans in answers],
            generation=int(self.store.generation),
            elapsed_ms=elapsed_ms,
        )

    def stats(self) -> dict:
        lo, hi = self.ownership.owned_range(self.rank)
        return {
            "rank": self.rank,
            "pid": os.getpid(),
            "generation": int(self.store.generation),
            "batches": self.batches,
            "owned": [int(lo), int(hi)],
            "engine": self.engine.stats(),
        }

    # ------------------------------------------------------------------
    def run(self, inp: BinaryIO, out: BinaryIO) -> int:
        """Serve frames from ``inp`` until EOF; returns an exit code."""
        out.write(encode_frame(self.ready_frame()))
        out.flush()
        for line in inp:
            if not line.strip():
                continue
            try:
                obj = decode_frame(line)
            except WireProtocolError as exc:
                out.write(encode_frame(exception_response(None, exc)))
                out.flush()
                continue
            if obj.get("op") == "shutdown":
                out.write(encode_frame(ok_response(obj.get("id"), stopping=True)))
                out.flush()
                break
            out.write(encode_frame(self.handle(obj)))
            out.flush()
        self.close()
        return 0

    def close(self) -> None:
        self.store.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.shard",
        description="one mmap-attach shard worker of the serving frontend",
    )
    parser.add_argument("--store", required=True, help="persisted .eqtsidx store file")
    parser.add_argument("--rank", type=int, required=True)
    parser.add_argument("--ranks", type=int, required=True)
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--variant", default="afforest",
                        help="variant used for journal-replay refresh")
    parser.add_argument("--auto-refresh", action="store_true",
                        help="check the journal before every batch")
    parser.add_argument("--delay-ms", type=float, default=0.0,
                        help="fault-injection: sleep before each batch answer")
    args = parser.parse_args(argv)
    worker = ShardWorker(
        args.store, args.rank, args.ranks,
        cache_size=args.cache_size, auto_refresh=args.auto_refresh,
        delay_ms=args.delay_ms, variant=args.variant,
    )
    return worker.run(sys.stdin.buffer, sys.stdout.buffer)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
