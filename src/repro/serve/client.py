"""Blocking client for the serving frontend's NDJSON/TCP protocol.

A thin synchronous wrapper used by the load generator, the CLI, and
the test suites. Two usage styles:

* **call/response** — :meth:`ServeClient.query` and friends do one
  round trip and rehydrate typed errors
  (:class:`~repro.errors.BackpressureError`,
  :class:`~repro.errors.ShardUnavailableError`, ...).
* **pipelined** — :meth:`ServeClient.send` many requests without
  waiting, then :meth:`ServeClient.recv` (or
  :meth:`ServeClient.collect`) the responses; they may arrive in any
  order and are correlated by ``id``.
"""

from __future__ import annotations

import socket
from typing import Any, Iterable

from repro.errors import ServeError, WireProtocolError
from repro.serve import protocol


class ServeClient:
    """One TCP connection to a :class:`~repro.serve.frontend.ServingFrontend`."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        self._seq = 0

    # ------------------------------------------------------------------
    # Pipelined primitives
    # ------------------------------------------------------------------
    def send(self, op: str, req_id: Any = None, **fields: Any) -> Any:
        """Send one request frame (no wait); returns its ``id``."""
        if req_id is None:
            self._seq += 1
            req_id = self._seq
        frame = {"id": req_id, "op": op}
        frame.update(fields)
        self._sock.sendall(protocol.encode_frame(frame))
        return req_id

    def recv(self) -> dict:
        """Read one response frame (raises on a closed connection)."""
        line = self._rfile.readline()
        if not line:
            raise ServeError("connection closed by the frontend")
        return protocol.decode_frame(line)

    def collect(self, ids: Iterable[Any]) -> dict[Any, dict]:
        """Receive until every id in ``ids`` has a response; id → frame."""
        want = set(ids)
        got: dict[Any, dict] = {}
        while want:
            resp = self.recv()
            rid = resp.get("id")
            if rid in got:
                raise WireProtocolError(f"duplicate response id {rid!r}")
            got[rid] = resp
            want.discard(rid)
        return got

    def query_pipeline(
        self, requests: Iterable[tuple[int, int]]
    ) -> dict[Any, dict]:
        """Send every ``(vertex, k)`` then gather all responses by id."""
        ids = [self.send("query", vertex=int(v), k=int(k)) for v, k in requests]
        return self.collect(ids)

    # ------------------------------------------------------------------
    # Call/response helpers
    # ------------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> dict:
        """One round trip; raises the typed exception on error responses."""
        rid = self.send(op, **fields)
        resp = self.recv()
        if resp.get("id") != rid:
            raise WireProtocolError(
                f"response id {resp.get('id')!r} does not match request {rid!r} "
                f"(pipelined requests must use send/collect)"
            )
        return protocol.raise_for_error(resp)

    def query(self, vertex: int, k: int) -> list[dict]:
        """Communities of ``(vertex, k)`` in the wire shape."""
        return self.call("query", vertex=int(vertex), k=int(k))["communities"]

    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        return self.call("stats")

    def refresh(self) -> list[dict]:
        """Ask every shard to catch up with the journal / a swap."""
        return self.call("refresh")["reports"]

    def metrics_prometheus(self) -> str:
        """The merged frontend+shard registries, text exposition format."""
        return self.call("metrics", format="prometheus")["body"]

    def metrics_json(self) -> dict:
        return self.call("metrics", format="json")["metrics"]

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
