"""Per-level supernode components — the QueryEngine's precompute.

``search_communities`` answers one query with a BFS over the τ ≥ k
restricted supergraph. The reachable sets that BFS discovers are
exactly the connected components of the filtered supernode graph — a
pure function of the index shared by every query at the same k. This
module computes them for *all* levels up front with the ``repro.cc``
hooking machinery, turning each query into component-label lookups.

The sweep is incremental. A superedge is present at level k iff both
endpoints have τ ≥ k, i.e. iff ``min(τ(a), τ(b)) ≥ k``. Processing the
distinct trussness levels in descending order, each superedge is hooked
exactly once — at the highest level that includes it — and the parent
array carries over to every lower level, so the whole precompute is one
union-find sweep over ``index.superedges`` (O(SE α) hooking work plus
one label snapshot per level).
"""

from __future__ import annotations

import numpy as np

from repro.cc.core import compress, minlabel_hook_rounds
from repro.equitruss.index import EquiTrussIndex
from repro.obs import metrics
from repro.parallel.context import ExecutionContext


class LevelComponents:
    """Component labels of the τ ≥ k supernode graph, for every level k.

    ``levels`` holds the distinct supernode trussness values (ascending).
    Because the supernode set {τ ≥ k} is unchanged between consecutive
    levels, a query at any k ≥ 3 resolves against the smallest stored
    level ≥ k (:meth:`resolve_level`); k above ``levels[-1]`` has no
    communities anywhere in the graph.
    """

    __slots__ = ("levels", "_labels")

    def __init__(self, index: EquiTrussIndex, ctx: ExecutionContext | None = None) -> None:
        ctx = ExecutionContext.ensure(ctx)
        sn_k = index.supernode_trussness
        self.levels: np.ndarray = np.unique(sn_k)  # all ≥ 3 by construction
        self._labels: dict[int, np.ndarray] = {}
        comp = np.arange(index.num_supernodes, dtype=np.int64)
        se = index.superedges
        if se.shape[0]:
            min_tau = np.minimum(sn_k[se[:, 0]], sn_k[se[:, 1]])
            order = np.argsort(-min_tau, kind="stable")
            sa, sb, min_tau = se[order, 0], se[order, 1], min_tau[order]
        else:
            sa = sb = min_tau = np.empty(0, dtype=np.int64)
        pos = 0
        with ctx.region("PrecomputeComponents", work=int(se.shape[0]), parallel=False):
            for k in self.levels[::-1].tolist():
                end = int(np.searchsorted(-min_tau, -k, side="right"))
                if end > pos:
                    minlabel_hook_rounds(comp, sa[pos:end], sb[pos:end], ctx=ctx)
                    # nodes hooked at higher levels may now point one step
                    # behind their new root; snapshots must be fully flat
                    compress(comp, ctx=ctx)
                    pos = end
                self._labels[int(k)] = comp.copy()
        metrics.set_gauge("repro.serve.component_levels", len(self._labels))

    # ------------------------------------------------------------------
    # Persistence tables (the mmap-attach fast path)
    # ------------------------------------------------------------------
    @classmethod
    def from_tables(
        cls, levels: np.ndarray, labels: np.ndarray
    ) -> "LevelComponents":
        """Rebuild from precomputed tables, skipping the union-find sweep.

        ``levels`` are the distinct trussness levels (ascending) and
        ``labels`` the ``int64[len(levels), S]`` per-level label rows —
        exactly what :meth:`to_tables` exports and the persistent store
        (:mod:`repro.store`) maps back in. Rows are kept as views (no
        copy), so labels served from an attached store stay zero-copy.
        """
        levels = np.asarray(levels, dtype=np.int64).reshape(-1)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 2 or labels.shape[0] != levels.size:
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                f"labels table shape {labels.shape} does not match "
                f"{levels.size} levels"
            )
        self = object.__new__(cls)
        self.levels = levels
        self._labels = {int(k): labels[i] for i, k in enumerate(levels.tolist())}
        metrics.set_gauge("repro.serve.component_levels", len(self._labels))
        return self

    def to_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Export as ``(levels, labels)`` arrays for persistence.

        The labels matrix rows align with ``levels`` (ascending); an
        index with no supernodes exports a ``(0, 0)`` matrix.
        """
        levels = np.ascontiguousarray(self.levels, dtype=np.int64)
        if levels.size:
            labels = np.stack([self._labels[int(k)] for k in levels.tolist()])
            labels = np.ascontiguousarray(labels, dtype=np.int64)
        else:
            labels = np.empty((0, 0), dtype=np.int64)
        return levels, labels

    @property
    def kmax(self) -> int:
        return int(self.levels[-1]) if self.levels.size else 2

    def resolve_level(self, k: int) -> int | None:
        """Smallest stored level ≥ k (the one whose filtered supernode
        set — and hence components — equals the τ ≥ k filter), or
        ``None`` when k exceeds every trussness in the graph."""
        i = int(np.searchsorted(self.levels, k, side="left"))
        if i == self.levels.size:
            return None
        return int(self.levels[i])

    def labels(self, level: int) -> np.ndarray:
        """Component label per supernode at a stored level. Labels are
        only meaningful for supernodes with τ ≥ level (each is the
        minimum member supernode id of its component); τ < level
        supernodes keep their own id, which never collides with a
        τ ≥ level component label."""
        return self._labels[level]
