"""The component-based community-query engine.

Answers the same question as
:func:`repro.community.search.search_communities` — all k-truss
communities of a query vertex — but from precomputed per-level
supernode components (:class:`~repro.serve.components.LevelComponents`)
instead of a per-query BFS:

1. *Anchor* exactly as the BFS engine does (supernodes with τ ≥ k
   holding an edge incident to q).
2. *Lookup* the anchors' component labels at the level covering k —
   each distinct label is one community (no traversal).
3. *Materialize* the community's edges once per ``(level, component)``
   and memoize; repeat queries into the same community share the
   array.

On top sit a per-``(vertex, k)`` LRU result cache and a vectorized
batch path (:meth:`QueryEngine.query_many`) that resolves the anchors
of a whole request batch with one CSR gather.
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.community.model import Community, canonical_order
from repro.equitruss.index import EquiTrussIndex
from repro.errors import InvalidParameterError
from repro.obs import metrics
from repro.obs.histogram import DEFAULT_MS_BOUNDARIES
from repro.parallel.context import ExecutionContext
from repro.serve.cache import QueryCache
from repro.serve.components import LevelComponents


class QueryEngine:
    """Batched, cached k-truss community queries over an EquiTruss index.

    Construction runs the component precompute (one union-find sweep
    over the superedges). ``cache_size`` bounds the LRU result cache
    (0 disables it). Attach to a :class:`DynamicEquiTruss` with
    :meth:`attach` so index updates invalidate the caches automatically.
    """

    def __init__(
        self,
        index: EquiTrussIndex,
        ctx: ExecutionContext | None = None,
        cache_size: int = 1024,
        components: LevelComponents | None = None,
    ) -> None:
        self.ctx = ExecutionContext.ensure(ctx)
        self.cache = QueryCache(cache_size)
        self._bind(index, components)

    def _bind(
        self, index: EquiTrussIndex, components: LevelComponents | None = None
    ) -> None:
        self.index = index
        # precomputed tables (the mmap-attach path — see repro.store)
        # skip the union-find sweep entirely; they MUST describe this
        # exact index, which the store's fingerprint protocol guarantees
        self.components = (
            components
            if components is not None
            else LevelComponents(index, ctx=self.ctx)
        )
        # (level, component label) -> sorted member edge ids, shared by
        # every query that lands in the community
        self._materialized: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Cache lifecycle
    # ------------------------------------------------------------------
    def refresh(
        self,
        index: EquiTrussIndex,
        components: LevelComponents | None = None,
    ) -> None:
        """Rebind to a (rebuilt) index and drop every derived cache.

        This is the invalidation contract: after ``refresh`` no answer
        derived from the old index can be served. Registered as the
        update hook by :meth:`attach`; the store's re-attach path passes
        the freshly mapped ``components`` so a swap does not force a
        component sweep.
        """
        self._bind(index, components)
        self.cache.invalidate()

    def invalidate(self) -> None:
        """Drop the result cache (components stay — the index is unchanged)."""
        self.cache.invalidate()

    @classmethod
    def attach(cls, dynamic, ctx=None, cache_size: int = 1024) -> "QueryEngine":
        """Engine over ``dynamic.index`` whose caches track its updates."""
        engine = cls(dynamic.index, ctx=ctx, cache_size=cache_size)
        dynamic.add_invalidation_hook(engine.refresh)
        return engine

    # ------------------------------------------------------------------
    # Single query
    # ------------------------------------------------------------------
    def query(self, vertex: int, k: int, record: bool = True) -> list[Community]:
        """All k-truss communities of ``vertex`` (canonical order).

        Byte-identical to ``search_communities(index, vertex, k)``.
        ``record=False`` skips the per-request ``Query`` span (used by
        the concurrent dispatcher, whose workers must not interleave
        spans on a shared tracer).
        """
        self._check_k(k)
        key = (int(vertex), int(k))
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        t0 = time.perf_counter()
        if record:
            with self.ctx.region("Query", work=0, parallel=False) as handle:
                communities = self._resolve(vertex, k, handle)
        else:
            communities = self._resolve(vertex, k, None)
        self.cache.put(key, communities)
        elapsed = time.perf_counter() - t0
        metrics.inc("repro.serve.queries")
        metrics.observe("repro.serve.latency_seconds", elapsed)
        metrics.observe(
            "repro.serve.latency_ms", elapsed * 1000.0, boundaries=DEFAULT_MS_BOUNDARIES
        )
        return communities

    def _resolve(self, vertex: int, k: int, handle) -> list[Community]:
        anchors = self.index.supernodes_of_vertex(vertex, k_min=k)
        if anchors.size == 0:
            return []
        level = self.components.resolve_level(k)
        if level is None:  # pragma: no cover - anchors imply a level exists
            return []
        roots = np.unique(self.components.labels(level)[anchors])
        if handle is not None:
            handle.work += int(anchors.size)
        communities = [
            Community(k=k, edge_ids=self._community_edges(level, int(r)), graph=self.index.graph)
            for r in roots.tolist()
        ]
        return canonical_order(communities)

    # ------------------------------------------------------------------
    # Batch query
    # ------------------------------------------------------------------
    def query_many(self, vertices, k: int, record: bool = True) -> list[list[Community]]:
        """Communities for every vertex of a batch at one k.

        Cached entries are served from the LRU; the misses are resolved
        together — one CSR gather pulls the incident edge ids of all
        uncached vertices, one scatter maps them to anchor supernodes,
        and one unique pass yields each vertex's component labels.
        Results align with the input order.
        """
        self._check_k(k)
        vs = np.asarray(vertices, dtype=np.int64).ravel()
        n = self.index.graph.num_vertices
        if vs.size and (int(vs.min()) < 0 or int(vs.max()) >= n):
            raise InvalidParameterError("batch contains an out-of-range vertex")
        t0 = time.perf_counter()
        results: list[list[Community] | None] = [None] * vs.size
        misses: list[int] = []
        for i, v in enumerate(vs.tolist()):
            hit = self.cache.get((v, int(k)))
            if hit is not None:
                results[i] = hit
            else:
                misses.append(i)
        if misses:
            if record:
                with self.ctx.region(
                    "QueryBatch", work=len(misses), parallel=False
                ) as handle:
                    self._resolve_batch(vs, k, misses, results)
                    handle.attrs["batch_size"] = int(vs.size)
            else:
                self._resolve_batch(vs, k, misses, results)
            for i in misses:
                self.cache.put((int(vs[i]), int(k)), results[i])
        elapsed = time.perf_counter() - t0
        metrics.inc("repro.serve.queries", len(misses))
        metrics.inc("repro.serve.batch_requests", int(vs.size))
        metrics.observe("repro.serve.batch_latency_seconds", elapsed)
        metrics.observe(
            "repro.serve.batch_latency_ms",
            elapsed * 1000.0,
            boundaries=DEFAULT_MS_BOUNDARIES,
        )
        return results  # type: ignore[return-value]

    def _resolve_batch(
        self, vs: np.ndarray, k: int, misses: list[int], results: list
    ) -> None:
        for i in misses:
            results[i] = []
        level = self.components.resolve_level(k)
        if level is None:
            return
        graph = self.index.graph
        sub = vs[np.asarray(misses, dtype=np.int64)]
        indptr = graph.indptr
        starts = indptr[sub].astype(np.int64, copy=False)
        counts = (indptr[sub + 1] - indptr[sub]).astype(np.int64, copy=False)
        total = int(counts.sum())
        if total == 0:
            return
        # one gather: incident edge ids of every uncached vertex at once
        cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
        local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
        eids = graph.edge_ids[np.repeat(starts, counts) + local]
        owner = np.repeat(np.arange(len(misses), dtype=np.int64), counts)
        sns = self.index.edge_supernode[np.asarray(eids, dtype=np.int64)]
        keep = sns >= 0
        sns, owner = sns[keep], owner[keep]
        if sns.size:
            keep = self.index.supernode_trussness[sns] >= k
            sns, owner = sns[keep], owner[keep]
        if sns.size == 0:
            return
        labels = self.components.labels(level)[sns]
        span = np.int64(max(self.index.num_supernodes, 1))
        pair_keys = np.unique(owner * span + labels)
        per_owner: dict[int, list[int]] = defaultdict(list)
        for ow, lb in zip((pair_keys // span).tolist(), (pair_keys % span).tolist()):
            per_owner[ow].append(lb)
        for slot, labs in per_owner.items():
            communities = [
                Community(
                    k=k,
                    edge_ids=self._community_edges(level, lb),
                    graph=graph,
                )
                for lb in labs
            ]
            results[misses[slot]] = canonical_order(communities)

    # ------------------------------------------------------------------
    # Community materialization
    # ------------------------------------------------------------------
    def _community_edges(self, level: int, root: int) -> np.ndarray:
        """Sorted member edge ids of one (level, component) — memoized."""
        key = (level, root)
        cached = self._materialized.get(key)
        if cached is not None:
            return cached
        comp = self.components.labels(level)
        members = np.flatnonzero(
            (comp == root) & (self.index.supernode_trussness >= level)
        )
        indptr = self.index.supernode_indptr
        counts = indptr[members + 1] - indptr[members]
        total = int(counts.sum())
        cum = np.concatenate([np.zeros(1, np.int64), np.cumsum(counts)])
        local = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
        edge_ids = np.sort(
            self.index.supernode_edges[np.repeat(indptr[members], counts) + local]
        )
        self._materialized[key] = edge_ids
        return edge_ids

    def warm(self) -> int:
        """Materialize every community at every level; returns how many."""
        before = len(self._materialized)
        sn_k = self.index.supernode_trussness
        for level in self.components.levels.tolist():
            comp = self.components.labels(level)
            for root in np.unique(comp[sn_k >= level]).tolist():
                self._community_edges(level, int(root))
        warmed = len(self._materialized) - before
        metrics.inc("repro.serve.warmed_communities", warmed)
        return warmed

    # ------------------------------------------------------------------
    @staticmethod
    def _check_k(k: int) -> None:
        if k < 3:
            raise InvalidParameterError(
                f"k must be >= 3 for k-truss communities, got {k}"
            )

    def stats(self) -> dict[str, int | float]:
        return {
            "levels": int(self.components.levels.size),
            "materialized_communities": len(self._materialized),
            "cache_entries": len(self.cache),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": self.cache.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryEngine(supernodes={self.index.num_supernodes}, "
            f"levels={self.components.levels.size}, cache={len(self.cache)})"
        )
