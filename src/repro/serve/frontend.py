"""Async serving front-end: coalescing TCP tier over shard workers.

The outside-facing half of the serving story. A stdlib-only asyncio TCP
server speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` and turns a stream of single
``(vertex, k)`` queries into shard-worker ``query_many`` batches:

* **Coalescing** — concurrent requests with the same ``k`` are buffered
  into one batch, flushed when the batch reaches ``max_batch`` or the
  ``window_ms`` timer fires, whichever comes first. A lone request
  never waits longer than one window.
* **Admission control** — at most ``max_pending`` admitted requests may
  be in the house (buffered or in flight); past that the frontend
  answers immediately with a typed ``backpressure`` rejection instead
  of queueing into a timeout.
* **Shard routing** — each batch is split by the block vertex
  partition of :class:`repro.distributed.partition.VertexOwnership`;
  shard ``r`` answers the vertices it owns. Every shard worker maps
  the *full* persistent store
  (:func:`~repro.store.reader.attach_store`), so routing is a cache-
  locality decision, not a correctness one: communities crossing
  partition boundaries are answered exactly by whichever shard owns
  the anchor.
* **Supervision** — a shard that dies fails its in-flight requests
  with typed ``shard_unavailable`` errors and is respawned (up to
  ``restart_limit``) before the next batch routed to it.

Per-request observability goes through the PR 6 fixed-boundary
histogram registry: ``repro.serve.frontend.latency_ms``,
``repro.serve.frontend.queue_depth`` and
``repro.serve.frontend.coalesce_batch_size`` export p50/p95/p99 in
both the JSON snapshot and the Prometheus text exposition (the
``metrics`` op merges the shard workers' registries into the reply).
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import (
    BackpressureError,
    InvalidParameterError,
    LoopStallError,
    ReproError,
    ServeError,
    ShardUnavailableError,
    WireProtocolError,
)
from repro.obs import metrics
from repro.obs.histogram import DEFAULT_MS_BOUNDARIES
from repro.serve import protocol

#: Bucket upper bounds for request-count shaped histograms
#: (``repro.serve.frontend.queue_depth`` / ``coalesce_batch_size``).
COUNT_BOUNDARIES: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    4096.0,
)

#: Histogram fed by the opt-in event-loop stall detector
#: (``REPRO_LOOP_CHECK=1``, :mod:`repro.analysis.stall`): one
#: observation per callback that held the serving loop past the
#: threshold.
LOOP_STALL_METRIC = "repro.serve.frontend.loop_stall_ms"


@dataclass(frozen=True)
class FrontendConfig:
    """Knobs of one serving frontend (see ``docs/architecture.md``)."""

    #: persisted ``.eqtsidx`` store every shard worker attaches
    store_path: str | Path
    #: number of shard worker processes (= vertex partition ranks)
    num_shards: int = 2
    host: str = "127.0.0.1"
    #: 0 picks an ephemeral port (read it back from ``frontend.port``)
    port: int = 0
    #: coalescing window: a buffered batch flushes after this long
    window_ms: float = 2.0
    #: a batch also flushes as soon as it holds this many requests
    max_batch: int = 64
    #: admission limit: buffered + in-flight requests before rejection
    max_pending: int = 1024
    #: per-shard engine LRU result-cache entries
    cache_size: int = 1024
    #: how many times a dead shard is respawned before giving up
    restart_limit: int = 5
    #: seconds to wait for a shard's ready handshake at spawn
    ready_timeout_s: float = 60.0
    #: seconds one shard batch call may take before it counts as dead
    call_timeout_s: float = 120.0
    #: variant shard workers use for journal-replay refresh
    variant: str = "afforest"
    #: shards check the update journal before every batch
    auto_refresh: bool = False
    #: extra argv appended to the shard command (fault-injection knobs)
    shard_args: tuple[str, ...] = ()


def _shard_command(config: FrontendConfig, rank: int) -> list[str]:
    cmd = [
        sys.executable, "-m", "repro.serve.shard",
        "--store", str(config.store_path),
        "--rank", str(rank),
        "--ranks", str(config.num_shards),
        "--cache-size", str(config.cache_size),
        "--variant", config.variant,
    ]
    if config.auto_refresh:
        cmd.append("--auto-refresh")
    cmd.extend(config.shard_args)
    return cmd


def _shard_env() -> dict[str, str]:
    """Subprocess env whose ``PYTHONPATH`` can import this checkout."""
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not prior else os.pathsep.join([src, prior])
    return env


class ShardHandle:
    """Frontend-side supervisor of one shard worker subprocess."""

    def __init__(self, config: FrontendConfig, rank: int) -> None:
        self.config = config
        self.rank = rank
        self.proc: asyncio.subprocess.Process | None = None
        self.ready: dict = {}
        self.restarts = 0
        self._seq = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._spawn_lock = asyncio.Lock()
        self._dead = True

    @property
    def alive(self) -> bool:
        return (
            not self._dead
            and self.proc is not None
            and self.proc.returncode is None
        )

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    # ------------------------------------------------------------------
    async def spawn(self) -> None:
        """Start the worker and wait for its ready handshake."""
        proc = await asyncio.create_subprocess_exec(
            *_shard_command(self.config, self.rank),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=_shard_env(),
            limit=protocol.MAX_FRAME_BYTES,
        )
        self.proc = proc
        assert proc.stdout is not None
        try:
            line = await asyncio.wait_for(
                proc.stdout.readline(), self.config.ready_timeout_s
            )
        except asyncio.TimeoutError:
            proc.kill()
            await proc.wait()
            raise ShardUnavailableError(
                f"shard {self.rank} did not become ready within "
                f"{self.config.ready_timeout_s}s"
            ) from None
        if not line:
            await proc.wait()
            raise ShardUnavailableError(
                f"shard {self.rank} exited (rc={proc.returncode}) before ready"
            )
        frame = protocol.decode_frame(line)
        if frame.get("op") != "ready":
            proc.kill()
            await proc.wait()
            raise ShardUnavailableError(
                f"shard {self.rank} sent {frame.get('op')!r} instead of ready"
            )
        self.ready = frame
        self._dead = False
        self._reader_task = asyncio.create_task(self._read_loop(proc))

    async def _read_loop(self, proc: asyncio.subprocess.Process) -> None:
        assert proc.stdout is not None
        while True:
            line = await proc.stdout.readline()
            if not line:
                break
            try:
                frame = protocol.decode_frame(line)
            except WireProtocolError:
                continue  # a torn line during kill; the EOF path cleans up
            fut = self._pending.pop(frame.get("id"), None)
            if fut is not None and not fut.done():
                fut.set_result(frame)
        self._dead = True
        pending = list(self._pending.values())
        self._pending.clear()
        message = f"shard {self.rank} (pid {proc.pid}) disconnected"
        for fut in pending:
            if not fut.done():
                fut.set_exception(ShardUnavailableError(message))

    async def ensure_alive(self) -> None:
        """Respawn a dead worker (bounded by ``restart_limit``)."""
        if self.alive:
            return
        async with self._spawn_lock:
            if self.alive:
                return
            if self.restarts >= self.config.restart_limit:
                raise ShardUnavailableError(
                    f"shard {self.rank} exceeded its restart limit "
                    f"({self.config.restart_limit})"
                )
            await self._reap()
            self.restarts += 1
            metrics.inc("repro.serve.frontend.respawns")
            await self.spawn()

    async def _reap(self) -> None:
        if self.proc is not None and self.proc.returncode is None:
            try:
                self.proc.kill()
            except ProcessLookupError:  # pragma: no cover - raced exit
                pass
            await self.proc.wait()
        if self._reader_task is not None:
            await self._reader_task
            self._reader_task = None

    async def call(self, frame: dict, timeout: float | None = None) -> dict:
        """One request/response round trip with the worker."""
        if not self.alive:
            raise ShardUnavailableError(f"shard {self.rank} is not running")
        proc = self.proc
        assert proc is not None and proc.stdin is not None
        self._seq += 1
        rid = self._seq
        payload = dict(frame)
        payload["id"] = rid
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        try:
            proc.stdin.write(protocol.encode_frame(payload))
            await proc.stdin.drain()
        except (ConnectionError, RuntimeError) as exc:
            self._pending.pop(rid, None)
            raise ShardUnavailableError(
                f"shard {self.rank} write failed: {exc}"
            ) from exc
        try:
            return await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(rid, None)
            raise ShardUnavailableError(
                f"shard {self.rank} did not answer within {timeout}s"
            ) from None

    async def close(self) -> None:
        self._dead = True
        await self._reap()


class ServingFrontend:
    """The asyncio TCP server tying coalescer, router, and shards together."""

    def __init__(self, config: FrontendConfig) -> None:
        from repro.store.reader import read_header

        self.config = config
        if config.num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be >= 1, got {config.num_shards}"
            )
        header = read_header(config.store_path)
        self.num_vertices = int(header["num_vertices"])
        self.generation = int(header["generation"])
        # scalar mirror of VertexOwnership.owner_of (same block formula;
        # the differential suite pins the equivalence)
        self._block = -(-self.num_vertices // config.num_shards) or 1
        self.shards = [ShardHandle(config, r) for r in range(config.num_shards)]
        self.host: str | None = None
        self.port: int | None = None
        self.started = False
        self._server: asyncio.base_events.Server | None = None
        self._buffers: dict[int, list[tuple[int, asyncio.Future]]] = {}
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._batch_tasks: set[asyncio.Task] = set()
        self._admitted = 0

    def _owner(self, vertex: int) -> int:
        return min(vertex // self._block, self.config.num_shards - 1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn every shard, then start accepting connections."""
        try:
            await asyncio.gather(*(s.spawn() for s in self.shards))
        except ShardUnavailableError:
            for shard in self.shards:
                await shard.close()
            raise
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        metrics.set_gauge("repro.serve.frontend.shards", self.config.num_shards)
        self.started = True

    async def stop(self) -> None:
        """Stop accepting, fail anything buffered, and kill the shards."""
        self.started = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for items in self._buffers.values():
            for _, fut in items:
                if not fut.done():
                    fut.set_exception(ServeError("frontend stopping"))
            self._admitted -= len(items)
        self._buffers.clear()
        if self._batch_tasks:
            await asyncio.gather(*self._batch_tasks, return_exceptions=True)
        for shard in self.shards:
            await shard.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics.inc("repro.serve.frontend.connections")
        wlock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.create_task(self._serve_frame(line, writer, wlock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.LimitOverrunError):
            pass
        finally:
            # a disconnect drops the responses, not the batches: pending
            # request tasks run to completion and their writes no-op
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - raced close
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, wlock: asyncio.Lock, obj: dict
    ) -> None:
        async with wlock:
            if writer.is_closing():
                return
            try:
                writer.write(protocol.encode_frame(obj))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to deliver to

    async def _serve_frame(
        self, line: bytes, writer: asyncio.StreamWriter, wlock: asyncio.Lock
    ) -> None:
        try:
            obj = protocol.decode_frame(line)
        except WireProtocolError as exc:
            await self._write(writer, wlock, protocol.exception_response(None, exc))
            return
        req_id = obj.get("id")
        op = obj.get("op", "query")
        t0 = time.perf_counter()
        try:
            if op == "query":
                resp = await self._op_query(req_id, obj)
            elif op == "ping":
                resp = protocol.ok_response(
                    req_id, pong=True, generation=self.generation
                )
            elif op == "stats":
                resp = await self._op_stats(req_id)
            elif op == "metrics":
                resp = await self._op_metrics(req_id, obj)
            elif op == "refresh":
                resp = await self._op_refresh(req_id)
            else:
                raise WireProtocolError(f"unknown op {op!r}")
        except ReproError as exc:
            resp = protocol.exception_response(req_id, exc)
        if op == "query":
            metrics.inc("repro.serve.frontend.requests")
            metrics.observe(
                "repro.serve.frontend.latency_ms",
                (time.perf_counter() - t0) * 1000.0,
                boundaries=DEFAULT_MS_BOUNDARIES,
            )
        await self._write(writer, wlock, resp)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    async def _op_query(self, req_id: Any, obj: dict) -> dict:
        vertex, k = protocol.check_query_fields(obj)
        if not 0 <= vertex < self.num_vertices:
            raise InvalidParameterError(
                f"vertex {vertex} out of range [0, {self.num_vertices})"
            )
        if k < 3:
            raise InvalidParameterError(
                f"k must be >= 3 for k-truss communities, got {k}"
            )
        communities = await self._submit(vertex, k)
        return protocol.ok_response(
            req_id, vertex=vertex, k=k, communities=communities
        )

    async def _op_refresh(self, req_id: Any) -> dict:
        reports = []
        for shard in self.shards:
            await shard.ensure_alive()
            resp = protocol.raise_for_error(
                await shard.call({"op": "refresh"}, self.config.call_timeout_s)
            )
            reports.append(
                {
                    "rank": shard.rank,
                    "applied": resp.get("applied"),
                    "swapped": resp.get("swapped"),
                    "generation": resp.get("generation"),
                }
            )
        self.generation = max(
            (int(r["generation"]) for r in reports), default=self.generation
        )
        return protocol.ok_response(req_id, reports=reports)

    async def _op_stats(self, req_id: Any) -> dict:
        shard_stats: list[dict] = []
        for shard in self.shards:
            entry: dict = {
                "rank": shard.rank,
                "alive": shard.alive,
                "pid": shard.pid,
                "restarts": shard.restarts,
            }
            if shard.alive:
                try:
                    resp = protocol.raise_for_error(
                        await shard.call({"op": "stats"}, self.config.call_timeout_s)
                    )
                    entry["stats"] = resp.get("stats")
                except ReproError:
                    entry["alive"] = shard.alive
            shard_stats.append(entry)
        frontend = {
            "store": str(self.config.store_path),
            "num_vertices": self.num_vertices,
            "num_shards": self.config.num_shards,
            "generation": self.generation,
            "kmax": max(
                (int(s.ready.get("kmax", 2)) for s in self.shards if s.ready),
                default=2,
            ),
            "admitted": self._admitted,
            "max_pending": self.config.max_pending,
            "window_ms": self.config.window_ms,
            "max_batch": self.config.max_batch,
        }
        return protocol.ok_response(req_id, frontend=frontend, shards=shard_stats)

    async def _op_metrics(self, req_id: Any, obj: dict) -> dict:
        from repro.obs.exporter import render_prometheus
        from repro.obs.metrics import MetricsRegistry

        fmt = obj.get("format", "prometheus")
        merged = MetricsRegistry()
        merged.merge_state(metrics.get_registry().dump_state())
        for shard in self.shards:
            if not shard.alive:
                continue
            try:
                resp = protocol.raise_for_error(
                    await shard.call({"op": "metrics"}, self.config.call_timeout_s)
                )
            except ReproError:
                continue
            merged.merge_state(resp.get("state") or {})
        if fmt == "prometheus":
            return protocol.ok_response(req_id, body=render_prometheus(merged))
        if fmt == "json":
            return protocol.ok_response(req_id, metrics=merged.as_dict())
        raise WireProtocolError(f"unknown metrics format {fmt!r}")

    # ------------------------------------------------------------------
    # Coalescing + routing
    # ------------------------------------------------------------------
    async def _submit(self, vertex: int, k: int):
        """Admit one query into the per-``k`` coalescing buffer."""
        if self._admitted >= self.config.max_pending:
            metrics.inc("repro.serve.frontend.rejected")
            raise BackpressureError(
                f"admission limit reached ({self.config.max_pending} requests "
                f"pending); retry later"
            )
        self._admitted += 1
        metrics.observe(
            "repro.serve.frontend.queue_depth", float(self._admitted),
            boundaries=COUNT_BOUNDARIES,
        )
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        buf = self._buffers.setdefault(k, [])
        buf.append((vertex, fut))
        if len(buf) >= self.config.max_batch:
            self._flush(k)
        elif len(buf) == 1:
            self._timers[k] = asyncio.get_running_loop().call_later(
                self.config.window_ms / 1000.0, self._flush, k
            )
        return await fut

    def _flush(self, k: int) -> None:
        timer = self._timers.pop(k, None)
        if timer is not None:
            timer.cancel()
        items = self._buffers.pop(k, [])
        if not items:
            return
        task = asyncio.get_running_loop().create_task(self._run_batch(k, items))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(
        self, k: int, items: list[tuple[int, asyncio.Future]]
    ) -> None:
        metrics.observe(
            "repro.serve.frontend.coalesce_batch_size", float(len(items)),
            boundaries=COUNT_BOUNDARIES,
        )
        by_shard: dict[int, list[tuple[int, asyncio.Future]]] = {}
        for vertex, fut in items:
            by_shard.setdefault(self._owner(vertex), []).append((vertex, fut))
        try:
            await asyncio.gather(
                *(
                    self._shard_batch(rank, k, sub)
                    for rank, sub in by_shard.items()
                )
            )
        finally:
            self._admitted -= len(items)

    async def _shard_batch(
        self, rank: int, k: int, sub: list[tuple[int, asyncio.Future]]
    ) -> None:
        shard = self.shards[rank]
        vertices = [v for v, _ in sub]
        t0 = time.perf_counter()
        try:
            await shard.ensure_alive()
            resp = protocol.raise_for_error(
                await shard.call(
                    {"op": "batch", "k": k, "vertices": vertices},
                    self.config.call_timeout_s,
                )
            )
        except ShardUnavailableError as exc:
            metrics.inc("repro.serve.frontend.shard_failures")
            self._fail_sub(sub, ShardUnavailableError(str(exc)))
            return
        except ReproError as exc:
            self._fail_sub(sub, exc)
            return
        metrics.observe(
            "repro.serve.frontend.shard_ms",
            (time.perf_counter() - t0) * 1000.0,
            boundaries=DEFAULT_MS_BOUNDARIES,
        )
        results = resp.get("results")
        if not isinstance(results, list) or len(results) != len(sub):
            self._fail_sub(
                sub,
                WireProtocolError(
                    f"shard {rank} answered {len(sub)} requests with a "
                    f"malformed results list"
                ),
            )
            return
        for (_, fut), communities in zip(sub, results):
            if not fut.done():
                fut.set_result(communities)

    @staticmethod
    def _fail_sub(sub: list[tuple[int, asyncio.Future]], exc: Exception) -> None:
        for _, fut in sub:
            if not fut.done():
                fut.set_exception(exc)


# ----------------------------------------------------------------------
# Entry points: foreground loop (CLI) and background thread (tests/bench)
# ----------------------------------------------------------------------


async def run_frontend(
    config: FrontendConfig,
    *,
    duration: float | None = None,
    on_ready=None,
    stop_event: asyncio.Event | None = None,
) -> None:
    """Start a frontend and serve until ``duration``/``stop_event``/cancel."""
    from repro.analysis.stall import maybe_watchdog

    watchdog = maybe_watchdog(metric=LOOP_STALL_METRIC)
    try:
        # the constructor reads the store header from disk — off-loop
        frontend = await asyncio.to_thread(ServingFrontend, config)
        await frontend.start()
        if on_ready is not None:
            on_ready(frontend)
        try:
            if stop_event is not None and duration is not None:
                try:
                    await asyncio.wait_for(stop_event.wait(), duration)
                except asyncio.TimeoutError:
                    pass
            elif stop_event is not None:
                await stop_event.wait()
            elif duration is not None:
                await asyncio.sleep(duration)
            else:
                await asyncio.Event().wait()  # serve forever
        finally:
            await frontend.stop()
    finally:
        if watchdog is not None:
            watchdog.uninstall()
            watchdog.check()


class FrontendThread:
    """A frontend on a private event loop thread (tests, benchmarks).

    Use as a context manager; ``host``/``port`` are valid once
    ``__enter__`` returns. ``frontend`` exposes the live
    :class:`ServingFrontend` (event-loop confined — talk to it over the
    wire, not by calling coroutines from the outer thread).
    """

    def __init__(self, config: FrontendConfig) -> None:
        self.config = config
        self.host: str | None = None
        self.port: int | None = None
        self.frontend: ServingFrontend | None = None
        #: live stall watchdog when ``REPRO_LOOP_CHECK`` is set
        self.loop_watchdog = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "FrontendThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-frontend", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=300.0):  # pragma: no cover - hang guard
            raise ServeError("frontend thread did not become ready")
        if self._error is not None:
            raise self._error
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        self._thread.join(timeout=60.0)
        self._thread = None
        if isinstance(self._error, LoopStallError):
            error, self._error = self._error, None
            raise error

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface spawn failures to start()
            self._error = exc
        finally:
            self._ready.set()

    async def _amain(self) -> None:
        from repro.analysis.stall import maybe_watchdog

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.loop_watchdog = maybe_watchdog(metric=LOOP_STALL_METRIC)
        try:
            # the constructor reads the store header from disk — off-loop
            frontend = await asyncio.to_thread(ServingFrontend, self.config)
            await frontend.start()
            self.frontend = frontend
            self.host, self.port = frontend.host, frontend.port
            self._ready.set()
            try:
                await self._stop_event.wait()
            finally:
                await frontend.stop()
        finally:
            if self.loop_watchdog is not None:
                self.loop_watchdog.uninstall()
                self.loop_watchdog.check()

    def __enter__(self) -> "FrontendThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
