"""The serving wire protocol: newline-delimited JSON frames.

One request or response per line, UTF-8 JSON, ``\\n``-terminated. The
same frame shape is spoken on both hops — client ↔ frontend over TCP
and frontend ↔ shard worker over the worker's stdin/stdout pipes — so
one encoder/decoder serves every endpoint.

Requests carry an ``op`` plus an ``id`` the peer echoes back verbatim;
responses are either ``{"id": ..., "ok": true, ...}`` or
``{"id": ..., "ok": false, "error": {"type": ..., "message": ...}}``.
Responses to pipelined requests may arrive in any order — the ``id`` is
the only correlation key.

Error ``type`` strings are a closed vocabulary (:data:`ERROR_TYPES`)
that maps 1:1 onto the typed exceptions in :mod:`repro.errors`;
:func:`raise_for_error` rehydrates the exception on the client side so
callers catch :class:`~repro.errors.BackpressureError` /
:class:`~repro.errors.ShardUnavailableError` instead of parsing dicts.

Communities travel as ``{"k": int, "edge_ids": [int, ...]}`` with the
edge ids in the engine's canonical sorted order, so a response compares
bit-identically against an in-process
:meth:`~repro.serve.engine.QueryEngine.query` result.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import (
    BackpressureError,
    InvalidParameterError,
    ServeError,
    ShardUnavailableError,
    WireProtocolError,
)

#: Protocol version stamped into ready/hello frames.
PROTOCOL_VERSION = 1

#: One frame (request or response) may not exceed this many bytes —
#: a corrupt peer must not balloon the reader's buffer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# -- op vocabulary -----------------------------------------------------

#: The handshake frame op a shard worker writes before serving.
OP_READY = "ready"

#: Ops the frontend accepts from clients. REP008 checks the frontend
#: dispatch chain and the client helpers against this table — add the
#: op here first, then a handler on every peer.
FRONTEND_OPS: tuple[str, ...] = (
    "query",
    "ping",
    "stats",
    "metrics",
    "refresh",
)

#: Ops a shard worker accepts on stdin (the frontend-facing superset:
#: ``batch`` is the coalesced form of ``query``; ``shutdown`` ends the
#: serve loop).
SHARD_OPS: tuple[str, ...] = (
    "batch",
    "query",
    "refresh",
    "metrics",
    "stats",
    "ping",
    "shutdown",
)

# -- error vocabulary --------------------------------------------------

ERR_BACKPRESSURE = "backpressure"
ERR_SHARD_UNAVAILABLE = "shard_unavailable"
ERR_INVALID_PARAMETER = "invalid_parameter"
ERR_PROTOCOL = "protocol"
ERR_INTERNAL = "internal"

#: error ``type`` string → exception class raised by :func:`raise_for_error`.
ERROR_TYPES: dict[str, type[Exception]] = {
    ERR_BACKPRESSURE: BackpressureError,
    ERR_SHARD_UNAVAILABLE: ShardUnavailableError,
    ERR_INVALID_PARAMETER: InvalidParameterError,
    ERR_PROTOCOL: WireProtocolError,
    ERR_INTERNAL: ServeError,
}

#: exception class → error ``type`` string (first match wins, most
#: specific first: used by servers to serialize a caught exception).
_EXCEPTION_TYPES: tuple[tuple[type[Exception], str], ...] = (
    (BackpressureError, ERR_BACKPRESSURE),
    (ShardUnavailableError, ERR_SHARD_UNAVAILABLE),
    (InvalidParameterError, ERR_INVALID_PARAMETER),
    (WireProtocolError, ERR_PROTOCOL),
)


def error_type_of(exc: Exception) -> str:
    """The wire ``type`` string for an exception (``internal`` fallback)."""
    for cls, name in _EXCEPTION_TYPES:
        if isinstance(exc, cls):
            return name
    return ERR_INTERNAL


# -- framing -----------------------------------------------------------


def encode_frame(obj: dict) -> bytes:
    """One protocol frame: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes | str) -> dict:
    """Parse one frame; :class:`WireProtocolError` on anything malformed."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise WireProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireProtocolError(f"frame is not UTF-8: {exc}") from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


# -- responses ---------------------------------------------------------


def ok_response(req_id: Any, **fields: Any) -> dict:
    """A success response echoing the request id."""
    out: dict = {"id": req_id, "ok": True}
    out.update(fields)
    return out


def error_response(req_id: Any, err_type: str, message: str) -> dict:
    """A typed failure response echoing the request id."""
    if err_type not in ERROR_TYPES:
        raise InvalidParameterError(f"unknown wire error type {err_type!r}")
    return {"id": req_id, "ok": False, "error": {"type": err_type, "message": message}}


def exception_response(req_id: Any, exc: Exception) -> dict:
    """Serialize a caught exception as a typed failure response."""
    return error_response(req_id, error_type_of(exc), str(exc))


def raise_for_error(response: dict) -> dict:
    """Return a success response; rehydrate and raise a failure one."""
    if response.get("ok"):
        return response
    err = response.get("error")
    if not isinstance(err, dict) or "type" not in err:
        raise WireProtocolError(f"malformed error response: {response!r}")
    cls = ERROR_TYPES.get(err["type"], ServeError)
    raise cls(err.get("message", err["type"]))


# -- payload shapes ----------------------------------------------------


def serialize_communities(communities) -> list[dict]:
    """Engine results → wire shape, canonical order and ids preserved."""
    return [
        {"k": int(c.k), "edge_ids": c.edge_ids.tolist()} for c in communities
    ]


def check_query_fields(obj: dict) -> tuple[int, int]:
    """Validate a ``query`` request's ``vertex``/``k`` fields."""
    vertex, k = obj.get("vertex"), obj.get("k")
    for name, value in (("vertex", vertex), ("k", k)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise WireProtocolError(
                f"query field {name!r} must be an integer, got {value!r}"
            )
    return vertex, k
