"""Concurrent request dispatch: fan a query batch across workers.

The dispatcher is the serving front end: it takes a heterogeneous batch
of ``(vertex, k)`` requests, block-partitions it across the
:class:`~repro.parallel.context.ExecutionContext` workers, and each
worker groups its share by k so a chunk costs one batched
``query_many`` per distinct k instead of one BFS per request. The
engine's caches are shared (the result LRU is lock-protected; the
community materialization memo tolerates benign double-computes), so
concurrent chunks reinforce rather than duplicate each other's work.
"""

from __future__ import annotations

import time
from collections import defaultdict

from repro.community.model import Community
from repro.obs import metrics
from repro.parallel.context import ExecutionContext
from repro.serve.engine import QueryEngine


class QueryDispatcher:
    """Serve ``(vertex, k)`` request batches through a shared engine.

    With a thread-backend context the chunks run concurrently; results
    are identical to serial dispatch (and to per-request
    ``search_communities``) regardless of backend or worker count.
    """

    def __init__(self, engine: QueryEngine, ctx: ExecutionContext | None = None) -> None:
        self.engine = engine
        self.ctx = ExecutionContext.ensure(ctx) if ctx is not None else engine.ctx

    def run(self, requests) -> list[list[Community]]:
        """Answer every request; results align with the input order."""
        reqs = [(int(v), int(k)) for v, k in requests]
        results: list[list[Community] | None] = [None] * len(reqs)
        if not reqs:
            return []

        def chunk(lo: int, hi: int, tid: int) -> None:
            by_k: dict[int, list[int]] = defaultdict(list)
            for i in range(lo, hi):
                by_k[reqs[i][1]].append(i)
            for k, idxs in by_k.items():
                # spans off: worker threads must not interleave regions
                # on the shared tracer
                answers = self.engine.query_many(
                    [reqs[i][0] for i in idxs], k, record=False
                )
                for i, ans in zip(idxs, answers):
                    results[i] = ans

        t0 = time.perf_counter()
        workers = self.ctx.num_workers
        with self.ctx.region(
            "ServeBatch", work=len(reqs), parallel=workers > 1
        ) as handle:
            self.ctx.run(len(reqs), chunk)
            handle.attrs["requests"] = len(reqs)
        elapsed = time.perf_counter() - t0
        metrics.inc("repro.serve.dispatched_requests", len(reqs))
        if elapsed > 0:
            metrics.observe("repro.serve.throughput_qps", len(reqs) / elapsed)
        return results  # type: ignore[return-value]
