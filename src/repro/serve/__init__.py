"""Query serving: batched, cached community search over a built index.

The construction side of the paper (parallel EquiTruss build) makes the
index cheap; this package makes *answering queries from it* cheap at
traffic scale. Where :func:`repro.community.search.search_communities`
runs a fresh Python BFS over the supergraph per query, the
:class:`QueryEngine` precomputes the connected components of every
τ ≥ k filtered supernode graph once (a single union-find sweep over the
superedges), so a query is O(#anchors) label lookups; batches resolve
all anchors with one CSR gather, results are LRU-cached per
``(vertex, k)``, and a :class:`QueryDispatcher` fans request batches
across :class:`~repro.parallel.context.ExecutionContext` workers.

On top of the in-process tier sits the network tier
(:mod:`repro.serve.frontend`): an asyncio TCP server that coalesces
concurrent requests into ``query_many`` batches, applies admission
control, and routes by vertex partition to shard worker processes
(:mod:`repro.serve.shard`) that mmap-attach the persistent store.
:class:`ServeClient` is the blocking client;
:mod:`repro.serve.loadgen` drives open/closed-loop load against it.

Correctness contract: every engine path (cached or not, batch or
single, in-process or through the wire) returns communities
byte-identical to ``search_communities``; ``tests/serve/`` pins this
differentially on randomized graphs.
"""

from repro.serve.cache import QueryCache
from repro.serve.client import ServeClient
from repro.serve.components import LevelComponents
from repro.serve.engine import QueryEngine
from repro.serve.dispatch import QueryDispatcher
from repro.serve.frontend import FrontendConfig, FrontendThread, ServingFrontend

__all__ = [
    "FrontendConfig",
    "FrontendThread",
    "LevelComponents",
    "QueryCache",
    "QueryDispatcher",
    "QueryEngine",
    "ServeClient",
    "ServingFrontend",
]
