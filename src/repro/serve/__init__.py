"""Query serving: batched, cached community search over a built index.

The construction side of the paper (parallel EquiTruss build) makes the
index cheap; this package makes *answering queries from it* cheap at
traffic scale. Where :func:`repro.community.search.search_communities`
runs a fresh Python BFS over the supergraph per query, the
:class:`QueryEngine` precomputes the connected components of every
τ ≥ k filtered supernode graph once (a single union-find sweep over the
superedges), so a query is O(#anchors) label lookups; batches resolve
all anchors with one CSR gather, results are LRU-cached per
``(vertex, k)``, and a :class:`QueryDispatcher` fans request batches
across :class:`~repro.parallel.context.ExecutionContext` workers.

Correctness contract: every engine path (cached or not, batch or
single) returns communities byte-identical to ``search_communities``;
``tests/serve/`` pins this differentially on randomized graphs.
"""

from repro.serve.cache import QueryCache
from repro.serve.components import LevelComponents
from repro.serve.engine import QueryEngine
from repro.serve.dispatch import QueryDispatcher

__all__ = [
    "LevelComponents",
    "QueryCache",
    "QueryDispatcher",
    "QueryEngine",
]
