"""Open- and closed-loop load generation against a serving frontend.

Two standard traffic models (the usual SLO-measurement pair):

* **closed loop** — ``clients`` concurrent connections, each issuing
  its next query the moment the previous answer lands. Measures peak
  sustainable throughput and the latency the system settles into at
  full concurrency.
* **open loop** — one pipelined connection offering queries at a fixed
  arrival ``rate`` regardless of completions (the coordinated-omission-
  free model). Latency includes queue delay, so driving the rate past
  capacity shows the p99 knee the closed loop hides.

Both return a :class:`LoadReport` with achieved throughput, typed error
counts (admission rejections are *expected* under overload and counted
separately from failures), and p50/p95/p99 latency from the raw sample
set (NumPy-matching interpolation via :func:`repro.obs.histogram.percentile`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    BackpressureError,
    ServeError,
    ShardUnavailableError,
)
from repro.obs.histogram import percentile
from repro.serve.client import ServeClient
from repro.utils.validation import check_positive


@dataclass
class LoadReport:
    """What one load-generation run offered, achieved, and observed."""

    mode: str  # "closed" | "open"
    seconds: float
    clients: int
    offered_qps: float | None
    sent: int
    ok: int
    rejected: int
    shard_errors: int
    other_errors: int
    latencies_ms: list[float] = field(default_factory=list, repr=False)

    @property
    def achieved_qps(self) -> float:
        return self.ok / self.seconds if self.seconds > 0 else 0.0

    def percentile_ms(self, q: float) -> float | None:
        if not self.latencies_ms:
            return None
        return percentile(sorted(self.latencies_ms), q)

    def as_dict(self) -> dict:
        """JSON-able summary (drops the raw samples)."""
        return {
            "mode": self.mode,
            "seconds": self.seconds,
            "clients": self.clients,
            "offered_qps": self.offered_qps,
            "sent": self.sent,
            "ok": self.ok,
            "rejected": self.rejected,
            "shard_errors": self.shard_errors,
            "other_errors": self.other_errors,
            "achieved_qps": self.achieved_qps,
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
            "max_ms": max(self.latencies_ms) if self.latencies_ms else None,
        }


def discover_universe(host: str, port: int, timeout: float = 30.0) -> tuple[int, int]:
    """(num_vertices, kmax) of the index behind a frontend, via ``stats``."""
    with ServeClient(host, port, timeout=timeout) as client:
        frontend = client.stats()["frontend"]
    return int(frontend["num_vertices"]), int(frontend["kmax"])


def default_ks(kmax: int) -> list[int]:
    """The k values a load run samples from: 3 up to min(kmax, 8)."""
    return list(range(3, max(kmax, 3) + 1))[:6] or [3]


class _Counts:
    """Shared tally guarded by one lock (worker threads report here)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.sent = 0
        self.ok = 0
        self.rejected = 0
        self.shard_errors = 0
        self.other_errors = 0
        self.latencies_ms: list[float] = []

    def record(self, outcome: str, latency_ms: float | None = None) -> None:
        with self.lock:
            self.sent += 1
            if outcome == "ok":
                self.ok += 1
                if latency_ms is not None:
                    self.latencies_ms.append(latency_ms)
            elif outcome == "rejected":
                self.rejected += 1
            elif outcome == "shard":
                self.shard_errors += 1
            else:
                self.other_errors += 1


def _classify(exc: Exception) -> str:
    if isinstance(exc, BackpressureError):
        return "rejected"
    if isinstance(exc, ShardUnavailableError):
        return "shard"
    return "other"


def closed_loop(
    host: str,
    port: int,
    *,
    clients: int,
    seconds: float,
    num_vertices: int,
    ks: list[int],
    seed: int = 0,
    timeout: float = 60.0,
) -> LoadReport:
    """``clients`` synchronous connections at full tilt for ``seconds``."""
    import random

    check_positive("clients", clients)
    check_positive("num_vertices", num_vertices)
    counts = _Counts()
    deadline = time.perf_counter() + seconds

    def worker(wid: int) -> None:
        rng = random.Random(seed * 1009 + wid)
        with ServeClient(host, port, timeout=timeout) as client:
            while time.perf_counter() < deadline:
                vertex = rng.randrange(num_vertices)
                k = rng.choice(ks)
                t0 = time.perf_counter()
                try:
                    client.query(vertex, k)
                except ServeError as exc:
                    counts.record(_classify(exc))
                else:
                    counts.record("ok", (time.perf_counter() - t0) * 1000.0)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start
    return LoadReport(
        mode="closed", seconds=elapsed, clients=clients, offered_qps=None,
        sent=counts.sent, ok=counts.ok, rejected=counts.rejected,
        shard_errors=counts.shard_errors, other_errors=counts.other_errors,
        latencies_ms=counts.latencies_ms,
    )


def open_loop(
    host: str,
    port: int,
    *,
    rate: float,
    seconds: float,
    num_vertices: int,
    ks: list[int],
    seed: int = 0,
    timeout: float = 60.0,
    drain_timeout: float = 30.0,
) -> LoadReport:
    """Offer a fixed arrival rate over one pipelined connection.

    The sender never waits for answers (no coordinated omission): a
    request scheduled at ``t_i = start + i/rate`` is sent at ``t_i``
    even when earlier answers are still outstanding, so queue delay
    shows up in the latency distribution instead of suppressing load.
    """
    import random

    check_positive("rate", rate)
    check_positive("num_vertices", num_vertices)
    counts = _Counts()
    send_times: dict[Any, float] = {}
    rng = random.Random(seed)
    client = ServeClient(host, port, timeout=timeout)
    outstanding: set[Any] = set()
    outstanding_lock = threading.Lock()
    #: sentinel the sender pings after its last query; once its response
    #: is seen AND nothing is outstanding, the reader is fully drained
    done_id = "lg-done"
    done_seen = threading.Event()

    def reader() -> None:
        while True:
            with outstanding_lock:
                drained = done_seen.is_set() and not outstanding
            if drained:
                return
            try:
                resp = client.recv()
            except ServeError:
                return  # connection closed with requests outstanding
            now = time.perf_counter()
            rid = resp.get("id")
            if rid == done_id:
                done_seen.set()
                continue
            with outstanding_lock:
                outstanding.discard(rid)
            t0 = send_times.get(rid)
            if resp.get("ok"):
                counts.record(
                    "ok", None if t0 is None else (now - t0) * 1000.0
                )
            else:
                err = (resp.get("error") or {}).get("type")
                counts.record(
                    "rejected" if err == "backpressure"
                    else "shard" if err == "shard_unavailable"
                    else "other"
                )

    reader_thread = threading.Thread(target=reader, daemon=True)
    reader_thread.start()
    start = time.perf_counter()
    i = 0
    try:
        while True:
            target = start + i / rate
            now = time.perf_counter()
            if target - start >= seconds:
                break
            if target > now:
                time.sleep(target - now)
            vertex = rng.randrange(num_vertices)
            k = rng.choice(ks)
            rid = f"lg-{i}"
            with outstanding_lock:
                outstanding.add(rid)
            send_times[rid] = time.perf_counter()
            client.send("query", req_id=rid, vertex=vertex, k=k)
            i += 1
    finally:
        client.send("ping", req_id=done_id)
        reader_thread.join(timeout=drain_timeout)
        elapsed = time.perf_counter() - start
        client.close()
    return LoadReport(
        mode="open", seconds=elapsed, clients=1, offered_qps=rate,
        sent=i, ok=counts.ok, rejected=counts.rejected,
        shard_errors=counts.shard_errors, other_errors=counts.other_errors,
        latencies_ms=counts.latencies_ms,
    )
