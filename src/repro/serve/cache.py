"""Thread-safe LRU cache for materialized query results.

Keys are ``(vertex, k)``; values are the canonical community lists the
engine returned. Entries are treated as immutable (``Community`` is a
frozen dataclass) so a hit hands back the cached list itself. The cache
exposes explicit invalidation — the hook
:class:`~repro.equitruss.dynamic.DynamicEquiTruss` updates trigger via
``QueryEngine.refresh`` — plus hit/miss/eviction counters mirrored into
the ``repro.serve.cache.*`` metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.errors import InvalidParameterError
from repro.obs import metrics


class QueryCache:
    """LRU over ``(vertex, k)`` with explicit invalidation.

    ``capacity=0`` disables caching entirely (every lookup misses and
    ``put`` is a no-op) — useful for differential tests of the uncached
    path and for memory-constrained serving.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise InvalidParameterError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: Hashable) -> Any:
        """The cached value (refreshed to most-recent), or ``None``."""
        with self._lock:
            try:
                value = self._data.pop(key)
            except KeyError:
                self.misses += 1
                metrics.inc("repro.serve.cache.misses")
                return None
            self._data[key] = value
            self.hits += 1
        metrics.inc("repro.serve.cache.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._data.pop(key, None)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
                metrics.inc("repro.serve.cache.evictions")
            size = len(self._data)
        metrics.set_gauge("repro.serve.cache.size", size)

    def invalidate(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._data.clear()
            self.invalidations += 1
        metrics.inc("repro.serve.cache.invalidations")
        metrics.set_gauge("repro.serve.cache.size", 0)
