"""Legacy setup shim: enables editable installs on environments whose
setuptools predates PEP 660 wheel-less editable builds (no `wheel` pkg,
no network). All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
