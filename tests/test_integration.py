"""End-to-end integration: every subsystem on one realistic workload.

Exercises generate → build (all variants) → semantic verification →
persistence → queries (basic/advanced, all engines) → dynamic update →
distributed kernels, on a scaled-down Table-3 stand-in.
"""

import numpy as np
import pytest

from repro import (
    DynamicEquiTruss,
    build_index,
    connected_components,
    distributed_support,
    distributed_triangle_count,
    enumerate_triangles,
    max_k_communities,
    online_communities,
    search_communities,
    truss_decomposition,
    verify_index_semantics,
)
from repro.community.model import as_edge_set_family
from repro.graph import CSRGraph
from repro.graph.datasets import load_dataset


@pytest.fixture(scope="module")
def workload():
    edges = load_dataset("amazon", scale_factor=0.5)
    graph = CSRGraph.from_edgelist(edges)
    tri = enumerate_triangles(graph)
    dec = truss_decomposition(graph, triangles=tri)
    return graph, tri, dec


def test_full_pipeline_all_variants(workload, tmp_path):
    graph, tri, dec = workload
    indexes = {
        v: build_index(graph, v, decomp=dec, triangles=tri).index
        for v in ("baseline", "coptimal", "afforest")
    }
    ref = indexes["afforest"]
    assert all(idx == ref for idx in indexes.values())
    verify_index_semantics(graph, ref)

    # persistence roundtrip
    p = tmp_path / "idx.npz"
    ref.save(p)
    from repro import EquiTrussIndex

    assert EquiTrussIndex.load(p) == ref


def test_queries_against_ground_truth(workload):
    graph, tri, dec = workload
    index = build_index(graph, "afforest", decomp=dec, triangles=tri).index
    rng = np.random.default_rng(0)
    deg = graph.degrees()
    queries = rng.choice(np.flatnonzero(deg >= 4), size=8, replace=False)
    for q in queries.tolist():
        k, comms = max_k_communities(index, q)
        if k == 0:
            continue
        assert as_edge_set_family(comms) == as_edge_set_family(
            online_communities(graph, q, k, decomp=dec)
        )
        mid_k = max(3, k - 1)
        assert as_edge_set_family(
            search_communities(index, q, mid_k)
        ) == as_edge_set_family(online_communities(graph, q, mid_k, decomp=dec))


def test_dynamic_update_on_workload(workload):
    graph, tri, dec = workload
    dyn = DynamicEquiTruss(graph)
    rng = np.random.default_rng(1)
    us = rng.integers(0, graph.num_vertices, size=3)
    vs = rng.integers(0, graph.num_vertices, size=3)
    keep = us != vs
    dyn.insert_edges(us[keep], vs[keep])
    assert dyn.index == build_index(dyn.graph, "afforest").index


def test_distributed_agrees_with_local(workload):
    graph, tri, dec = workload
    count, _ = distributed_triangle_count(graph.edges, 3)
    assert count == tri.count
    sup, _ = distributed_support(graph.edges, 3)
    assert np.array_equal(sup, tri.support())


def test_cc_methods_on_workload(workload):
    graph, _, _ = workload
    ref = connected_components(graph, method="sv")
    for method in ("afforest", "label_prop", "bfs"):
        assert np.array_equal(connected_components(graph, method=method), ref)
