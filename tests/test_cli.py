"""End-to-end CLI tests (generate → index → query → info)."""

import pytest

from repro.cli import main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_generate_index_query_info_roundtrip(tmp_path, capsys):
    graph_path = tmp_path / "g.npz"
    index_path = tmp_path / "g.index.npz"

    assert main(["generate", "gnm", "--n", "60", "--m", "280",
                 "--seed", "4", "--out", str(graph_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote 60 vertices / 280 edges" in out

    assert main(["index", str(graph_path), "--out", str(index_path),
                 "--variant", "coptimal", "--breakdown"]) == 0
    out = capsys.readouterr().out
    assert "built coptimal index" in out
    assert "SpNode" in out

    assert main(["query", str(index_path), "--vertex", "0", "--max-k"]) == 0
    capsys.readouterr()

    assert main(["query", str(index_path), "--vertex", "0", "--top-r", "2"]) == 0
    capsys.readouterr()

    assert main(["info", str(graph_path)]) == 0
    out = capsys.readouterr().out
    assert "graph: 60 vertices" in out

    assert main(["info", str(index_path)]) == 0
    out = capsys.readouterr().out
    assert "EquiTruss index" in out
    assert "num_supernodes" in out


def test_verify_subcommand(tmp_path, capsys):
    graph_path = tmp_path / "g.npz"
    index_path = tmp_path / "i.npz"
    main(["generate", "gnm", "--n", "40", "--m", "180", "--seed", "2",
          "--out", str(graph_path)])
    main(["index", str(graph_path), "--out", str(index_path)])
    capsys.readouterr()
    assert main(["verify", str(index_path)]) == 0
    assert "OK" in capsys.readouterr().out
    # corrupt the index and verify again
    from repro.equitruss import EquiTrussIndex

    idx = EquiTrussIndex.load(index_path)
    if idx.superedges.shape[0]:
        idx.superedges = idx.superedges[:-1]
        idx.save(index_path)
        assert main(["verify", str(index_path)]) == 1
        assert "FAILED" in capsys.readouterr().err


def test_generate_dataset_and_text_format(tmp_path, capsys):
    out = tmp_path / "amazon.txt"
    assert main(["generate", "amazon", "--scale-factor", "0.5",
                 "--out", str(out)]) == 0
    assert out.exists()
    text = out.read_text()
    assert text.startswith("#")


def test_generate_rmat(tmp_path, capsys):
    out = tmp_path / "r.npz"
    assert main(["generate", "rmat", "--scale", "7", "--edge-factor", "4",
                 "--out", str(out)]) == 0
    from repro.graph.io import load_npz

    edges = load_npz(out)
    assert edges.num_vertices == 128


def test_generate_unknown_model(tmp_path, capsys):
    assert main(["generate", "nope", "--out", str(tmp_path / "x.npz")]) == 2


def test_query_requires_level(tmp_path, capsys):
    graph_path = tmp_path / "g.npz"
    index_path = tmp_path / "i.npz"
    main(["generate", "gnm", "--n", "20", "--m", "60", "--out", str(graph_path)])
    main(["index", str(graph_path), "--out", str(index_path)])
    capsys.readouterr()
    assert main(["query", str(index_path), "--vertex", "0"]) == 2


def test_index_context_flags_and_trace_memory(tmp_path, capsys):
    """--dtype/--backend/--workers on index, ws column in info --trace."""
    graph_path = tmp_path / "g.npz"
    trace_path = tmp_path / "run.trace.jsonl"
    main(["generate", "gnm", "--n", "50", "--m", "240", "--seed", "7",
          "--out", str(graph_path)])
    capsys.readouterr()

    outs = {}
    for dtype in ("auto", "int32", "int64"):
        index_path = tmp_path / f"i-{dtype}.npz"
        assert main(["index", str(graph_path), "--out", str(index_path),
                     "--dtype", dtype, "--backend", "thread", "--workers", "2",
                     "--trace-out", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "peak workspace" in out
        outs[dtype] = out
    assert "dtype=int32" in outs["auto"]
    assert "dtype=int64" in outs["int64"]

    # the three builds agree bit-for-bit
    from repro.equitruss import EquiTrussIndex

    built = {d: EquiTrussIndex.load(tmp_path / f"i-{d}.npz")
             for d in ("auto", "int32", "int64")}
    assert built["auto"] == built["int64"] == built["int32"]

    # the exported trace carries per-kernel workspace peaks
    assert main(["info", "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "ws=" in out

    assert main(["verify", str(tmp_path / 'i-auto.npz'), "--dtype", "int32"]) == 0
    assert "OK" in capsys.readouterr().out


def test_query_specific_k(tmp_path, capsys):
    graph_path = tmp_path / "g.npz"
    index_path = tmp_path / "i.npz"
    main(["generate", "gnm", "--n", "30", "--m", "160", "--seed", "1",
          "--out", str(graph_path)])
    main(["index", str(graph_path), "--out", str(index_path)])
    capsys.readouterr()
    assert main(["query", str(index_path), "--vertex", "0", "--k", "3"]) == 0
    out = capsys.readouterr().out
    assert "k=3" in out or "no community" in out


@pytest.fixture()
def indexed_graph(tmp_path):
    graph_path = tmp_path / "g.npz"
    index_path = tmp_path / "g.index.npz"
    main(["generate", "gnm", "--n", "60", "--m", "280", "--seed", "4",
          "--out", str(graph_path)])
    main(["index", str(graph_path), "--out", str(index_path)])
    return index_path


def test_query_components_engine_single_vertex(indexed_graph, capsys):
    capsys.readouterr()
    assert main(["query", str(indexed_graph), "--vertex", "0", "--k", "3",
                 "--engine", "components"]) == 0
    out = capsys.readouterr().out
    assert "cache: 0 hits / 1 misses" in out


def test_query_engines_agree(indexed_graph, capsys):
    capsys.readouterr()
    assert main(["query", str(indexed_graph), "--vertex", "0", "--k", "3",
                 "--engine", "bfs"]) == 0
    bfs_out = capsys.readouterr().out
    assert main(["query", str(indexed_graph), "--vertex", "0", "--k", "3",
                 "--engine", "components"]) == 0
    comp_out = capsys.readouterr().out
    bfs_lines = [ln for ln in bfs_out.splitlines() if ln.startswith("[")]
    comp_lines = [ln for ln in comp_out.splitlines() if ln.startswith("[")]
    assert bfs_lines == comp_lines


@pytest.mark.parametrize("engine", ["bfs", "components"])
def test_query_batch_file(indexed_graph, tmp_path, capsys, engine):
    batch = tmp_path / "batch.txt"
    batch.write_text("0\n5 3\n12 4\n# comment\n\n7\n")
    capsys.readouterr()
    assert main(["query", str(indexed_graph), "--batch-file", str(batch),
                 "--k", "3", "--engine", engine]) == 0
    out = capsys.readouterr().out
    assert "vertex 5 k=3:" in out
    assert "vertex 12 k=4:" in out
    assert "served 4 queries" in out and f"engine={engine}" in out


def test_query_batch_results_identical_across_engines(indexed_graph, tmp_path, capsys):
    batch = tmp_path / "batch.txt"
    batch.write_text("".join(f"{v}\n" for v in range(0, 60, 3)))
    outputs = {}
    for engine in ("bfs", "components"):
        capsys.readouterr()
        assert main(["query", str(indexed_graph), "--batch-file", str(batch),
                     "--k", "3", "--engine", engine]) == 0
        outputs[engine] = [
            ln for ln in capsys.readouterr().out.splitlines()
            if ln.startswith("vertex ")
        ]
    assert outputs["bfs"] == outputs["components"]


def test_query_warm_cache_and_trace_out(indexed_graph, tmp_path, capsys):
    from repro.obs.export import read_trace_jsonl

    trace = tmp_path / "trace.jsonl"
    capsys.readouterr()
    assert main(["query", str(indexed_graph), "--vertex", "0", "--k", "3",
                 "--engine", "components", "--warm-cache",
                 "--trace-out", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "warmed" in out
    names = {rec["name"] for rec in read_trace_jsonl(trace)}
    assert "Query" in names
    assert "PrecomputeComponents" in names


def test_query_bfs_trace_has_query_spans(indexed_graph, tmp_path, capsys):
    from repro.obs.export import read_trace_jsonl

    trace = tmp_path / "trace.jsonl"
    assert main(["query", str(indexed_graph), "--vertex", "0", "--k", "3",
                 "--engine", "bfs", "--trace-out", str(trace)]) == 0
    capsys.readouterr()
    assert "Query" in {rec["name"] for rec in read_trace_jsonl(trace)}


def test_query_flag_validation(indexed_graph, tmp_path, capsys):
    # components engine rejects --max-k / --top-r
    assert main(["query", str(indexed_graph), "--vertex", "0", "--max-k",
                 "--engine", "components"]) == 2
    # --batch-file and --vertex are exclusive
    batch = tmp_path / "b.txt"
    batch.write_text("0\n")
    assert main(["query", str(indexed_graph), "--vertex", "0",
                 "--batch-file", str(batch)]) == 2
    # neither --vertex nor --batch-file
    assert main(["query", str(indexed_graph), "--k", "3"]) == 2
    # batch line without k and no --k default
    bad = tmp_path / "bad.txt"
    bad.write_text("0\n")
    assert main(["query", str(indexed_graph), "--batch-file", str(bad)]) == 2
    # malformed batch line
    bad.write_text("0 3 9\n")
    assert main(["query", str(indexed_graph), "--batch-file", str(bad),
                 "--k", "3"]) == 2
    capsys.readouterr()


def test_store_write_attach_inspect_verify_roundtrip(tmp_path, capsys):
    graph_path = tmp_path / "g.npz"
    index_path = tmp_path / "g.index.npz"
    store_path = tmp_path / "g.eqtsidx"

    assert main(["generate", "gnm", "--n", "80", "--m", "500",
                 "--seed", "6", "--out", str(graph_path)]) == 0
    capsys.readouterr()

    assert main(["index", str(graph_path), "--out", str(index_path),
                 "--store-out", str(store_path),
                 "--store-generation", "3"]) == 0
    out = capsys.readouterr().out
    assert "wrote store (gen 3" in out
    assert store_path.exists()

    assert main(["store", "inspect", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "generation 3" in out
    assert "index.trussness" in out

    assert main(["store", "inspect", str(store_path), "--json"]) == 0
    import json

    doc = json.loads(capsys.readouterr().out)
    assert doc["generation"] == 3 and doc["has_components"]

    assert main(["store", "verify", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out

    assert main(["attach", str(store_path), "--verify",
                 "--vertex", "0", "--k", "3"]) == 0
    out = capsys.readouterr().out
    assert "attached" in out and "gen 3" in out

    assert main(["attach", str(store_path), "--refresh"]) == 0
    out = capsys.readouterr().out
    assert "up to date" in out or "journal" in out or "re-attached" in out


def test_store_commands_reject_garbage(tmp_path, capsys):
    bogus = tmp_path / "bogus.eqtsidx"
    bogus.write_bytes(b"NOTASTOR" + b"\x00" * 64)
    assert main(["store", "verify", str(bogus)]) == 1
    assert main(["store", "inspect", str(bogus)]) == 1
    assert main(["attach", str(bogus)]) == 1
    err = capsys.readouterr().err
    assert "FAILED" in err


def test_serve_and_loadgen_roundtrip(tmp_path, capsys):
    import json
    import threading
    import time

    graph_path = tmp_path / "g.npz"
    store_path = tmp_path / "g.eqtsidx"
    endpoint = tmp_path / "endpoint.txt"
    assert main(["generate", "gnm", "--n", "60", "--m", "320",
                 "--seed", "9", "--out", str(graph_path)]) == 0
    assert main(["index", str(graph_path), "--out", str(tmp_path / "i.npz"),
                 "--store-out", str(store_path)]) == 0
    capsys.readouterr()

    rc = {}
    server = threading.Thread(
        target=lambda: rc.setdefault("serve", main(
            ["serve", str(store_path), "--shards", "2", "--duration", "15",
             "--endpoint-file", str(endpoint)]
        )),
        daemon=True,
    )
    server.start()
    deadline = time.time() + 30
    while not endpoint.exists() and time.time() < deadline:
        time.sleep(0.05)
    assert endpoint.exists(), "serve never wrote its endpoint file"
    host, port = endpoint.read_text().split()
    capsys.readouterr()  # drain the serve thread's startup banner

    assert main(["loadgen", "--host", host, "--port", port,
                 "--mode", "closed", "--clients", "2", "--seconds", "1",
                 "--json"]) == 0
    out = capsys.readouterr().out
    report = json.loads(out[out.index("{"):])
    assert report["mode"] == "closed" and report["ok"] > 0
    assert report["p99_ms"] is not None

    assert main(["loadgen", "--host", host, "--port", port,
                 "--mode", "open", "--rate", "40", "--seconds", "1"]) == 0
    out = capsys.readouterr().out
    assert "open load" in out and "qps achieved" in out

    # flag validation + unreachable frontend are typed failures
    assert main(["loadgen", "--host", host, "--port", port,
                 "--mode", "open"]) == 2
    assert main(["loadgen", "--host", "127.0.0.1", "--port", "1",
                 "--mode", "closed", "--seconds", "0.2"]) == 1
    server.join(timeout=60)
    assert rc.get("serve") == 0
