"""The benign-race claim: racy threaded SV matches ground truth."""

import numpy as np
import pytest

from repro.cc.threaded import shiloach_vishkin_threaded
from repro.errors import InvalidParameterError
from repro.graph import CSRGraph, build_graph
from repro.graph.generators import complete_graph, erdos_renyi_gnm, rmat_graph


def canon(x):
    seen = {}
    out = np.empty_like(x)
    for i, v in enumerate(x.tolist()):
        out[i] = seen.setdefault(v, len(seen))
    return out


def scipy_labels(graph):
    import scipy.sparse.csgraph as csgraph

    _, labels = csgraph.connected_components(graph.to_scipy(), directed=False)
    return canon(labels.astype(np.int64))


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_threaded_sv_matches_scipy(workers):
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(120, 110, seed=3))
    labels = shiloach_vishkin_threaded(g, num_workers=workers)
    assert np.array_equal(canon(labels), scipy_labels(g))


def test_repeated_runs_stable_under_races():
    """Many runs with different interleavings always converge to the
    same partition — the paper's benign-race claim."""
    g = CSRGraph.from_edgelist(rmat_graph(7, 3, seed=5))
    ref = scipy_labels(g)
    for _ in range(5):
        labels = shiloach_vishkin_threaded(g, num_workers=6)
        assert np.array_equal(canon(labels), ref)


def test_single_component():
    g = CSRGraph.from_edgelist(complete_graph(20))
    labels = shiloach_vishkin_threaded(g, num_workers=3)
    assert np.unique(labels).size == 1


def test_roots_are_minimum_ids():
    g = build_graph([0, 3, 5], [1, 4, 6], num_vertices=8)
    labels = shiloach_vishkin_threaded(g, num_workers=2)
    assert labels.tolist() == [0, 0, 2, 3, 3, 5, 5, 7]


def test_worker_validation():
    g = CSRGraph.from_edgelist(complete_graph(3))
    with pytest.raises(InvalidParameterError):
        shiloach_vishkin_threaded(g, num_workers=0)
