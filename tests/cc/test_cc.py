"""Unit + property tests: all CC methods agree with scipy ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc import connected_components, normalize_labels
from repro.errors import InvalidParameterError
from repro.graph import CSRGraph, build_graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    rmat_graph,
)
from repro.parallel import ExecutionPolicy

METHODS = ["sv", "afforest", "label_prop", "bfs", "union_find"]


def scipy_labels(graph):
    import scipy.sparse.csgraph as csgraph

    if graph.num_vertices == 0:
        return np.empty(0, dtype=np.int64)
    _, labels = csgraph.connected_components(graph.to_scipy(), directed=False)
    return normalize_labels(labels.astype(np.int64))


def assert_same_partition(a, b):
    """Two labelings describe the same partition."""
    assert a.shape == b.shape
    # normalize both to first-occurrence order
    def canon(x):
        seen = {}
        out = np.empty_like(x)
        for i, v in enumerate(x.tolist()):
            out[i] = seen.setdefault(v, len(seen))
        return out

    assert np.array_equal(canon(a), canon(b))


@pytest.mark.parametrize("method", METHODS)
def test_disconnected_cliques(method):
    # two K4s and an isolated vertex
    src = [0, 0, 0, 1, 1, 2, 4, 4, 4, 5, 5, 6]
    dst = [1, 2, 3, 2, 3, 3, 5, 6, 7, 6, 7, 7]
    g = build_graph(src, dst, num_vertices=9)
    labels = connected_components(g, method=method)
    assert_same_partition(labels, scipy_labels(g))
    assert len(set(labels.tolist())) == 3


@pytest.mark.parametrize("method", METHODS)
def test_random_graphs_match_scipy(method):
    for seed in range(4):
        g = CSRGraph.from_edgelist(erdos_renyi_gnm(60, 55, seed=seed))
        assert_same_partition(
            connected_components(g, method=method), scipy_labels(g)
        )


@pytest.mark.parametrize("method", METHODS)
def test_single_component(method):
    g = CSRGraph.from_edgelist(complete_graph(10))
    labels = connected_components(g, method=method)
    assert np.all(labels == 0)


@pytest.mark.parametrize("method", METHODS)
def test_no_edges(method):
    g = CSRGraph.from_edgelist(empty_graph(5))
    labels = connected_components(g, method=method)
    assert labels.tolist() == [0, 1, 2, 3, 4]


def test_unknown_method():
    g = CSRGraph.from_edgelist(cycle_graph(4))
    with pytest.raises(InvalidParameterError):
        connected_components(g, method="quantum")


def test_unnormalized_labels_are_min_ids():
    g = build_graph([0, 3], [1, 4], num_vertices=5)
    labels = connected_components(g, method="sv", normalize=False)
    assert labels.tolist() == [0, 0, 2, 3, 3]


def test_sv_records_rounds():
    g = CSRGraph.from_edgelist(rmat_graph(8, 4, seed=0))
    policy = ExecutionPolicy()
    connected_components(g, method="sv", policy=policy)
    (region,) = policy.trace.regions
    assert region.name == "SV"
    assert region.rounds >= 1
    assert region.work > 0


def test_afforest_seed_invariance():
    g = CSRGraph.from_edgelist(rmat_graph(9, 4, seed=1))
    a = connected_components(g, method="afforest", policy=None)
    for seed in (1, 2, 3):
        from repro.cc import afforest

        b = normalize_labels(afforest(g, seed=seed))
        assert_same_partition(a, b)


def test_afforest_neighbor_rounds_invariance():
    from repro.cc import afforest

    g = CSRGraph.from_edgelist(erdos_renyi_gnm(80, 100, seed=7))
    base = normalize_labels(afforest(g, neighbor_rounds=2))
    for rounds in (0, 1, 4):
        assert_same_partition(base, normalize_labels(afforest(g, neighbor_rounds=rounds)))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    data=st.data(),
)
def test_property_all_methods_agree(n, data):
    m = data.draw(st.integers(min_value=0, max_value=min(2 * n, n * (n - 1) // 2)))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(n, m, seed=seed))
    ref = scipy_labels(g)
    for method in METHODS:
        assert_same_partition(connected_components(g, method=method), ref)


def test_union_find_direct():
    from repro.cc import UnionFind

    uf = UnionFind(6)
    assert uf.union(0, 1)
    assert not uf.union(1, 0)
    assert uf.union(2, 3)
    assert uf.union(1, 3)
    assert uf.same(0, 2)
    assert not uf.same(0, 4)
    labels = uf.labels()
    assert labels.tolist() == [0, 0, 0, 0, 4, 5]
