"""Tests for DOT exports."""

from repro.community import search_communities
from repro.equitruss import build_index
from repro.graph import CSRGraph
from repro.graph.generators import paper_example_graph
from repro.viz import community_dot, summary_graph_dot


def make_index():
    g = CSRGraph.from_edgelist(paper_example_graph())
    return build_index(g, "afforest").index


def test_summary_graph_dot_structure():
    index = make_index()
    dot = summary_graph_dot(index)
    assert dot.startswith("graph equitruss {")
    assert dot.rstrip().endswith("}")
    assert dot.count(" -- ") == index.num_superedges
    for sn in range(index.num_supernodes):
        assert f"nu{sn} [label=" in dot
    assert "k=5" in dot


def test_summary_graph_dot_truncation():
    index = make_index()
    dot = summary_graph_dot(index, max_supernodes=2)
    assert "nu4 [label=" not in dot
    # only superedges among retained supernodes survive
    assert dot.count(" -- ") <= index.num_superedges


def test_community_dot():
    index = make_index()
    (c,) = search_communities(index, 6, 5)
    dot = community_dot(c, highlight=6)
    assert dot.count(" -- ") == c.num_edges
    assert "v6 [style=filled" in dot
    for v in c.vertices().tolist():
        assert f"v{v}" in dot
