"""Community search: indexed results equal online ground truth equal TCP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community import TCPIndex, online_communities, search_communities
from repro.community.model import as_edge_set_family
from repro.equitruss import build_index
from repro.errors import InvalidParameterError
from repro.graph import CSRGraph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_gnm,
    paper_example_graph,
    planted_community_graph,
)


@pytest.fixture(scope="module")
def paper():
    g = CSRGraph.from_edgelist(paper_example_graph())
    return g, build_index(g, "afforest").index


def test_paper_example_queries(paper):
    g, index = paper
    # vertex 5, k=4: one community (nu3 alone; nu4 is reachable only
    # through... nu3-nu4 superedge has min trussness 4 -> included)
    comms = search_communities(index, 5, 4)
    online = online_communities(g, 5, 4)
    assert as_edge_set_family(comms) == as_edge_set_family(online)
    # vertex 0, k=5: vertex 0 touches no 5-truss edge
    assert search_communities(index, 0, 5) == []
    # vertex 6, k=5: exactly the K5
    (c5,) = search_communities(index, 6, 5)
    assert c5.num_edges == 10
    assert set(c5.vertices().tolist()) == {6, 7, 8, 9, 10}


def test_overlapping_membership(paper):
    g, index = paper
    # vertex 2 at k=3 may belong to several communities; compare with online
    comms = search_communities(index, 2, 3)
    online = online_communities(g, 2, 3)
    assert as_edge_set_family(comms) == as_edge_set_family(online)
    assert all(c.contains_vertex(2) for c in comms)


@pytest.mark.parametrize("k", [3, 4, 5])
def test_paper_example_all_vertices_all_ks(paper, k):
    g, index = paper
    tcp = TCPIndex(g)
    for q in range(g.num_vertices):
        indexed = as_edge_set_family(search_communities(index, q, k))
        online = as_edge_set_family(online_communities(g, q, k))
        viatcp = as_edge_set_family(tcp.query(q, k))
        assert indexed == online, (q, k)
        assert viatcp == online, (q, k)


def test_random_graphs_indexed_equals_online():
    for seed in range(3):
        g = CSRGraph.from_edgelist(erdos_renyi_gnm(35, 160, seed=seed))
        index = build_index(g, "coptimal").index
        ks = np.unique(index.trussness)
        for k in ks[ks >= 3].tolist():
            for q in range(0, g.num_vertices, 7):
                assert as_edge_set_family(
                    search_communities(index, q, k)
                ) == as_edge_set_family(online_communities(g, q, k)), (seed, k, q)


def test_tcp_index_random_graph():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(25, 110, seed=9))
    tcp = TCPIndex(g)
    index = build_index(g, "afforest").index
    for q in range(0, g.num_vertices, 3):
        for k in (3, 4):
            assert as_edge_set_family(tcp.query(q, k)) == as_edge_set_family(
                online_communities(g, q, k)
            ), (q, k)
    assert search_communities(index, 0, 3) is not None  # smoke


def test_planted_communities_recovered():
    edges, comms = planted_community_graph(3, 7, 7, p_intra=1.0, overlap=0, seed=2)
    g = CSRGraph.from_edgelist(edges)
    index = build_index(g, "afforest").index
    member = int(comms[1][0])
    (found,) = search_communities(index, member, 7)
    assert set(found.vertices().tolist()) == set(comms[1].tolist())


def test_query_candidate_ks(paper):
    from repro.community.search import query_candidate_ks

    g, index = paper
    assert query_candidate_ks(index, 6).tolist() == [3, 4, 5]
    assert query_candidate_ks(index, 0).tolist() == [3, 4]


def test_validation_errors(paper):
    g, index = paper
    with pytest.raises(InvalidParameterError):
        search_communities(index, 0, 2)
    with pytest.raises(InvalidParameterError):
        online_communities(g, 0, 2)
    with pytest.raises(InvalidParameterError):
        online_communities(g, 99, 3)
    tcp = TCPIndex(g)
    with pytest.raises(InvalidParameterError):
        tcp.query(0, 2)
    with pytest.raises(InvalidParameterError):
        tcp.query(99, 3)


def test_no_communities_in_sparse_graph():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(30, 15, seed=1))
    index = build_index(g, "afforest").index
    assert search_communities(index, 0, 3) == []
    assert online_communities(g, 0, 3) == []


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=18),
    data=st.data(),
)
def test_property_indexed_equals_online(n, data):
    max_m = n * (n - 1) // 2
    m = data.draw(st.integers(min_value=0, max_value=max_m))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    q = data.draw(st.integers(min_value=0, max_value=n - 1))
    k = data.draw(st.integers(min_value=3, max_value=6))
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(n, m, seed=seed))
    index = build_index(g, "baseline").index
    assert as_edge_set_family(search_communities(index, q, k)) == as_edge_set_family(
        online_communities(g, q, k)
    )


def test_community_model_helpers():
    g = CSRGraph.from_edgelist(complete_graph(5))
    index = build_index(g, "afforest").index
    (c,) = search_communities(index, 0, 5)
    assert c.num_vertices == 5
    assert c.contains_vertex(4)
    assert not c.contains_vertex(0) or c.contains_vertex(0)
    assert len(c.edge_tuples()) == 10
