"""Unit tests for community metrics."""


from repro.community import (
    community_conductance,
    community_density,
    community_edge_support,
    membership_counts,
    search_communities,
)
from repro.equitruss import build_index
from repro.graph import CSRGraph, build_graph
from repro.graph.generators import complete_graph, paper_example_graph


def community_for(g, q, k):
    index = build_index(g, "afforest").index
    return search_communities(index, q, k)


def test_density_of_clique_is_one():
    g = CSRGraph.from_edgelist(complete_graph(6))
    (c,) = community_for(g, 0, 6)
    assert community_density(c) == 1.0


def test_conductance_isolated_clique_zero():
    g = CSRGraph.from_edgelist(complete_graph(5))
    (c,) = community_for(g, 0, 5)
    assert community_conductance(c) == 0.0


def test_conductance_with_attachments():
    # K4 plus a pendant path 3-4-5-6-7: conductance > 0 for the K4 community
    g = build_graph(
        [0, 0, 0, 1, 1, 2, 3, 4, 5, 6], [1, 2, 3, 2, 3, 3, 4, 5, 6, 7]
    )
    (c,) = community_for(g, 0, 4)
    assert 0 < community_conductance(c) < 1


def test_edge_support_k5():
    g = CSRGraph.from_edgelist(paper_example_graph())
    (c,) = community_for(g, 9, 5)
    # inside the K5 every edge has support 3
    assert community_edge_support(c) == 3.0


def test_membership_counts_overlap():
    g = CSRGraph.from_edgelist(paper_example_graph())
    index = build_index(g, "afforest").index
    comms = search_communities(index, 2, 3)
    counts = membership_counts(comms, g.num_vertices)
    assert counts.max() >= 1
    assert counts[2] == len([c for c in comms if c.contains_vertex(2)])
