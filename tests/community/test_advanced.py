"""Tests for advanced index queries."""

import pytest

from repro.community import online_communities
from repro.community.advanced import (
    communities_for_all_k,
    max_k_communities,
    search_communities_multi,
    top_r_communities,
)
from repro.community.model import as_edge_set_family
from repro.equitruss import build_index
from repro.errors import InvalidParameterError
from repro.graph import CSRGraph
from repro.graph.generators import (
    erdos_renyi_gnm,
    paper_example_graph,
    planted_community_graph,
)


@pytest.fixture(scope="module")
def paper():
    g = CSRGraph.from_edgelist(paper_example_graph())
    return g, build_index(g, "afforest").index


def test_max_k_communities(paper):
    g, index = paper
    k, comms = max_k_communities(index, 9)
    assert k == 5
    assert len(comms) == 1
    assert set(comms[0].vertices().tolist()) == {6, 7, 8, 9, 10}
    # vertex with no trussness>=3 edge
    from repro.graph import build_graph

    g2 = build_graph([0, 1], [1, 2])
    idx2 = build_index(g2, "afforest").index
    assert max_k_communities(idx2, 0) == (0, [])


def test_max_k_matches_online(paper):
    g, index = paper
    for q in range(g.num_vertices):
        k, comms = max_k_communities(index, q)
        if k == 0:
            continue
        online = online_communities(g, q, k)
        assert as_edge_set_family(comms) == as_edge_set_family(online)
        # no community exists at k+1
        assert online_communities(g, q, k + 1) == []


def test_top_r(paper):
    g, index = paper
    top1 = top_r_communities(index, 6, 1)
    assert len(top1) == 1 and top1[0].k == 5
    top3 = top_r_communities(index, 6, 3)
    assert [c.k for c in top3] == [5, 4, 3]
    # r larger than available: returns everything
    everything = top_r_communities(index, 6, 100)
    assert len(everything) >= 3
    with pytest.raises(InvalidParameterError):
        top_r_communities(index, 6, 0)


def test_communities_for_all_k(paper):
    g, index = paper
    profile = communities_for_all_k(index, 2)
    assert sorted(profile) == [3, 4]
    for k, comms in profile.items():
        assert as_edge_set_family(comms) == as_edge_set_family(
            online_communities(g, 2, k)
        )


def test_multi_vertex_query(paper):
    g, index = paper
    # 6 and 10 are both in the K5
    comms = search_communities_multi(index, [6, 10], 5)
    assert len(comms) == 1
    # 0 and 9 never share a community at k=4
    assert search_communities_multi(index, [0, 9], 4) == []
    # singleton set behaves like plain search
    from repro.community import search_communities

    assert as_edge_set_family(
        search_communities_multi(index, [5], 4)
    ) == as_edge_set_family(search_communities(index, 5, 4))
    with pytest.raises(InvalidParameterError):
        search_communities_multi(index, [], 4)


def test_multi_vertex_on_planted():
    edges, comms = planted_community_graph(3, 7, 7, p_intra=1.0, overlap=1, seed=5)
    g = CSRGraph.from_edgelist(edges)
    index = build_index(g, "coptimal").index
    a, b = int(comms[0][1]), int(comms[0][3])
    found = search_communities_multi(index, [a, b], 6)
    assert len(found) == 1
    assert set(comms[0].tolist()) <= set(found[0].vertices().tolist())


def test_top_r_random_graph_consistency():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(40, 200, seed=8))
    index = build_index(g, "afforest").index
    for q in range(0, 40, 5):
        top = top_r_communities(index, q, 4)
        ks = [c.k for c in top]
        assert ks == sorted(ks, reverse=True)
        for c in top:
            assert c.contains_vertex(q)
