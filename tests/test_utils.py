"""Unit tests for the utils package."""

import time

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.utils import (
    KernelTimer,
    Timer,
    check_array_1d,
    check_in_range,
    check_nonnegative,
    check_positive,
    resolve_rng,
)


def test_timer_measures():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_timer_accumulates():
    t = Timer()
    t.start()
    t.stop()
    first = t.elapsed
    t.start()
    t.stop()
    assert t.elapsed >= first


def test_timer_stop_before_start():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_timer_start_while_running_raises():
    t = Timer()
    t.start()
    with pytest.raises(RuntimeError):
        t.start()  # a silent restart would discard the first origin
    # the failed start must not corrupt the running measurement
    t.stop()
    assert t.elapsed >= 0.0
    t.start()  # stopped timers restart fine
    t.stop()


def test_kernel_timer_accumulates_by_name():
    kt = KernelTimer()
    with kt.span("a"):
        pass
    kt.add("a", 1.0)
    kt.add("b", 3.0)
    assert kt.seconds("a") >= 1.0
    assert kt.seconds("missing") == 0.0
    assert kt.total >= 4.0
    names = [r.name for r in kt.breakdown()]
    assert names == ["a", "b"]


def test_kernel_timer_percentages():
    kt = KernelTimer()
    kt.add("x", 1.0)
    kt.add("y", 3.0)
    pct = kt.percentages()
    assert pct["x"] == pytest.approx(25.0)
    assert pct["y"] == pytest.approx(75.0)
    assert KernelTimer().percentages() == {}


def test_kernel_timer_merge():
    a, b = KernelTimer(), KernelTimer()
    a.add("k", 1.0)
    b.add("k", 2.0)
    b.add("j", 1.0)
    a.merge(b)
    assert a.seconds("k") == pytest.approx(3.0)
    assert a.seconds("j") == pytest.approx(1.0)


def test_kernel_timer_is_backed_by_a_tracer():
    from repro.obs.trace import Tracer

    kt = KernelTimer()
    assert isinstance(kt.tracer, Tracer)
    with kt.span("SpNode"):
        pass
    kt.add("SpEdge", 0.5)
    assert [sp.name for sp, _ in kt.tracer.walk()] == ["SpNode", "SpEdge"]
    assert kt.seconds("SpEdge") == pytest.approx(0.5)

    shared = Tracer()
    kt2 = KernelTimer(tracer=shared)
    kt2.add("Init", 1.0)
    assert shared.by_name() == {"Init": 1.0}


def test_resolve_rng():
    r1 = resolve_rng(42)
    r2 = resolve_rng(42)
    assert r1.integers(0, 100) == r2.integers(0, 100)
    gen = np.random.default_rng(0)
    assert resolve_rng(gen) is gen
    assert resolve_rng(None) is not None


def test_validation_helpers():
    check_positive("x", 1)
    check_nonnegative("x", 0)
    check_in_range("x", 0.5, 0, 1)
    with pytest.raises(InvalidParameterError):
        check_positive("x", 0)
    with pytest.raises(InvalidParameterError):
        check_nonnegative("x", -1)
    with pytest.raises(InvalidParameterError):
        check_in_range("x", 2, 0, 1)


def test_check_array_1d():
    arr = check_array_1d("a", np.arange(3), "iu")
    assert arr.shape == (3,)
    with pytest.raises(InvalidParameterError):
        check_array_1d("a", np.zeros((2, 2)))
    with pytest.raises(InvalidParameterError):
        check_array_1d("a", np.zeros(3, dtype=float), "iu")
