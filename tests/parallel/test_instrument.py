"""Instrumentation semantics: handles, aggregation, tracer backing."""

import pytest

from repro.errors import InvalidParameterError
from repro.parallel.instrument import Instrumentation, Region


def test_region_defaults_record_unit_work_and_rounds():
    inst = Instrumentation()
    with inst.region("k"):
        pass
    (region,) = inst.regions
    assert (region.work, region.rounds) == (1, 1)
    assert region.parallel is True
    assert region.seconds >= 0.0


def test_add_round_accumulates_work_and_rounds():
    inst = Instrumentation()
    # the incremental-discovery pattern: open with work=0, rounds=0
    with inst.region("sv", work=0, rounds=0) as handle:
        handle.add_round(5)
        handle.add_round(3)
        handle.add_round(0)
    (region,) = inst.regions
    assert region.work == 8
    assert region.rounds == 3


def test_add_round_on_top_of_preset_totals():
    inst = Instrumentation()
    with inst.region("k", work=10, rounds=2) as handle:
        handle.add_round(4)
    (region,) = inst.regions
    assert region.work == 14
    assert region.rounds == 3


def test_empty_incremental_region_clamps_to_one():
    inst = Instrumentation()
    with inst.region("k", work=0, rounds=0):
        pass  # no add_round calls — clamped, never 0
    (region,) = inst.regions
    assert (region.work, region.rounds) == (1, 1)


def test_by_name_first_seen_ordering_and_aggregation():
    inst = Instrumentation()
    inst.add(Region("b", 1.0))
    inst.add(Region("a", 2.0))
    inst.add(Region("b", 3.0))
    agg = inst.by_name()
    assert list(agg) == ["b", "a"]
    assert agg["b"] == pytest.approx(4.0)
    assert agg["a"] == pytest.approx(2.0)


def test_extend_concatenates_regions_and_grafts_tracer():
    a, b = Instrumentation(), Instrumentation()
    with a.region("x"):
        pass
    with b.region("y"):
        pass
    a.extend(b)
    assert [r.name for r in a.regions] == ["x", "y"]
    assert [sp.name for sp, _ in a.tracer.walk()] == ["x", "y"]


def test_totals_split_serial_and_parallel():
    inst = Instrumentation()
    inst.add(Region("p", 1.0, work=10, rounds=2))
    inst.add(Region("s", 2.0, work=99, rounds=9, parallel=False))
    assert inst.total_seconds == pytest.approx(3.0)
    assert inst.serial_seconds == pytest.approx(2.0)
    assert inst.total_work == 10  # serial regions excluded
    assert inst.total_rounds == 2


def test_region_records_even_on_exception():
    inst = Instrumentation()
    with pytest.raises(ValueError):
        with inst.region("boom", work=0, rounds=0) as handle:
            handle.add_round(7)
            raise ValueError("x")
    (region,) = inst.regions
    assert region.name == "boom"
    assert region.work == 7


def test_nested_regions_nest_in_the_tracer():
    inst = Instrumentation()
    with inst.region("outer"):
        with inst.region("inner"):
            pass
    # flat region list (pre-refactor semantics: inner closes first)
    assert [r.name for r in inst.regions] == ["inner", "outer"]
    # hierarchical span tree on the tracer
    (root,) = inst.tracer.roots
    assert root.name == "outer"
    assert [c.name for c in root.children] == ["inner"]
    assert root.attrs["work"] == 1


def test_region_attrs_mirrored_onto_span():
    inst = Instrumentation()
    with inst.region("k", work=0, rounds=0, intensity="compute") as handle:
        handle.add_round(5)
    (root,) = inst.tracer.roots
    assert root.attrs == {
        "intensity": "compute", "parallel": True, "work": 5, "rounds": 1,
    }


def test_invalid_intensity_rejected():
    with pytest.raises(InvalidParameterError):
        Region("x", 0.1, intensity="gpu")
    with pytest.raises(InvalidParameterError):
        Region("x", 0.1, rounds=0)
