"""Cross-backend equivalence: serial == thread == process, bit for bit.

The process backend's partition → privatize → reduce kernels are
designed to reproduce the serial vectorized results exactly (ordered
concatenation of contiguous partitions; exact integer partial-sum
reduction), so these are equality tests, not approximate ones. The
process backends are built with ``min_items=0`` to force fan-out even
on the small test graphs.
"""

import numpy as np
import pytest

from repro.equitruss.pipeline import build_index
from repro.graph import CSRGraph
from repro.graph.generators import (
    PAPER_EXAMPLE_SUPEREDGES,
    PAPER_EXAMPLE_SUPERNODES,
    erdos_renyi_gnm,
    paper_example_graph,
    rmat_graph,
)
from repro.parallel.context import ExecutionContext
from repro.parallel.shm import ProcessBackend, process_backend_available
from repro.triangles.enumerate import enumerate_triangles
from repro.triangles.support import compute_support
from repro.truss.decompose import truss_decomposition

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="fork or POSIX shared memory unavailable",
)

GRAPHS = {
    "er": lambda: erdos_renyi_gnm(300, 2600, seed=11),       # Erdős–Rényi
    "rmat": lambda: rmat_graph(8, 8, seed=5),                # power-law
    "paper": paper_example_graph,                            # Fig. 3 golden
}
VARIANTS = ("baseline", "coptimal", "afforest")


def _graph(name):
    return CSRGraph.from_edgelist(GRAPHS[name]())


def _contexts():
    """(label, fresh-context factory) for every backend under test."""
    yield "serial", lambda: ExecutionContext(backend="serial")
    yield "thread", lambda: ExecutionContext(backend="thread", num_workers=3)
    if process_backend_available():
        yield "process", lambda: ExecutionContext(
            backend=ProcessBackend(num_workers=3, min_items=0), num_workers=3
        )


@pytest.mark.process_backend
@needs_fork
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_triangles_and_support_bit_identical(name):
    g = _graph(name)
    ref_tris = enumerate_triangles(g)
    ref_sup = compute_support(g, ctx=ExecutionContext(backend="serial"))
    for label, make in _contexts():
        with make() as ctx:
            tris = enumerate_triangles(g, ctx=ctx)
            sup = compute_support(g, triangles=tris, ctx=ctx)
        for attr in ("e_uv", "e_uw", "e_vw"):
            assert np.array_equal(getattr(tris, attr), getattr(ref_tris, attr)), (
                name, label, attr,
            )
        assert np.array_equal(sup, ref_sup), (name, label)


@pytest.mark.process_backend
@needs_fork
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_trussness_bit_identical(name):
    g = _graph(name)
    ref = truss_decomposition(g, ctx=ExecutionContext(backend="serial"))
    for label, make in _contexts():
        with make() as ctx:
            got = truss_decomposition(g, ctx=ctx)
        assert np.array_equal(got.trussness, ref.trussness), (name, label)
        assert np.array_equal(got.support, ref.support), (name, label)
        assert got.peel_rounds == ref.peel_rounds, (name, label)


@pytest.mark.process_backend
@needs_fork
@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_index_bit_identical_across_backends(name, variant):
    g = _graph(name)
    ref = build_index(g, variant, ctx=ExecutionContext(backend="serial")).index
    for label, make in _contexts():
        with make() as ctx:
            got = build_index(g, variant, ctx=ctx).index
        assert got == ref, (name, variant, label)


@pytest.mark.process_backend
@needs_fork
@pytest.mark.parametrize("variant", VARIANTS)
def test_fig3_golden_example_under_process_backend(variant):
    """The process backend must reproduce the paper's published Fig. 3
    supernodes/superedges verbatim, like every other execution mode."""
    g = CSRGraph.from_edgelist(paper_example_graph())
    with ExecutionContext(
        backend=ProcessBackend(num_workers=3, min_items=0), num_workers=3
    ) as ctx:
        index = build_index(g, variant, ctx=ctx).index
    index.validate()

    name_to_edges = {
        nm: frozenset(g.edges.edge_id(a, b) for a, b in edge_set)
        for nm, (k, edge_set) in PAPER_EXAMPLE_SUPERNODES.items()
    }
    got_supernodes = {
        frozenset(index.edges_of(sn).tolist()): int(index.supernode_trussness[sn])
        for sn in range(index.num_supernodes)
    }
    expected = {
        edges: PAPER_EXAMPLE_SUPERNODES[nm][0]
        for nm, edges in name_to_edges.items()
    }
    assert got_supernodes == expected

    got_se = {
        frozenset(
            {
                frozenset(index.edges_of(int(a)).tolist()),
                frozenset(index.edges_of(int(b)).tolist()),
            }
        )
        for a, b in index.superedges
    }
    expected_se = {
        frozenset({name_to_edges[a], name_to_edges[b]})
        for a, b in (tuple(p) for p in PAPER_EXAMPLE_SUPEREDGES)
    }
    assert got_se == expected_se
