"""Unit tests for execution backends and the ExecutionPolicy."""

import numpy as np
import pytest

from repro.errors import BackendError
from repro.parallel import ExecutionPolicy, get_backend, parallel_for
from repro.parallel.atomics import AtomicArray


def test_serial_backend_runs_once():
    calls = []
    parallel_for(10, lambda lo, hi, tid: calls.append((lo, hi, tid)), "serial")
    assert calls == [(0, 10, 0)]


def test_thread_backend_covers_range():
    out = np.zeros(1000, dtype=np.int64)

    def chunk(lo, hi, tid):
        out[lo:hi] += 1

    parallel_for(1000, chunk, "thread", num_workers=4)
    assert np.all(out == 1)


def test_thread_backend_propagates_exception():
    def chunk(lo, hi, tid):
        if tid == 1:
            raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        parallel_for(100, chunk, "thread", num_workers=3)


def test_thread_backend_single_worker_inline():
    tids = []
    parallel_for(5, lambda lo, hi, tid: tids.append(tid), "thread", num_workers=1)
    assert tids == [0]


def test_unknown_backend():
    with pytest.raises(BackendError):
        get_backend("gpu")


def test_policy_defaults_and_run():
    p = ExecutionPolicy.default(None)
    assert p.num_workers == 1
    seen = []
    p.run(3, lambda lo, hi, tid: seen.append((lo, hi)))
    assert seen == [(0, 3)]


def test_atomic_array_cas_and_min():
    a = AtomicArray(np.array([5, 10, 3]))
    assert a.compare_and_swap(0, 5, 1)
    assert not a.compare_and_swap(0, 5, 2)
    assert a.load(0) == 1
    assert a.fetch_min(1, 7) == 10
    assert a.fetch_min(1, 100) == 7
    assert a.load(1) == 7
    a.store(2, 42)
    assert a.load(2) == 42
    assert len(a) == 3


def test_atomic_array_concurrent_min():
    # many threads race to write minima; final value must be the global min
    a = AtomicArray(np.array([10**9]))
    values = np.random.default_rng(0).integers(0, 10**6, size=2000)

    def chunk(lo, hi, tid):
        for v in values[lo:hi]:
            a.fetch_min(0, int(v))

    parallel_for(values.size, chunk, "thread", num_workers=8)
    assert a.load(0) == int(values.min())


def test_thread_backend_pool_persists_and_closes():
    from repro.parallel.backends import ThreadBackend, close_backend

    backend = ThreadBackend()
    backend.run(100, lambda lo, hi, tid: None, num_workers=3)
    pool = backend._pool
    assert pool is not None
    backend.run(100, lambda lo, hi, tid: None, num_workers=2)
    assert backend._pool is pool  # reused, not rebuilt for fewer workers
    backend.run(100, lambda lo, hi, tid: None, num_workers=5)
    assert backend._pool is not pool  # grown
    close_backend(backend)
    assert backend._pool is None
    # close() is not terminal: the pool re-creates on next use
    backend.run(10, lambda lo, hi, tid: None, num_workers=2)
    assert backend._pool is not None
    backend.close()


def test_thread_backend_single_worker_never_builds_pool():
    from repro.parallel.backends import ThreadBackend

    backend = ThreadBackend()
    backend.run(10, lambda lo, hi, tid: None, num_workers=1)
    assert backend._pool is None
    backend.close()
