"""Unit tests for work partitioners."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.parallel.partition import block_ranges, cyclic_indices, guided_ranges


def test_block_ranges_cover_and_balance():
    for n in (0, 1, 7, 100, 128):
        for parts in (1, 3, 8):
            ranges = block_ranges(n, parts)
            assert len(ranges) == parts
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            sizes = [hi - lo for lo, hi in ranges]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1
            # contiguous
            for (a, b), (c, d) in zip(ranges, ranges[1:]):
                assert b == c


def test_block_ranges_invalid():
    with pytest.raises(InvalidParameterError):
        block_ranges(10, 0)
    with pytest.raises(InvalidParameterError):
        block_ranges(-1, 2)


def test_cyclic_indices_partition():
    n, parts = 17, 4
    all_idx = np.concatenate([cyclic_indices(n, parts, p) for p in range(parts)])
    assert sorted(all_idx.tolist()) == list(range(n))
    assert cyclic_indices(10, 3, 1).tolist() == [1, 4, 7]
    with pytest.raises(IndexError):
        cyclic_indices(10, 3, 3)


def test_guided_ranges_cover_and_decrease():
    chunks = guided_ranges(1000, 4)
    assert chunks[0][0] == 0 and chunks[-1][1] == 1000
    sizes = [hi - lo for lo, hi in chunks]
    assert sizes == sorted(sizes, reverse=True) or min(sizes) >= 1
    # covers every index exactly once
    covered = [i for lo, hi in chunks for i in range(lo, hi)]
    assert covered == list(range(1000))


def test_guided_ranges_min_chunk():
    chunks = guided_ranges(100, 50, min_chunk=10)
    assert all(hi - lo >= 10 or hi == 100 for lo, hi in chunks)
