"""Unit tests for work partitioners."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.parallel.partition import (
    PARTITION_STRATEGIES,
    block_ranges,
    cyclic_indices,
    guided_ranges,
    partition_ranges,
    range_weights,
    weighted_ranges,
)


def test_block_ranges_cover_and_balance():
    for n in (0, 1, 7, 100, 128):
        for parts in (1, 3, 8):
            ranges = block_ranges(n, parts)
            assert len(ranges) == parts
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            sizes = [hi - lo for lo, hi in ranges]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1
            # contiguous
            for (a, b), (c, d) in zip(ranges, ranges[1:]):
                assert b == c


def test_block_ranges_invalid():
    with pytest.raises(InvalidParameterError):
        block_ranges(10, 0)
    with pytest.raises(InvalidParameterError):
        block_ranges(-1, 2)


def test_cyclic_indices_partition():
    n, parts = 17, 4
    all_idx = np.concatenate([cyclic_indices(n, parts, p) for p in range(parts)])
    assert sorted(all_idx.tolist()) == list(range(n))
    assert cyclic_indices(10, 3, 1).tolist() == [1, 4, 7]
    with pytest.raises(IndexError):
        cyclic_indices(10, 3, 3)


def test_guided_ranges_cover_and_decrease():
    chunks = guided_ranges(1000, 4)
    assert chunks[0][0] == 0 and chunks[-1][1] == 1000
    sizes = [hi - lo for lo, hi in chunks]
    assert sizes == sorted(sizes, reverse=True) or min(sizes) >= 1
    # covers every index exactly once
    covered = [i for lo, hi in chunks for i in range(lo, hi)]
    assert covered == list(range(1000))


def test_guided_ranges_min_chunk():
    chunks = guided_ranges(100, 50, min_chunk=10)
    assert all(hi - lo >= 10 or hi == 100 for lo, hi in chunks)


def _assert_cover(ranges, n, parts):
    assert len(ranges) == parts
    assert ranges[0][0] == 0 and ranges[-1][1] == n
    for (a, b), (c, d) in zip(ranges, ranges[1:]):
        assert b == c


def test_weighted_ranges_cover_any_weights():
    rng = np.random.default_rng(0)
    for n in (0, 1, 7, 100, 1000):
        for parts in (1, 3, 8):
            w = rng.integers(0, 50, size=n)
            _assert_cover(weighted_ranges(w, parts), n, parts)


def test_weighted_ranges_balances_skewed_work():
    # one heavy hub at the front: item-count splitting gives worker 0
    # nearly all the work; weight splitting shares it near-evenly
    w = np.ones(1000)
    w[:10] = 500.0
    parts = 4
    ranges = weighted_ranges(w, parts)
    shares = [w[lo:hi].sum() for lo, hi in ranges]
    total = w.sum()
    assert max(shares) <= total / parts + w.max()
    blocked = [w[lo:hi].sum() for lo, hi in block_ranges(w.size, parts)]
    assert max(shares) < max(blocked)


def test_weighted_ranges_zero_weights_degrade_to_blocked():
    assert weighted_ranges(np.zeros(12), 4) == block_ranges(12, 4)
    assert weighted_ranges([], 3) == [(0, 0)] * 3


def test_weighted_ranges_validation():
    with pytest.raises(InvalidParameterError):
        weighted_ranges([1.0, -1.0], 2)
    with pytest.raises(InvalidParameterError):
        weighted_ranges(np.ones((2, 2)), 2)
    with pytest.raises(InvalidParameterError):
        weighted_ranges(np.ones(4), 0)


def test_partition_ranges_dispatch():
    w = np.array([10, 1, 1, 1, 1, 1, 1, 10])
    assert partition_ranges(8, 2, weights=w, strategy="balanced") == \
        weighted_ranges(w, 2)
    assert partition_ranges(8, 2, weights=w, strategy="blocked") == \
        block_ranges(8, 2)
    assert partition_ranges(8, 2, strategy="balanced") == block_ranges(8, 2)
    with pytest.raises(InvalidParameterError):
        partition_ranges(8, 2, strategy="best")
    assert "balanced" in PARTITION_STRATEGIES


def test_range_weights_sums_per_range():
    w = np.arange(10)
    ranges = [(0, 3), (3, 3), (3, 10)]
    assert range_weights(w, ranges) == [3, 0, 42]
