"""Unit tests for instrumentation and the machine model."""

import pytest

from repro.errors import InvalidParameterError
from repro.parallel import Instrumentation, MachineProfile, Region, SimulatedMachine


def make_trace():
    tr = Instrumentation()
    tr.add(Region("setup", seconds=0.1, parallel=False))
    tr.add(Region("kernel", seconds=1.0, work=10_000, rounds=10, intensity="memory"))
    tr.add(Region("merge", seconds=0.2, work=1_000, rounds=1, intensity="compute"))
    return tr


def test_region_validation():
    with pytest.raises(InvalidParameterError):
        Region("x", seconds=1.0, intensity="quantum")
    with pytest.raises(InvalidParameterError):
        Region("x", seconds=1.0, rounds=0)


def test_region_span_measures_time():
    tr = Instrumentation()
    with tr.region("r", work=5):
        pass
    assert len(tr.regions) == 1
    assert tr.regions[0].seconds >= 0
    assert tr.regions[0].work == 5


def test_region_handle_add_round():
    tr = Instrumentation()
    with tr.region("r", work=0, rounds=0) as h:
        h.add_round(100)
        h.add_round(50)
    r = tr.regions[0]
    assert r.work == 150 and r.rounds == 2


def test_trace_aggregates():
    tr = make_trace()
    assert tr.serial_seconds == pytest.approx(0.1)
    assert tr.total_seconds == pytest.approx(1.3)
    assert tr.total_work == 11_000
    names = tr.by_name()
    assert list(names) == ["setup", "kernel", "merge"]


def test_predicted_time_monotone_decreasing():
    machine = SimulatedMachine()
    tr = make_trace()
    times = [machine.predicted_time(tr, p) for p in (1, 2, 4, 8, 16, 32, 64, 128)]
    assert times[0] == pytest.approx(tr.total_seconds)
    for a, b in zip(times, times[1:]):
        assert b < a


def test_serial_fraction_bounds_speedup():
    machine = SimulatedMachine()
    tr = make_trace()
    t128 = machine.predicted_time(tr, 128)
    # serial 0.1s can never be beaten
    assert t128 > 0.1


def test_efficiency_decreases():
    machine = SimulatedMachine()
    curve = machine.scaling_curve(make_trace())
    eff = curve.efficiencies()
    assert eff[0] == pytest.approx(100.0)
    assert all(a >= b - 1e-9 for a, b in zip(eff, eff[1:]))
    assert eff[-1] < 50.0


def test_compute_regions_scale_better_than_memory():
    machine = SimulatedMachine()
    mem = Instrumentation()
    mem.add(Region("k", seconds=1.0, intensity="memory"))
    cpu = Instrumentation()
    cpu.add(Region("k", seconds=1.0, intensity="compute"))
    assert machine.predicted_time(cpu, 128) < machine.predicted_time(mem, 128)


def test_kernel_curves_grouping():
    machine = SimulatedMachine()
    curves = machine.kernel_curves(make_trace())
    assert set(curves) == {"setup", "kernel", "merge"}
    assert curves["setup"].seconds[0] == pytest.approx(0.1)


def test_profile_validation():
    with pytest.raises(InvalidParameterError):
        MachineProfile(max_threads=0)
    with pytest.raises(InvalidParameterError):
        MachineProfile(bandwidth_fraction={"compute": 2.0, "mixed": 0.5, "memory": 0.5})
    with pytest.raises(InvalidParameterError):
        MachineProfile(bandwidth_fraction={"mixed": 0.5, "memory": 0.5})


def test_scaling_curve_respects_max_threads():
    machine = SimulatedMachine(MachineProfile(max_threads=8))
    curve = machine.scaling_curve(make_trace())
    assert max(curve.threads) == 8
