"""Unit tests for the shared-memory process backend (repro.parallel.shm)."""

import os
import warnings

import numpy as np
import pytest

from repro.errors import BackendError
from repro.parallel import get_backend
from repro.parallel.backends import ThreadBackend, close_backend
from repro.parallel.context import ExecutionContext
from repro.parallel.shm import (
    ProcessBackend,
    SharedArrayPool,
    SharedHandle,
    active_process_backend,
    attach,
    export_array,
    import_array,
    process_backend_available,
)

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="fork or POSIX shared memory unavailable",
)


# ----------------------------------------------------------------------
# module-level worker functions (pickled by reference into the pool)
# ----------------------------------------------------------------------

def _sum_range(h, lo, hi):
    return int(attach(h)[lo:hi].sum())


def _pid_task(_i):
    return os.getpid()


def _boom(flag):
    raise ValueError(f"worker boom {flag}")


def _roundtrip_double(h):
    return export_array(attach(h) * 2)


# ----------------------------------------------------------------------
# SharedHandle / export / import
# ----------------------------------------------------------------------

def test_shared_handle_size_and_nbytes():
    h = SharedHandle(name="x", dtype="<i8", shape=(3, 4))
    assert h.size == 12
    assert h.nbytes == 96


@pytest.mark.process_backend
@needs_fork
def test_export_import_round_trip():
    arr = np.arange(1000, dtype=np.int32).reshape(20, 50)
    handle = export_array(arr)
    out = import_array(handle)
    assert out.dtype == arr.dtype and out.shape == arr.shape
    assert np.array_equal(out, arr)
    # unlinked: attaching again must fail
    with pytest.raises(FileNotFoundError):
        import_array(handle)


@pytest.mark.process_backend
@needs_fork
def test_export_empty_array():
    handle = export_array(np.empty(0, dtype=np.int64))
    assert import_array(handle).size == 0


# ----------------------------------------------------------------------
# SharedArrayPool
# ----------------------------------------------------------------------

@pytest.mark.process_backend
@needs_fork
def test_pool_reuse_growth_and_high_water():
    pool = SharedArrayPool()
    try:
        v1, h1 = pool.take("a", 100, np.int64)
        assert v1.size == 100
        v2, h2 = pool.take("a", 50, np.int64)
        assert h2.name == h1.name  # same segment reused for the smaller ask
        v3, h3 = pool.take("a", 1000, np.int64)
        assert h3.name != h1.name  # grown: replaced segment
        assert pool.high_water >= 1000 * 8
        # distinct kinds and dtypes get distinct segments
        _, hb = pool.take("b", 10, np.int64)
        _, ha32 = pool.take("a", 10, np.int32)
        assert len({h3.name, hb.name, ha32.name}) == 3
    finally:
        pool.close()
    assert pool.current_bytes == 0


@pytest.mark.process_backend
@needs_fork
def test_pool_share_copies_values():
    pool = SharedArrayPool()
    try:
        src = np.arange(17, dtype=np.float64)
        view, handle = pool.share("s", src)
        assert np.array_equal(view, src)
        assert np.array_equal(attach(handle), src)
    finally:
        pool.close()


def test_pool_rejects_negative_shape():
    pool = SharedArrayPool()
    with pytest.raises(BackendError):
        pool.take("bad", (-1,), np.int64)
    pool.close()


# ----------------------------------------------------------------------
# ProcessBackend
# ----------------------------------------------------------------------

@pytest.mark.process_backend
@needs_fork
def test_map_tasks_order_and_values():
    backend = ProcessBackend(num_workers=3, min_items=0)
    try:
        data = np.arange(900, dtype=np.int64)
        _, h = backend.pool.share("d", data)
        ranges = [(0, 300), (300, 600), (600, 900)]
        sums = backend.map_tasks(_sum_range, [(h, lo, hi) for lo, hi in ranges])
        assert sums == [int(data[lo:hi].sum()) for lo, hi in ranges]
    finally:
        backend.close()


@pytest.mark.process_backend
@needs_fork
def test_worker_pool_persists_across_invocations():
    backend = ProcessBackend(num_workers=2, min_items=0)
    try:
        first = set(backend.map_tasks(_pid_task, [(0,), (1,)]))
        executor = backend._executor
        pids = set(first)
        for _ in range(3):
            pids |= set(backend.map_tasks(_pid_task, [(0,), (1,)]))
        # the executor is reused, every task lands on one of its (at
        # most num_workers) persistent processes, none on the coordinator
        assert backend._executor is executor
        assert len(pids) <= 2
        assert os.getpid() not in pids
    finally:
        backend.close()


@pytest.mark.process_backend
@needs_fork
def test_worker_exception_propagates_and_pool_survives():
    backend = ProcessBackend(num_workers=2, min_items=0)
    try:
        with pytest.raises(ValueError, match="worker boom 7"):
            backend.map_tasks(_boom, [(7,)])
        # the pool is not poisoned: subsequent tasks still run
        assert backend.map_tasks(_pid_task, [(0,)])
    finally:
        backend.close()


@pytest.mark.process_backend
@needs_fork
def test_worker_export_import_protocol():
    backend = ProcessBackend(num_workers=2, min_items=0)
    try:
        arr = np.arange(64, dtype=np.int64)
        _, h = backend.pool.share("x", arr)
        (out_h,) = backend.map_tasks(_roundtrip_double, [(h,)])
        assert np.array_equal(import_array(out_h), arr * 2)
    finally:
        backend.close()


def test_map_tasks_inline_fallback(monkeypatch):
    import repro.parallel.shm as shm

    monkeypatch.setattr(shm, "process_backend_available", lambda: False)
    backend = ProcessBackend(num_workers=2, min_items=0)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = backend.map_tasks(_pid_task, [(0,), (1,)])
            backend.map_tasks(_pid_task, [(0,)])  # warning fires only once
        assert out == [os.getpid(), os.getpid()]
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "inline" in str(runtime[0].message)
    finally:
        backend.close()


def test_map_tasks_empty_and_run_contract():
    backend = ProcessBackend(num_workers=2, min_items=0)
    try:
        assert backend.map_tasks(_pid_task, []) == []
        calls = []
        backend.run(10, lambda lo, hi, tid: calls.append((lo, hi, tid)), 4)
        assert calls == [(0, 10, 0)]  # parallel_for stays coordinator-inline
    finally:
        backend.close()


@pytest.mark.process_backend
@needs_fork
def test_map_tasks_records_worker_spans():
    backend = ProcessBackend(num_workers=2, min_items=0)
    ctx = ExecutionContext(backend=backend, num_workers=2)
    try:
        data = np.arange(100, dtype=np.int64)
        _, h = backend.pool.share("d", data)
        with ctx.region("Demo", work=100):
            backend.map_tasks(
                _sum_range, [(h, 0, 50), (h, 50, 100)], ctx=ctx, work=[50, 50]
            )
        spans = [s for s, _ in ctx.tracer.walk() if s.name.startswith("Worker[")]
        assert [s.name for s in spans] == ["Worker[0]", "Worker[1]"]
        assert all(s.attrs.get("work") == 50 for s in spans)
        # stable per-worker attribution attrs (the diff/report keying)
        assert [s.attrs.get("worker_id") for s in spans] == [0, 1]
        assert all(s.attrs.get("n_tasks") == 2 for s in spans)
        assert all(s.attrs.get("bytes_touched") == data.nbytes for s in spans)
        assert all(s.attrs.get("pid") not in (None, os.getpid()) for s in spans)
        # each worker span carries the kernel span recorded in-process
        assert all(
            [c.name for c in s.children] == ["sum_range"] for s in spans
        )
        demo = next(s for s, _ in ctx.tracer.walk() if s.name == "Demo")
        assert demo.attrs.get("workers") == 2
        assert demo.attrs.get("imbalance") >= 1.0
    finally:
        ctx.close()


# ----------------------------------------------------------------------
# gating + context integration
# ----------------------------------------------------------------------

def test_active_process_backend_gating():
    backend = ProcessBackend(num_workers=4, min_items=100)
    ctx = ExecutionContext(backend=backend, num_workers=4)
    try:
        assert active_process_backend(None, 10**9) is None
        assert active_process_backend(ctx, 50) is None  # below min_items
        assert active_process_backend(ctx, 100) is backend
        serial_ctx = ExecutionContext(backend="serial")
        assert active_process_backend(serial_ctx, 10**9) is None
        one = ExecutionContext(backend=backend, num_workers=1)
        assert active_process_backend(one, 10**9) is None
    finally:
        ctx.close()


def test_get_backend_process_and_close_helper():
    backend = get_backend("process")
    assert isinstance(backend, ProcessBackend)
    close_backend(backend)  # no pool was spun up; must be a clean no-op
    close_backend(ThreadBackend())
    close_backend(object())  # objects without close() are tolerated


@pytest.mark.process_backend
@needs_fork
def test_execution_context_owns_backend_resources():
    backend = ProcessBackend(num_workers=2, min_items=0)
    with ExecutionContext(backend=backend, num_workers=2) as ctx:
        assert ctx.shared_pool is backend.pool
        _, h = backend.pool.share("x", np.arange(4))
        assert backend.map_tasks(_sum_range, [(h, 0, 4)]) == [6]
    # context exit closed the backend: segments unlinked
    assert backend.pool.current_bytes == 0
    with pytest.raises(FileNotFoundError):
        attach(h)


def test_serial_context_has_no_shared_pool():
    ctx = ExecutionContext(backend="serial")
    assert ctx.shared_pool is None
    ctx.close()  # harmless on pool-less backends


# ----------------------------------------------------------------------
# in-process execution of the kernel worker functions (coverage of the
# worker bodies without forking)
# ----------------------------------------------------------------------

@pytest.mark.process_backend
@needs_fork
def test_kernel_workers_run_in_process():
    from repro.triangles.support import _w_support_partial
    from repro.truss.decompose import _w_decrement_partial, _w_frontier_chunk

    pool = SharedArrayPool()
    try:
        m = 8
        uv = np.array([0, 1, 2, 0], dtype=np.int64)
        handles = [pool.share(k, uv)[1] for k in ("uv", "uw", "vw")]
        partials, out_h = pool.take("p", (1, m), np.int64)
        n = _w_support_partial(*handles, 0, 4, m, out_h, 0)
        assert n == 4
        assert np.array_equal(partials[0], 3 * np.bincount(uv, minlength=m))

        sup = np.array([0, 5, 1, 7], dtype=np.int64)
        alive = np.ones(4, dtype=bool)
        _, sup_h = pool.share("sup", sup)
        _, alive_h = pool.share("alive", alive)
        frontier, f_h = pool.take("f", 4, np.int64)
        count = _w_frontier_chunk(sup_h, alive_h, 1, 4, 2, f_h)
        assert count == 1 and frontier[1] == 2  # absolute id, disjoint slice

        sides = np.array([3, 3, 1], dtype=np.int64)
        _, sides_h = pool.share("sides", sides)
        dec, dec_h = pool.take("dec", (1, m), np.int64)
        _w_decrement_partial(sides_h, 0, 3, m, dec_h, 0)
        assert np.array_equal(dec[0], np.bincount(sides, minlength=m))
    finally:
        pool.close()
