"""Unit tests for the unified ExecutionContext, DtypePolicy, Workspace."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph import CSRGraph
from repro.graph.generators import erdos_renyi_gnm
from repro.parallel import DtypePolicy, ExecutionContext, ExecutionPolicy, Workspace
from repro.parallel.context import fits_int32
from repro.parallel.instrument import Instrumentation

I32_MAX = np.iinfo(np.int32).max


# ----------------------------------------------------------------------
# DtypePolicy
# ----------------------------------------------------------------------

def test_dtype_policy_resolve_auto():
    p = DtypePolicy("auto")
    assert p.resolve(10) == np.dtype(np.int32)
    assert p.resolve(I32_MAX) == np.dtype(np.int32)
    assert p.resolve(I32_MAX + 1) == np.dtype(np.int64)


def test_dtype_policy_forced():
    assert DtypePolicy("int64").resolve(3) == np.dtype(np.int64)
    assert DtypePolicy("int32").resolve(3) == np.dtype(np.int32)
    with pytest.raises(InvalidParameterError):
        DtypePolicy("int32").resolve(I32_MAX + 1)
    with pytest.raises(InvalidParameterError):
        DtypePolicy("int16")


def test_dtype_policy_of_normalizes():
    assert DtypePolicy.of(None).name == "auto"
    assert DtypePolicy.of("int32").name == "int32"
    p = DtypePolicy("int64")
    assert DtypePolicy.of(p) is p


def test_key_dtype_guards_product_not_ids():
    p = DtypePolicy("auto")
    # 46340^2 < 2^31: int32 keys are safe
    assert p.key_dtype(46340) == np.dtype(np.int32)
    # 46342^2 > 2^31: ids fit int32 but the u*N+v product wraps
    assert p.key_dtype(46342) == np.dtype(np.int64)
    assert DtypePolicy("int64").key_dtype(10) == np.dtype(np.int64)


def test_index_dtype_counts_slots():
    p = DtypePolicy("auto")
    assert p.index_dtype(100, 200) == np.dtype(np.int32)
    # 2|E| slots exceed int32 even though |V| fits
    assert p.index_dtype(100, (I32_MAX // 2) + 1) == np.dtype(np.int64)


def test_fits_int32():
    assert fits_int32(0) and fits_int32(I32_MAX)
    assert not fits_int32(I32_MAX + 1)
    assert not fits_int32(-1)


# ----------------------------------------------------------------------
# Workspace
# ----------------------------------------------------------------------

def test_workspace_reuses_buffers():
    ws = Workspace()
    a = ws.take("x", 100, np.int32)
    assert a.size == 100 and a.dtype == np.int32
    b = ws.take("x", 50, np.int32)
    assert np.shares_memory(a, b)
    assert ws.current_bytes == 400
    c = ws.take("x", 200, np.int32)  # grow
    assert c.size == 200
    assert ws.high_water >= 800


def test_workspace_kinds_are_disjoint():
    ws = Workspace()
    a = ws.take("a", 10, np.int64)
    b = ws.take("b", 10, np.int64)
    assert not np.shares_memory(a, b)
    # same kind, different dtype -> distinct slot
    c = ws.take("a", 10, np.int32)
    assert not np.shares_memory(a, c)


def test_workspace_gather():
    ws = Workspace()
    vals = np.array([10, 20, 30, 40], dtype=np.int32)
    out = ws.gather("g", vals, np.array([3, 0, 2]))
    assert out.tolist() == [40, 10, 30]
    assert out.dtype == np.int32


def test_workspace_reset_keeps_high_water():
    ws = Workspace()
    ws.take("x", 1000, np.int64)
    hw = ws.high_water
    ws.reset()
    assert ws.current_bytes == 0
    assert ws.high_water == hw
    with pytest.raises(InvalidParameterError):
        ws.take("x", -1, np.int64)


# ----------------------------------------------------------------------
# ExecutionContext
# ----------------------------------------------------------------------

def test_ensure_normalizes_none_context_policy_and_handle():
    ctx = ExecutionContext.ensure(None)
    assert isinstance(ctx, ExecutionContext)
    assert ExecutionContext.ensure(ctx) is ctx

    policy = ExecutionPolicy()
    adapted = ExecutionContext.ensure(policy)
    assert adapted.trace is policy.trace
    assert adapted.num_workers == policy.num_workers

    trace = Instrumentation()
    with trace.region("R", work=0, rounds=0) as h:
        from_handle = ExecutionContext.ensure(h)
        from_handle.add_round(7)
    assert trace.regions[0].work == 7

    with pytest.raises(InvalidParameterError):
        ExecutionContext.ensure(42)


def test_policy_as_context_shim():
    policy = ExecutionPolicy(num_workers=3)
    ctx = policy.as_context()
    assert isinstance(ctx, ExecutionContext)
    assert ctx.num_workers == 3


def test_region_nesting_routes_add_round():
    ctx = ExecutionContext()
    with ctx.region("Outer", work=0, rounds=0):
        with ctx.region("Inner", work=0, rounds=0):
            ctx.add_round(5)
        ctx.add_round(3)
    by_name = {r.name: r for r in ctx.trace.regions}
    assert by_name["Inner"].work == 5
    assert by_name["Outer"].work == 3
    # no open region: a silent no-op
    ctx.add_round(100)


def test_region_records_ws_peak_attr():
    ctx = ExecutionContext()
    with ctx.region("R", work=1):
        ctx.workspace.take("x", 128, np.int64)
    spans = [sp for sp, _ in ctx.tracer.walk()]
    assert spans[0].attrs["ws_peak"] >= 128 * 8


def test_with_dtype_and_dtype_helpers():
    ctx = ExecutionContext(dtype="auto")
    assert ctx.edge_dtype(1000) == np.dtype(np.int32)
    assert ctx.index_dtype(1000, 5000) == np.dtype(np.int32)
    wide = ctx.with_dtype("int64")
    assert wide.edge_dtype(1000) == np.dtype(np.int64)
    assert wide.trace is ctx.trace  # shares observability
    assert ctx.dtype.name == "auto"  # original untouched


def test_context_validates_workers():
    with pytest.raises(InvalidParameterError):
        ExecutionContext(num_workers=0)


# ----------------------------------------------------------------------
# Workspace high-water: int32 builds use ~half the scratch of int64
# ----------------------------------------------------------------------

def test_build_index_workspace_high_water_reduction():
    from repro.equitruss import build_index

    edges = erdos_renyi_gnm(400, 2600, seed=11)

    peaks = {}
    indexes = {}
    for name in ("auto", "int64"):
        ctx = ExecutionContext(dtype=name)
        g = CSRGraph.from_edgelist(edges, ctx=ctx)
        result = build_index(g, "coptimal", ctx=ctx)
        peaks[name] = ctx.workspace.high_water
        indexes[name] = result.index
    assert indexes["auto"] == indexes["int64"]
    assert peaks["auto"] > 0
    reduction = 1.0 - peaks["auto"] / peaks["int64"]
    assert reduction >= 0.40, f"only {reduction:.1%} workspace reduction"
