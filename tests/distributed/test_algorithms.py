"""Distributed CC / triangle algorithms match single-node ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    distributed_components,
    distributed_support,
    distributed_triangle_count,
    partition_edges,
)
from repro.distributed.partition import VertexOwnership
from repro.errors import InvalidParameterError
from repro.graph import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi_gnm, rmat_graph
from repro.triangles import enumerate_triangles


def test_vertex_ownership_covers_all():
    own = VertexOwnership(17, 4)
    seen = []
    for r in range(4):
        lo, hi = own.owned_range(r)
        seen.extend(range(lo, hi))
        owners = own.owner_of(np.arange(lo, hi))
        assert np.all(owners == r)
    assert seen == list(range(17))


def test_partition_edges_covers_all():
    edges = erdos_renyi_gnm(40, 150, seed=1)
    for strategy in ("owner", "hash"):
        parts = partition_edges(edges, 4, strategy=strategy)
        all_ids = np.sort(np.concatenate([p.edge_ids for p in parts]))
        assert np.array_equal(all_ids, np.arange(edges.num_edges))
    with pytest.raises(InvalidParameterError):
        partition_edges(edges, 3, strategy="quantum")


@pytest.mark.parametrize("ranks", [1, 2, 4])
@pytest.mark.parametrize("strategy", ["owner", "hash"])
def test_distributed_cc_matches_scipy(ranks, strategy):
    import scipy.sparse.csgraph as csgraph

    edges = erdos_renyi_gnm(60, 50, seed=5)
    labels, stats = distributed_components(edges, ranks, strategy=strategy)
    g = CSRGraph.from_edgelist(edges)
    ncomp, ref = csgraph.connected_components(g.to_scipy(), directed=False)
    # same partition
    mapping = {}
    for ours, theirs in zip(labels.tolist(), ref.tolist()):
        assert mapping.setdefault(theirs, ours) == ours
    assert len(set(labels.tolist())) == ncomp


def test_distributed_cc_labels_are_min_reachable():
    edges = erdos_renyi_gnm(30, 25, seed=2)
    labels, _ = distributed_components(edges, 3)
    for comp in set(labels.tolist()):
        members = np.flatnonzero(labels == comp)
        assert members.min() == comp


@pytest.mark.parametrize("ranks", [1, 2, 3, 5])
def test_distributed_triangle_count(ranks):
    edges = rmat_graph(7, 6, seed=3)
    expected = enumerate_triangles(CSRGraph.from_edgelist(edges)).count
    count, stats = distributed_triangle_count(edges, ranks)
    assert count == expected
    if ranks > 1:
        assert stats.bytes > 0


@pytest.mark.parametrize("ranks", [1, 2, 4])
def test_distributed_support(ranks):
    edges = erdos_renyi_gnm(40, 180, seed=7)
    expected = enumerate_triangles(CSRGraph.from_edgelist(edges)).support()
    sup, _ = distributed_support(edges, ranks)
    assert np.array_equal(sup, expected)


def test_distributed_on_complete_graph():
    edges = complete_graph(12)
    count, _ = distributed_triangle_count(edges, 3)
    assert count == 12 * 11 * 10 // 6
    labels, _ = distributed_components(edges, 3)
    assert np.all(labels == 0)


def test_communication_grows_with_ranks():
    edges = rmat_graph(8, 6, seed=9)
    _, s2 = distributed_triangle_count(edges, 2)
    _, s6 = distributed_triangle_count(edges, 6)
    assert s6.bytes > s2.bytes


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    ranks=st.integers(min_value=1, max_value=5),
)
def test_property_distributed_matches_local(seed, ranks):
    edges = erdos_renyi_gnm(22, 70, seed=seed)
    g = CSRGraph.from_edgelist(edges)
    tri = enumerate_triangles(g)
    count, _ = distributed_triangle_count(edges, ranks)
    assert count == tri.count
    sup, _ = distributed_support(edges, ranks)
    assert np.array_equal(sup, tri.support())
