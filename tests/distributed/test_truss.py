"""Distributed truss decomposition matches the single-node peeling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.truss import distributed_truss_decomposition
from repro.graph import CSRGraph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_gnm,
    paper_example_graph,
    path_graph,
    rmat_graph,
)
from repro.truss import truss_decomposition


@pytest.mark.parametrize("ranks", [1, 2, 3, 5])
def test_matches_single_node(ranks):
    g = CSRGraph.from_edgelist(rmat_graph(7, 6, seed=2))
    expected = truss_decomposition(g).trussness
    dec, stats = distributed_truss_decomposition(g.edges, ranks)
    assert np.array_equal(dec.trussness, expected)
    if ranks > 1:
        assert stats.bytes > 0


def test_paper_example():
    g = CSRGraph.from_edgelist(paper_example_graph())
    dec, _ = distributed_truss_decomposition(g.edges, 3)
    assert np.array_equal(dec.trussness, truss_decomposition(g).trussness)


def test_triangle_free():
    g = CSRGraph.from_edgelist(path_graph(8))
    dec, _ = distributed_truss_decomposition(g.edges, 2)
    assert np.all(dec.trussness == 2)


def test_complete_graph():
    g = CSRGraph.from_edgelist(complete_graph(7))
    dec, _ = distributed_truss_decomposition(g.edges, 4)
    assert np.all(dec.trussness == 7)


def test_precomputed_triangles_reused():
    from repro.triangles import enumerate_triangles

    g = CSRGraph.from_edgelist(erdos_renyi_gnm(30, 140, seed=3))
    tri = enumerate_triangles(g)
    dec, _ = distributed_truss_decomposition(g.edges, 2, triangles=tri)
    assert np.array_equal(dec.trussness, truss_decomposition(g).trussness)
    assert np.array_equal(dec.support, tri.support())


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    ranks=st.integers(min_value=1, max_value=4),
)
def test_property_distributed_truss(seed, ranks):
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(18, 60, seed=seed))
    dec, _ = distributed_truss_decomposition(g.edges, ranks)
    assert np.array_equal(dec.trussness, truss_decomposition(g).trussness)
