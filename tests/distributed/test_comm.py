"""Unit tests for the SPMD communicator."""

import numpy as np
import pytest

from repro.distributed import run_spmd
from repro.errors import BackendError, InvalidParameterError


def test_send_recv_pairs():
    def fn(comm):
        peer = (comm.rank + 1) % comm.size
        comm.send(peer, {"from": comm.rank})
        src = (comm.rank - 1) % comm.size
        return comm.recv(src)["from"]

    results, stats = run_spmd(4, fn)
    assert results == [3, 0, 1, 2]
    assert stats.messages >= 4
    assert stats.bytes > 0


def test_tag_mismatch_raises():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, "x", tag=7)
        elif comm.rank == 1:
            comm.recv(0, tag=8)

    with pytest.raises(BackendError, match="tag"):
        run_spmd(2, fn)


def test_recv_timeout():
    def fn(comm):
        if comm.rank == 1:
            comm.recv(0, timeout=0.05)

    with pytest.raises(BackendError, match="timed out"):
        run_spmd(2, fn)


def test_allgather():
    results, _ = run_spmd(3, lambda comm: comm.allgather(comm.rank * 10))
    assert results == [[0, 10, 20]] * 3


def test_bcast():
    def fn(comm):
        return comm.bcast("hello" if comm.rank == 1 else None, root=1)

    results, _ = run_spmd(3, fn)
    assert results == ["hello"] * 3


def test_alltoall():
    def fn(comm):
        outgoing = [f"{comm.rank}->{dst}" for dst in range(comm.size)]
        return comm.alltoall(outgoing)

    results, _ = run_spmd(3, fn)
    assert results[1] == ["0->1", "1->1", "2->1"]


def test_alltoall_size_validation():
    def fn(comm):
        comm.alltoall([1])  # wrong length

    with pytest.raises(InvalidParameterError):
        run_spmd(2, fn)


@pytest.mark.parametrize(
    "op,expected", [("sum", 0 + 1 + 2 + 3), ("min", 0), ("max", 3)]
)
def test_allreduce_scalar(op, expected):
    results, _ = run_spmd(4, lambda comm: comm.allreduce(comm.rank, op=op))
    assert results == [expected] * 4


def test_allreduce_array_and_lor():
    def fn(comm):
        arr = np.full(3, comm.rank, dtype=np.int64)
        summed = comm.allreduce(arr, op="sum")
        flag = comm.allreduce(comm.rank == 2, op="lor")
        return summed.tolist(), flag

    results, _ = run_spmd(3, fn)
    assert all(r == ([3, 3, 3], True) for r in results)


def test_allreduce_unknown_op():
    with pytest.raises(InvalidParameterError):
        run_spmd(2, lambda comm: comm.allreduce(1, op="xor"))


def test_rank_exception_propagates():
    def fn(comm):
        if comm.rank == 1:
            raise ValueError("rank 1 boom")
        comm.barrier()

    with pytest.raises(ValueError, match="rank 1 boom"):
        run_spmd(3, fn)


def test_bad_peer_validation():
    def fn(comm):
        comm.send(99, "x")

    with pytest.raises(InvalidParameterError):
        run_spmd(2, fn)


def test_collectives_counted():
    def fn(comm):
        comm.allgather(1)
        comm.bcast(2, root=0)
        return None

    _, stats = run_spmd(2, fn)
    assert stats.collectives >= 4  # 2 ranks x 2 collectives
