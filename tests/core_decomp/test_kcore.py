"""Unit + property tests for k-core decomposition and search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core_decomp import (
    core_decomposition,
    core_decomposition_serial,
    k_core_vertex_mask,
    kcore_community,
)
from repro.errors import InvalidParameterError
from repro.graph import CSRGraph, build_graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    path_graph,
    rmat_graph,
    star_graph,
)


def graph_of(edges):
    return CSRGraph.from_edgelist(edges)


def test_path_coreness():
    d = core_decomposition(graph_of(path_graph(6)))
    assert np.all(d.coreness == 1)


def test_cycle_coreness():
    d = core_decomposition(graph_of(cycle_graph(6)))
    assert np.all(d.coreness == 2)


def test_star_coreness():
    d = core_decomposition(graph_of(star_graph(8)))
    assert np.all(d.coreness == 1)


def test_complete_graph_coreness():
    for n in (2, 4, 7):
        d = core_decomposition(graph_of(complete_graph(n)))
        assert np.all(d.coreness == n - 1)
        assert d.degeneracy == n - 1


def test_isolated_vertices():
    g = build_graph([0], [1], num_vertices=4)
    d = core_decomposition(g)
    assert d.coreness.tolist() == [1, 1, 0, 0]


def test_serial_matches_vectorized():
    for seed in range(5):
        g = graph_of(erdos_renyi_gnm(50, 160, seed=seed))
        a = core_decomposition(g)
        b = core_decomposition_serial(g)
        assert np.array_equal(a.coreness, b.coreness)


def test_matches_networkx():
    nx = pytest.importorskip("networkx")
    g = graph_of(rmat_graph(8, 5, seed=4))
    ours = core_decomposition(g).coreness
    theirs = nx.core_number(g.to_networkx())
    for v in range(g.num_vertices):
        assert ours[v] == theirs[v]


def test_core_sizes_partition():
    g = graph_of(erdos_renyi_gnm(60, 200, seed=2))
    d = core_decomposition(g)
    assert sum(d.core_sizes().values()) == int((d.coreness >= 1).sum())


def test_k_core_mask_validation():
    d = core_decomposition(graph_of(complete_graph(3)))
    with pytest.raises(InvalidParameterError):
        k_core_vertex_mask(d, -1)
    assert k_core_vertex_mask(d, 2).all()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_kcore_definition(seed):
    """Every vertex of the τ ≥ k core has in-core degree ≥ k (k-core
    property) and the mask is maximal (serial agrees)."""
    g = graph_of(erdos_renyi_gnm(25, 70, seed=seed))
    d = core_decomposition(g)
    assert np.array_equal(d.coreness, core_decomposition_serial(g).coreness)
    for k in range(1, d.degeneracy + 1):
        mask = k_core_vertex_mask(d, k)
        if not mask.any():
            continue
        for v in np.flatnonzero(mask).tolist():
            in_core = sum(1 for w in g.neighbors(v) if mask[w])
            assert in_core >= k


def test_kcore_community_basic():
    # K4 with a pendant: pendant excluded from the 2-core community
    g = build_graph([0, 0, 0, 1, 1, 2, 3], [1, 2, 3, 2, 3, 3, 4])
    c = kcore_community(g, 0, 3)
    assert c is not None
    assert set(c.vertices().tolist()) == {0, 1, 2, 3}
    assert kcore_community(g, 4, 3) is None


def test_kcore_community_validation():
    g = graph_of(complete_graph(4))
    with pytest.raises(InvalidParameterError):
        kcore_community(g, 0, 0)
    with pytest.raises(InvalidParameterError):
        kcore_community(g, 9, 1)


def test_kcore_weak_cohesion_vs_ktruss():
    """The paper's motivating contrast: two K4s joined by a 2-path are
    one 2-core community but two separate 3-truss communities."""
    src = [0, 0, 0, 1, 1, 2, 3, 4, 5, 5, 5, 6, 6, 7]
    dst = [1, 2, 3, 2, 3, 3, 4, 5, 6, 7, 8, 7, 8, 8]
    g = build_graph(src, dst)
    core_comm = kcore_community(g, 0, 2)
    assert 4 in core_comm.vertices()  # the bridge vertex chains in
    from repro.community import online_communities

    truss_comms = online_communities(g, 0, 4)
    assert len(truss_comms) == 1
    assert 4 not in truss_comms[0].vertices()  # k-truss excludes the bridge
