"""Unit + property tests for triangle enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, build_graph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_gnm,
    paper_example_graph,
    path_graph,
    rmat_graph,
    star_graph,
)
from repro.triangles import (
    count_triangles,
    count_triangles_matrix,
    count_triangles_node_iterator,
    enumerate_triangles,
)


def graph_of(edges):
    return CSRGraph.from_edgelist(edges)


def brute_force_triangles(graph):
    """All triangles as sorted vertex triples, via cubic enumeration."""
    tuples = set()
    edges = set(graph.edges.as_tuples())
    verts = graph.num_vertices
    for u, v in edges:
        for w in range(verts):
            if w == u or w == v:
                continue
            if (min(u, w), max(u, w)) in edges and (min(v, w), max(v, w)) in edges:
                tuples.add(tuple(sorted((u, v, w))))
    return tuples


def triples_to_vertex_sets(graph, tri):
    """Convert edge-id triples to vertex triples."""
    out = set()
    for ea, eb, ec in tri.as_matrix().tolist():
        vs = set()
        for e in (ea, eb, ec):
            vs.add(int(graph.edges.u[e]))
            vs.add(int(graph.edges.v[e]))
        assert len(vs) == 3
        out.add(tuple(sorted(vs)))
    return out


def test_no_triangles_in_trees_and_stars():
    for edges in (path_graph(10), star_graph(10)):
        g = graph_of(edges)
        assert enumerate_triangles(g).count == 0
        assert count_triangles(g) == 0


def test_single_triangle():
    g = build_graph([0, 0, 1], [1, 2, 2])
    tri = enumerate_triangles(g)
    assert tri.count == 1
    row = set(tri.as_matrix()[0].tolist())
    assert row == {0, 1, 2}


def test_complete_graph_counts():
    for n in (3, 4, 5, 7):
        g = graph_of(complete_graph(n))
        expect = n * (n - 1) * (n - 2) // 6
        assert enumerate_triangles(g).count == expect
        assert count_triangles_matrix(g) == expect
        assert count_triangles_node_iterator(g) == expect


def test_each_triangle_enumerated_once():
    g = graph_of(erdos_renyi_gnm(40, 200, seed=5))
    tri = enumerate_triangles(g)
    rows = tri.canonical_sorted()
    assert np.unique(rows, axis=0).shape[0] == rows.shape[0]


def test_matches_brute_force_random():
    g = graph_of(erdos_renyi_gnm(25, 90, seed=8))
    tri = enumerate_triangles(g)
    assert triples_to_vertex_sets(g, tri) == brute_force_triangles(g)


def test_matches_networkx():
    nx = pytest.importorskip("networkx")
    g = graph_of(rmat_graph(8, 6, seed=3))
    expected = sum(nx.triangles(g.to_networkx()).values()) // 3
    assert count_triangles(g) == expected
    assert count_triangles_matrix(g) == expected


def test_batching_invariance():
    g = graph_of(erdos_renyi_gnm(60, 400, seed=2))
    full = enumerate_triangles(g, batch_slots=1 << 20).canonical_sorted()
    tiny = enumerate_triangles(g, batch_slots=7).canonical_sorted()
    assert np.array_equal(full, tiny)


def test_paper_example_triangle_count():
    g = graph_of(paper_example_graph())
    # K4 has 4 triangles (x2), K5 has 10, plus bridges: (0,3,4), (2,3,6),
    # (2,6,8), (5,6,7), (5,7,10), (5,6,10)
    assert count_triangles(g) == 4 + 4 + 10 + 6


def test_empty_graph():
    g = build_graph([], [])
    tri = enumerate_triangles(g)
    assert tri.count == 0
    assert tri.support().size == 0


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=14),
    data=st.data(),
)
def test_property_counts_agree(n, data):
    max_m = n * (n - 1) // 2
    m = data.draw(st.integers(min_value=0, max_value=max_m))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    g = graph_of(erdos_renyi_gnm(n, m, seed=seed))
    tri = enumerate_triangles(g)
    assert tri.count == count_triangles_matrix(g)
    assert tri.count == count_triangles_node_iterator(g)
    assert triples_to_vertex_sets(g, tri) == brute_force_triangles(g)
