"""Unit tests for support computation and the incidence structure."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, build_graph
from repro.graph.generators import complete_graph, erdos_renyi_gnm, paper_example_graph
from repro.parallel import ExecutionPolicy
from repro.triangles import (
    EdgeTriangleIncidence,
    compute_support,
    enumerate_triangles,
    support_histogram,
)


def test_support_triangle_plus_tail():
    g = build_graph([0, 0, 1, 2], [1, 2, 2, 3])
    sup = compute_support(g)
    tail = g.edges.edge_id(2, 3)
    assert sup[tail] == 0
    for e in range(g.num_edges):
        if e != tail:
            assert sup[e] == 1


def test_support_complete_graph():
    g = CSRGraph.from_edgelist(complete_graph(6))
    sup = compute_support(g)
    assert np.all(sup == 4)  # each edge of K6 is in n-2 triangles


def test_support_records_trace_region():
    g = CSRGraph.from_edgelist(complete_graph(5))
    policy = ExecutionPolicy()
    compute_support(g, policy=policy)
    names = [r.name for r in policy.trace.regions]
    assert names == ["Support"]


def test_support_reuses_triangles():
    g = CSRGraph.from_edgelist(complete_graph(5))
    tri = enumerate_triangles(g)
    assert np.array_equal(compute_support(g, triangles=tri), tri.support())


def test_support_histogram():
    g = build_graph([0, 0, 1, 2], [1, 2, 2, 3])
    hist = support_histogram(compute_support(g))
    assert hist.tolist() == [1, 3]
    assert support_histogram(np.empty(0, dtype=np.int64)).tolist() == [0]


def test_incidence_matches_support():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(40, 180, seed=4))
    tri = enumerate_triangles(g)
    inc = EdgeTriangleIncidence(tri)
    assert np.array_equal(inc.degree(), tri.support())
    # each triangle appears exactly once in each member edge's list
    for e in range(g.num_edges):
        tids = inc.triangles_of(e)
        assert np.unique(tids).size == tids.size
        for t in tids.tolist():
            assert e in tri.as_matrix()[t]


def test_incidence_partners():
    g = CSRGraph.from_edgelist(complete_graph(4))
    tri = enumerate_triangles(g)
    inc = EdgeTriangleIncidence(tri)
    eids = np.concatenate([tri.e_uv, tri.e_uw, tri.e_vw])
    tids = np.concatenate([np.arange(tri.count)] * 3)
    p1, p2 = inc.partners(eids, tids)
    mat = tri.as_matrix()
    for i in range(eids.size):
        row = set(mat[tids[i]].tolist())
        assert {int(eids[i]), int(p1[i]), int(p2[i])} == row
        assert int(p1[i]) != int(eids[i]) and int(p2[i]) != int(eids[i])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_support_sums_to_3T(seed):
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(20, 60, seed=seed))
    tri = enumerate_triangles(g)
    assert int(tri.support().sum()) == 3 * tri.count


def test_paper_example_support():
    g = CSRGraph.from_edgelist(paper_example_graph())
    sup = compute_support(g)
    # (0,4) closes only triangle (0,3,4)
    assert sup[g.edges.edge_id(0, 4)] == 1
    # (9,10) inside K5: 3 triangles
    assert sup[g.edges.edge_id(9, 10)] == 3


def test_support_optional_dtype_identical_counts():
    import numpy as np

    from repro.graph import CSRGraph
    from repro.graph.generators import erdos_renyi_gnm
    from repro.parallel.context import ExecutionContext
    from repro.triangles.enumerate import enumerate_triangles
    from repro.triangles.support import compute_support

    g = CSRGraph.from_edgelist(erdos_renyi_gnm(150, 900, seed=3))
    tris = enumerate_triangles(g)
    ref = tris.support()
    assert ref.dtype == np.int64
    narrow = tris.support(dtype=np.int32)
    assert narrow.dtype == np.int32
    assert np.array_equal(narrow, ref)
    # the auto dtype policy narrows compute_support on small graphs
    auto = compute_support(g, triangles=tris, ctx=ExecutionContext(dtype="auto"))
    assert auto.dtype == np.int32
    assert np.array_equal(auto, ref)
    wide = compute_support(g, triangles=tris, ctx=ExecutionContext(dtype="int64"))
    assert wide.dtype == np.int64
