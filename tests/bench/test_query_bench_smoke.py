"""Smoke: the query-serving ablation runs as a standalone script."""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_bench_ablation_query_smoke(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "bench_ablation_query.py"), "--smoke"],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,  # results land under benchmarks/results via absolute path
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "identical to the BFS reference" in proc.stdout
    assert "speedup" in proc.stdout
