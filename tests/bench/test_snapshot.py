"""Tests for the machine-readable perf snapshot (BENCH_*.json)."""

import json

import pytest

from repro.bench.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    PerfSnapshot,
    load_snapshot,
    validate_snapshot,
)


def test_snapshot_write_load_round_trip(tmp_path):
    path = tmp_path / "BENCH_test.json"
    snap = PerfSnapshot("test", path=path)
    snap.add_run("exp", "ds", "afforest", "serial", 1, 2.0)
    snap.add_run("exp", "ds", "afforest", "process", 4, 0.8,
                 kernels={"SpNode": 0.3}, identical_to_serial=True)
    snap.derive("speedup", 2.5)
    out = snap.write()
    assert out == path
    doc = load_snapshot(path)
    assert doc["schema_version"] == SNAPSHOT_SCHEMA_VERSION
    assert doc["snapshot"] == "test"
    assert doc["host"]["cpu_count"] >= 1
    assert len(doc["runs"]) == 2
    assert doc["derived"]["speedup"] == 2.5
    proc = next(r for r in doc["runs"] if r["backend"] == "process")
    assert proc["kernels"] == {"SpNode": 0.3}
    assert proc["notes"]["identical_to_serial"] is True


def test_snapshot_rerecord_replaces_and_accumulates(tmp_path):
    path = tmp_path / "BENCH_test.json"
    snap = PerfSnapshot("test", path=path)
    snap.add_run("exp", "ds", "afforest", "serial", 1, 2.0)
    snap.write()
    # a fresh writer (another bench file, another session) accumulates
    snap2 = PerfSnapshot("test", path=path)
    snap2.add_run("exp", "ds", "afforest", "serial", 1, 1.5)  # replaces
    snap2.add_run("other", "ds", "afforest", "serial", 1, 9.0)  # appends
    snap2.write()
    doc = load_snapshot(path)
    assert len(doc["runs"]) == 2
    serial = next(r for r in doc["runs"] if r["experiment"] == "exp")
    assert serial["seconds"] == 1.5


def test_snapshot_speedup_helper(tmp_path):
    snap = PerfSnapshot("test", path=tmp_path / "b.json")
    assert snap.speedup("exp", "ds", "afforest") is None
    snap.add_run("exp", "ds", "afforest", "serial", 1, 4.0)
    snap.add_run("exp", "ds", "afforest", "process", 4, 2.0)
    assert snap.speedup("exp", "ds", "afforest") == 2.0
    # modeled runs never contribute to measured speedups
    snap.add_run("exp2", "ds", "afforest", "serial", 1, 4.0, mode="modeled")
    snap.add_run("exp2", "ds", "afforest", "process", 4, 1.0, mode="modeled")
    assert snap.speedup("exp2", "ds", "afforest") is None


def test_snapshot_recovers_from_corrupt_prior(tmp_path):
    path = tmp_path / "BENCH_test.json"
    path.write_text("{not json", encoding="utf-8")
    snap = PerfSnapshot("test", path=path)
    assert snap.doc["runs"] == []
    snap.add_run("exp", "ds", "afforest", "serial", 1, 1.0)
    snap.write()
    assert len(load_snapshot(path)["runs"]) == 1


def test_add_run_rejects_bad_mode(tmp_path):
    snap = PerfSnapshot("test", path=tmp_path / "b.json")
    with pytest.raises(ValueError, match="mode"):
        snap.add_run("exp", "ds", "afforest", "serial", 1, 1.0, mode="guessed")


@pytest.mark.parametrize(
    "mutate,match",
    [
        (lambda d: d.update(schema_version=99), "schema_version"),
        (lambda d: d.pop("host"), "host"),
        (lambda d: d["host"].update(cpu_count=0), "cpu_count"),
        (lambda d: d.update(runs=[{"experiment": "x"}]), "dataset"),
        (lambda d: d["runs"][0].update(seconds="fast"), "seconds"),
        (lambda d: d["runs"][0].update(mode="vibes"), "mode"),
        (lambda d: d["runs"][0].update(seconds=-1.0), ">= 0"),
        (lambda d: d["runs"][0].update(kernels="SpNode"), "kernels"),
    ],
)
def test_validate_snapshot_rejects_malformed(tmp_path, mutate, match):
    snap = PerfSnapshot("test", path=tmp_path / "b.json")
    snap.add_run("exp", "ds", "afforest", "serial", 1, 1.0)
    doc = json.loads(json.dumps(snap.doc))
    mutate(doc)
    with pytest.raises(ValueError, match=match):
        validate_snapshot(doc)


def test_validate_snapshot_rejects_non_dict():
    with pytest.raises(ValueError, match="object"):
        validate_snapshot([])
