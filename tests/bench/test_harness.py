"""Unit tests for the benchmark harness pieces."""

import pytest

from repro.bench import ResultWriter, TextTable, bar_chart, get_workload, line_chart, run_variant
from repro.bench.paper import (
    FIG5_SPNODE_SPEEDUP,
    HEADLINE_SPEEDUP_RANGE,
    TABLE3_DATASETS,
    TABLE4_SERIAL_SECONDS,
    TABLE5,
)
from repro.equitruss.kernels import KernelBreakdown, SM_GRAPH, SP_EDGE, SP_NODE
from repro.parallel import Instrumentation, Region


def test_text_table_render_and_csv(tmp_path):
    t = TextTable(["a", "b"], title="T")
    t.add_row(1, 2.5)
    t.add_row("x", 0.00012)
    text = t.render()
    assert "T" in text and "a" in text and "2.50" in text
    with pytest.raises(ValueError):
        t.add_row(1)
    p = tmp_path / "t.csv"
    t.to_csv(p)
    assert p.read_text().splitlines()[0] == "a,b"


def test_bar_chart():
    text = bar_chart(["x", "yy"], [1.0, 2.0], width=10, title="bars", unit="s")
    assert "bars" in text
    assert text.count("#") > 0
    assert "2s" in text or "2.0" in text or "2" in text
    with pytest.raises(ValueError):
        bar_chart(["x"], [1.0, 2.0])
    assert "(empty)" in bar_chart([], [])


def test_line_chart():
    text = line_chart([1, 2, 4], {"a": [4.0, 2.0, 1.0], "b": [8.0, 4.0, 2.0]},
                      title="lines", logy=True)
    assert "lines" in text
    assert "*=a" in text and "o=b" in text
    with pytest.raises(ValueError):
        line_chart([1, 2], {"a": [1.0]})


def test_result_writer(tmp_path):
    w = ResultWriter("exp", directory=tmp_path)
    w.add("section one")
    w.add(TextTable(["c"], title="t2"))
    path = w.write(echo=False)
    text = path.read_text()
    assert text.startswith("### exp ###")
    assert "section one" in text and "t2" in text


def test_workload_cache_and_run_variant():
    w1 = get_workload("amazon")
    w2 = get_workload("amazon")
    assert w1 is w2
    assert w1.num_edges == w1.graph.num_edges
    res = run_variant(w1, "coptimal")
    names = {r.name for r in res.trace.regions}
    assert "Support" not in names  # prereqs reused
    res2 = run_variant(w1, "coptimal", include_prereqs=True)
    names2 = {r.name for r in res2.trace.regions}
    assert "Support" in names2 and "TrussDecomp" in names2


def test_kernel_breakdown():
    tr = Instrumentation()
    tr.add(Region(SP_NODE, seconds=3.0))
    tr.add(Region(SP_EDGE, seconds=1.0))
    tr.add(Region(SM_GRAPH, seconds=1.0))
    bd = KernelBreakdown.from_trace(tr)
    assert bd.total == pytest.approx(5.0)
    assert bd.percentage(SP_NODE) == pytest.approx(60.0)
    assert bd.index_construction_seconds() == pytest.approx(5.0)
    rows = bd.rows()
    assert rows[0][0] == SP_NODE
    assert KernelBreakdown().percentage("x") == 0.0


def test_paper_constants_sane():
    assert set(TABLE3_DATASETS) == {
        "amazon", "dblp", "youtube", "livejournal", "orkut", "friendster"
    }
    for name, row in TABLE4_SERIAL_SECONDS.items():
        assert set(row) == {"baseline", "coptimal", "afforest", "original"}
    for name, row in TABLE5.items():
        for v in ("baseline", "coptimal", "afforest"):
            t1, t128, sp = row[v]
            assert sp == pytest.approx(t1 / t128, rel=0.05)
    for name, row in FIG5_SPNODE_SPEEDUP.items():
        assert row["afforest"] >= row["coptimal"] or name == "dblp"
    lo, hi = HEADLINE_SPEEDUP_RANGE
    assert lo < hi
