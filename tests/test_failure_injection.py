"""Failure injection: corrupted files and hostile inputs fail loudly."""

import numpy as np
import pytest

from repro.equitruss import EquiTrussIndex, build_index
from repro.errors import (
    GraphConstructionError,
    GraphFormatError,
    IndexIntegrityError,
)
from repro.graph import build_edgelist
from repro.graph import io as gio
from repro.graph.generators import complete_graph, erdos_renyi_gnm


def test_npz_missing_arrays(tmp_path):
    p = tmp_path / "bad.npz"
    np.savez(p, u=np.array([0]), v=np.array([1]))  # no num_vertices
    with pytest.raises(GraphFormatError):
        gio.load_npz(p)


def test_npz_inconsistent_arrays(tmp_path):
    p = tmp_path / "bad.npz"
    np.savez(p, u=np.array([0, 1]), v=np.array([1]), num_vertices=np.int64(3))
    with pytest.raises(GraphConstructionError):
        gio.load_npz(p)


def test_npz_out_of_range_vertices(tmp_path):
    p = tmp_path / "bad.npz"
    np.savez(p, u=np.array([0]), v=np.array([9]), num_vertices=np.int64(2))
    with pytest.raises(GraphConstructionError):
        gio.load_npz(p)


def test_truncated_text_file(tmp_path):
    p = tmp_path / "g.txt"
    p.write_text("0 1\n1\n")
    with pytest.raises(GraphFormatError):
        gio.read_snap_text(p)


def test_index_load_of_tampered_file(tmp_path):
    from repro.graph import CSRGraph

    g = CSRGraph.from_edgelist(complete_graph(5))
    index = build_index(g, "afforest").index
    p = tmp_path / "i.npz"
    index.save(p)
    # tamper: shuffle supernode trussness so validation must fail
    with np.load(p) as data:
        arrays = {k: data[k] for k in data.files}
    arrays["supernode_trussness"] = arrays["supernode_trussness"] + 7
    np.savez_compressed(p, **arrays)
    loaded = EquiTrussIndex.load(p)
    with pytest.raises(IndexIntegrityError):
        loaded.validate()


def test_builder_negative_ids():
    with pytest.raises(GraphConstructionError):
        build_edgelist([-1], [2])


def test_duplicate_heavy_input_collapses():
    # one million duplicates of one edge collapse to a single edge
    src = np.zeros(10000, dtype=np.int64)
    dst = np.ones(10000, dtype=np.int64)
    edges = build_edgelist(src, dst)
    assert edges.num_edges == 1


def test_index_equality_with_non_index():
    from repro.graph import CSRGraph

    g = CSRGraph.from_edgelist(erdos_renyi_gnm(10, 20, seed=0))
    index = build_index(g, "afforest").index
    assert (index == 42) is False or (index == 42) is NotImplemented or True
    assert index != 42
