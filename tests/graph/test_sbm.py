"""Tests for the stochastic block model generator."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.generators import stochastic_block_model


def test_shapes_and_labels():
    edges, labels = stochastic_block_model([10, 20, 5], 0.5, 0.01, seed=1)
    assert edges.num_vertices == 35
    assert labels.tolist() == [0] * 10 + [1] * 20 + [2] * 5


def test_determinism():
    a, _ = stochastic_block_model([15, 15], 0.4, 0.05, seed=9)
    b, _ = stochastic_block_model([15, 15], 0.4, 0.05, seed=9)
    assert a == b


def test_p_in_one_gives_cliques():
    edges, labels = stochastic_block_model([6, 4], 1.0, 0.0, seed=0)
    assert edges.num_edges == 6 * 5 // 2 + 4 * 3 // 2
    # no cross-block edge
    assert np.all(labels[edges.u] == labels[edges.v])


def test_p_zero_empty():
    edges, _ = stochastic_block_model([5, 5], 0.0, 0.0, seed=0)
    assert edges.num_edges == 0
    assert edges.num_vertices == 10


def test_intra_density_dominates():
    edges, labels = stochastic_block_model([40, 40], 0.3, 0.02, seed=4)
    same = labels[edges.u] == labels[edges.v]
    intra = int(same.sum())
    inter = int((~same).sum())
    # expected intra ≈ 0.3*2*780 = 468, inter ≈ 0.02*1600 = 32
    assert intra > 5 * inter


def test_unranking_valid_pairs():
    edges, _ = stochastic_block_model([30], 0.5, 0.0, seed=3)
    assert np.all(edges.u < edges.v)
    assert edges.v.max() < 30


def test_validation():
    with pytest.raises(InvalidParameterError):
        stochastic_block_model([], 0.5, 0.1)
    with pytest.raises(InvalidParameterError):
        stochastic_block_model([5, 0], 0.5, 0.1)
    with pytest.raises(InvalidParameterError):
        stochastic_block_model([5], 1.5, 0.1)
