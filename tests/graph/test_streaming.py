"""Tests for the streaming edge-list reader."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import io as gio
from repro.graph.generators import erdos_renyi_gnm
from repro.graph.streaming import StreamingEdgeListBuilder, read_snap_text_streaming


def test_builder_matches_batch():
    edges = erdos_renyi_gnm(80, 400, seed=6)
    rng = np.random.default_rng(0)
    # shuffle raw pairs (with duplicates in both orders) into chunks
    src = np.concatenate([edges.u, edges.v])
    dst = np.concatenate([edges.v, edges.u])
    order = rng.permutation(src.size)
    src, dst = src[order], dst[order]
    builder = StreamingEdgeListBuilder()
    for lo in range(0, src.size, 37):
        builder.add_chunk(src[lo : lo + 37], dst[lo : lo + 37])
    assert builder.finalize(num_vertices=80) == edges


def test_builder_handles_growing_vertex_range():
    builder = StreamingEdgeListBuilder()
    builder.add_chunk(np.array([0, 1]), np.array([1, 2]))
    builder.add_chunk(np.array([50]), np.array([3]))
    edges = builder.finalize()
    assert edges.num_vertices == 51
    assert edges.as_tuples() == [(0, 1), (1, 2), (3, 50)]


def test_builder_drops_self_loops_and_empty():
    builder = StreamingEdgeListBuilder()
    builder.add_chunk(np.array([2]), np.array([2]))
    builder.add_chunk(np.empty(0, np.int64), np.empty(0, np.int64))
    edges = builder.finalize()
    assert edges.num_edges == 0


def test_builder_validation():
    builder = StreamingEdgeListBuilder()
    with pytest.raises(GraphFormatError):
        builder.add_chunk(np.array([1, 2]), np.array([1]))
    with pytest.raises(GraphFormatError):
        builder.add_chunk(np.array([-1]), np.array([2]))


def test_streaming_reader_matches_batch_reader(tmp_path):
    edges = erdos_renyi_gnm(60, 240, seed=9)
    path = tmp_path / "g.txt"
    gio.write_snap_text(edges, path)
    for chunk in (7, 64, 1 << 16):
        got = read_snap_text_streaming(path, chunk_lines=chunk)
        assert got == edges


def test_streaming_reader_errors(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("0 1\nbroken\n")
    with pytest.raises(GraphFormatError):
        read_snap_text_streaming(p)
    p.write_text("0 x\n")
    with pytest.raises(GraphFormatError):
        read_snap_text_streaming(p)


def test_empty_builder():
    assert StreamingEdgeListBuilder().finalize().num_edges == 0
