"""Property-based canonicalization invariants of the builder."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, build_edgelist

pairs = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=0, max_size=120
)


@settings(max_examples=60, deadline=None)
@given(raw=pairs)
def test_builder_canonical_invariants(raw):
    src = np.array([a for a, _ in raw], dtype=np.int64)
    dst = np.array([b for _, b in raw], dtype=np.int64)
    edges = build_edgelist(src, dst)
    # canonical: u < v, strictly sorted keys (no duplicates)
    assert np.all(edges.u < edges.v)
    keys = edges.keys
    assert np.all(np.diff(keys) > 0) if keys.size > 1 else True
    # set semantics: exactly the distinct non-loop undirected pairs
    expected = {(min(a, b), max(a, b)) for a, b in raw if a != b}
    assert set(edges.as_tuples()) == expected


@settings(max_examples=30, deadline=None)
@given(raw=pairs)
def test_builder_order_invariance(raw):
    src = np.array([a for a, _ in raw], dtype=np.int64)
    dst = np.array([b for _, b in raw], dtype=np.int64)
    n = int(max(src.max(initial=0), dst.max(initial=0)) + 1) if src.size else 0
    forward = build_edgelist(src, dst, num_vertices=n)
    reversed_ = build_edgelist(dst[::-1], src[::-1], num_vertices=n)
    assert forward == reversed_


@settings(max_examples=30, deadline=None)
@given(raw=pairs)
def test_csr_roundtrip_preserves_edges(raw):
    src = np.array([a for a, _ in raw], dtype=np.int64)
    dst = np.array([b for _, b in raw], dtype=np.int64)
    edges = build_edgelist(src, dst)
    g = CSRGraph.from_edgelist(edges)
    # reconstruct the edge set from CSR adjacency
    rebuilt = set()
    for u in range(g.num_vertices):
        for w in g.neighbors(u).tolist():
            rebuilt.add((min(u, w), max(u, w)))
    assert rebuilt == set(edges.as_tuples())
    # degrees consistent between EdgeList and CSR
    assert np.array_equal(g.degrees(), edges.degrees())
