"""Unit tests for graph IO."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph import io as gio
from repro.graph.generators import erdos_renyi_gnm


def test_read_snap_text_with_comments():
    text = io.StringIO("# comment\n% other comment\n0 1\n1 2\n2 0\n")
    e = gio.read_snap_text(text)
    assert e.num_edges == 3
    assert e.as_tuples() == [(0, 1), (0, 2), (1, 2)]


def test_read_snap_text_bad_line():
    with pytest.raises(GraphFormatError):
        gio.read_snap_text(io.StringIO("0\n"))
    with pytest.raises(GraphFormatError):
        gio.read_snap_text(io.StringIO("a b\n"))


def test_text_roundtrip(tmp_path):
    e = erdos_renyi_gnm(40, 80, seed=5)
    p = tmp_path / "g.txt"
    gio.write_snap_text(e, p)
    assert gio.read_snap_text(p) == e


def test_npz_roundtrip(tmp_path):
    e = erdos_renyi_gnm(40, 80, seed=6)
    p = tmp_path / "g.npz"
    gio.save_npz(e, p)
    assert gio.load_npz(p) == e


def test_load_graph_dispatch(tmp_path):
    e = erdos_renyi_gnm(20, 30, seed=1)
    p1 = tmp_path / "g.npz"
    p2 = tmp_path / "g.txt"
    gio.save_npz(e, p1)
    gio.write_snap_text(e, p2)
    assert gio.load_graph(p1).edges == e
    assert gio.load_graph(p2).edges == e
